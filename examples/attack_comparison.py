"""Compare membership-inference estimators on the same victim models.

Trains a gossip network to overfitting, then attacks every node's
final model with four threshold attacks — Modified Prediction Entropy
(the paper's choice), plain prediction entropy, prediction confidence,
and per-sample loss — showing why the label-aware MPE estimator is an
informative worst-case privacy probe (Section 2.5).

Run:  python examples/attack_comparison.py
"""

import os

import numpy as np

from repro.core import StudyConfig, VulnerabilityStudy

SMOKE = os.environ.get("REPRO_EXAMPLES_SCALE") == "smoke"
from repro.metrics.evaluation import predict_proba
from repro.nn.serialize import set_state
from repro.privacy import ATTACKS, run_attack


def main() -> None:
    study = VulnerabilityStudy(
        StudyConfig(
            name="attack-comparison",
            dataset="purchase100",
            n_train=1_000,
            n_test=250,
            num_features=128,
            n_nodes=8,
            view_size=2,
            protocol="samo",
            rounds=2 if SMOKE else 6,
            train_per_node=40,
            test_per_node=20,
            mlp_hidden=(64, 32),
            local_epochs=1 if SMOKE else 3,
            batch_size=16,
            seed=0,
        )
    )
    result = study.run()
    print(
        f"trained {study.config.n_nodes} nodes for "
        f"{study.config.rounds} rounds; final generalization error "
        f"{result.rounds[-1].generalization_error:.3f}\n"
    )

    rng = np.random.default_rng(0)
    rows = {name: {"acc": [], "tpr": [], "auc": []} for name in ATTACKS}
    for node in study.simulator.nodes:
        set_state(study.model, node.state)
        member_probs = predict_proba(study.model, node.train_x)
        nonmember_probs = predict_proba(study.model, node.test_x)
        for name in ATTACKS:
            report = run_attack(
                name, member_probs, node.train_y,
                nonmember_probs, node.test_y, rng=rng,
            )
            rows[name]["acc"].append(report.accuracy)
            rows[name]["tpr"].append(report.tpr_at_1_fpr)
            rows[name]["auc"].append(report.auc)

    print(f"{'attack':<12} {'accuracy':>9} {'tpr@1%':>8} {'auc':>7}")
    for name, vals in sorted(rows.items(), key=lambda kv: -np.mean(kv[1]["acc"])):
        print(
            f"{name:<12} {np.mean(vals['acc']):>9.3f} "
            f"{np.mean(vals['tpr']):>8.3f} {np.mean(vals['auc']):>7.3f}"
        )

    print(
        "\nThe label-aware attacks (mpe / confidence / loss) clearly "
        "dominate plain entropy: a confidently WRONG prediction looks "
        "like a member to entropy but not to MPE. The paper uses MPE "
        "as its worst-case-yet-cheap privacy probe."
    )
    study.close()


if __name__ == "__main__":
    main()
