"""Failure injection: gossip learning on an unreliable network.

Decentralized learning is motivated by resilience (paper Section 1).
This example stresses one study under message loss, node churn and
network latency at once, and shows (i) graceful degradation of utility
and (ii) that failures do NOT act as a privacy defense — delivered
exchanges still leak membership.

Run:  python examples/robust_gossip.py
"""

import os

from repro.experiments import run_many, scaled_config

SMOKE = os.environ.get("REPRO_EXAMPLES_SCALE") == "smoke"


def main() -> None:
    grid = {
        "clean": dict(),
        "lossy (30% drop)": dict(drop_prob=0.3),
        "churny (30% fail)": dict(failure_prob=0.3),
        "latent (20 ticks)": dict(delay_ticks=20, delay_jitter=10),
        "hostile (all)": dict(drop_prob=0.3, failure_prob=0.3, delay_ticks=20),
    }
    configs = [
        scaled_config(
            "purchase100",
            scale="tiny",
            name=name,
            protocol="samo",
            view_size=2,
            rounds=2 if SMOKE else 5,
            seed=0,
            **knobs,
        )
        for name, knobs in grid.items()
    ]
    results = run_many(configs)

    print(f"{'scenario':<19} {'max_test':>9} {'final_mia':>10} "
          f"{'delivered':>10} {'dropped':>8} {'skipped':>8}")
    for name, result in results.items():
        print(
            f"{name:<19} {result.max_test_accuracy:>9.3f} "
            f"{result.rounds[-1].mia_accuracy:>10.3f} "
            f"{result.total_messages:>10} "
            f"{result.metadata['messages_dropped']:>8} "
            f"{result.metadata['wakes_skipped']:>8}"
        )

    print(
        "\nEven the hostile network keeps learning (graceful "
        "degradation), and every scenario's MIA accuracy stays well "
        "above 0.5 — unreliable links are not a privacy mechanism; "
        "only better mixing is (the paper's Section 4 argument)."
    )


if __name__ == "__main__":
    main()
