"""RQ1 — compare SAMO against Base Gossip (paper Figure 2, reduced).

Runs both protocols on the same data, topology and hyperparameters and
prints the privacy/utility trade-off each achieves per round. SAMO
(Send-All-Merge-Once, Algorithm 2) buffers incoming models and merges
them all at once on wake-up, hiding each contribution among more
models — the paper's proposed mixing improvement.

Run:  python examples/samo_vs_base_gossip.py
"""

import os

from repro.experiments import run_many, scaled_config

SMOKE = os.environ.get("REPRO_EXAMPLES_SCALE") == "smoke"


def main() -> None:
    configs = [
        scaled_config(
            "purchase100",
            scale="tiny" if SMOKE else "small",
            name=protocol,
            protocol=protocol,
            view_size=5,
            rounds=2 if SMOKE else 8,
            seed=1,
        )
        for protocol in ("base_gossip", "samo")
    ]
    results = run_many(configs)

    print(f"{'round':>5}", end="")
    for name in results:
        print(f" | {name + ' test/mia':>24}", end="")
    print()
    n_rounds = len(next(iter(results.values())).rounds)
    for i in range(n_rounds):
        print(f"{i:>5}", end="")
        for result in results.values():
            r = result.rounds[i]
            print(
                f" | {r.global_test_accuracy:>11.3f} {r.mia_accuracy:>12.3f}",
                end="",
            )
        print()

    base, samo = results["base_gossip"], results["samo"]
    print(f"\nmessages sent: base_gossip={base.total_messages} "
          f"samo={samo.total_messages}")
    print(f"max test acc : base_gossip={base.max_test_accuracy:.3f} "
          f"samo={samo.max_test_accuracy:.3f}")
    print(f"final MIA acc: base_gossip={base.rounds[-1].mia_accuracy:.3f} "
          f"samo={samo.rounds[-1].mia_accuracy:.3f}")
    print("\nSAMO trades more messages for better model mixing and a "
          "better privacy/utility frontier (Figure 2 of the paper).")


if __name__ == "__main__":
    main()
