"""RQ2/RQ4 — dynamic topologies and view sizes (paper Figures 3 & 5).

Sweeps the static/dynamic toggle and the view size k on one dataset,
reporting how PeerSwap dynamics and denser graphs improve the
privacy/utility trade-off — and what each costs in messages.

Run:  python examples/dynamic_topology_privacy.py
"""

import os

from repro.experiments import run_many, scaled_config

SMOKE = os.environ.get("REPRO_EXAMPLES_SCALE") == "smoke"


def main() -> None:
    view_sizes = (2, 5)
    configs = [
        scaled_config(
            "fashion_mnist",
            scale="tiny" if SMOKE else "small",
            name=f"{'dynamic' if dynamic else 'static'}-k{k}",
            protocol="samo",
            view_size=k,
            dynamic=dynamic,
            rounds=2 if SMOKE else 8,
            seed=2,
        )
        for k in view_sizes
        for dynamic in (False, True)
    ]
    results = run_many(configs)

    print(f"{'setting':<14} {'max_test':>9} {'max_mia':>8} {'max_tpr':>8} "
          f"{'models/node':>12}")
    for name, result in results.items():
        per_node = result.total_messages / result.metadata["n_nodes"]
        print(
            f"{name:<14} {result.max_test_accuracy:>9.3f} "
            f"{result.max_mia_accuracy:>8.3f} {result.max_mia_tpr:>8.3f} "
            f"{per_node:>12.1f}"
        )

    print(
        "\nTakeaways (paper Sections 3.4 & 3.6): the dynamic setting "
        "dominates at k=2; increasing k narrows the gap but multiplies "
        "the communication cost — a dynamic graph with a moderate view "
        "size is the sweet spot."
    )


if __name__ == "__main__":
    main()
