"""Quickstart: run a gossip-learning MIA study in ~10 seconds.

Trains a small MLP collaboratively over a 2-regular gossip graph of 8
nodes on Purchase100-like synthetic data, while an omniscient observer
runs the Modified Prediction Entropy attack against every node's model
each round.

Uses the streaming session API: ``Study`` builds the pipeline once,
``iter_rounds()`` yields each round's record as it is produced (so you
watch metrics live instead of waiting for the whole run), and the
context manager guarantees cleanup. ``run_study(config)`` remains the
one-call equivalent.

Run:  python examples/quickstart.py
"""

import os

from repro import Study, StudyConfig

SMOKE = os.environ.get("REPRO_EXAMPLES_SCALE") == "smoke"


def main() -> None:
    config = StudyConfig(
        name="quickstart",
        dataset="purchase100",
        n_train=1_000,
        n_test=250,
        num_features=128,
        n_nodes=8,
        view_size=2,
        dynamic=False,          # flip to True for a PeerSwap topology
        protocol="samo",        # or "base_gossip"
        rounds=2 if SMOKE else 6,
        train_per_node=48,
        test_per_node=24,
        mlp_hidden=(64, 32),
        local_epochs=2,
        batch_size=16,
        seed=0,
    )

    print(f"{'round':>5} {'test_acc':>9} {'mia_acc':>8} {'tpr@1%':>7} "
          f"{'gen_err':>8} {'messages':>9}")
    with Study(config) as study:
        for r in study.iter_rounds():  # streams as rounds complete
            print(
                f"{r.round_index:>5} {r.global_test_accuracy:>9.3f} "
                f"{r.mia_accuracy:>8.3f} {r.mia_tpr_at_1_fpr:>7.3f} "
                f"{r.generalization_error:>8.3f} {r.messages_sent:>9}"
            )
        result = study.result()

    print(
        f"\nsummary: max test accuracy {result.max_test_accuracy:.3f}, "
        f"max MIA accuracy {result.max_mia_accuracy:.3f} "
        f"(0.5 = random guessing)"
    )
    print("Watch the MIA accuracy climb as node models overfit their "
          "local shards — the paper's core vulnerability.")


if __name__ == "__main__":
    main()
