"""Section 4 — spectral mixing analysis (paper Figure 10).

Computes lambda2 of the running mixing-matrix product W(T)...W(1) for
static and dynamic k-regular graphs at the paper's full scale (n=150)
and prints the decay curves, plus a consensus simulation confirming
that the spectral prediction translates into actual value mixing.

Run:  python examples/mixing_analysis.py
"""

import os

import numpy as np

from repro.graph import simulate_consensus, simulate_lambda2_decay

SMOKE = os.environ.get("REPRO_EXAMPLES_SCALE") == "smoke"


def main() -> None:
    n, iterations, runs = (60, 20, 3) if SMOKE else (150, 60, 10)
    print(f"lambda2(W*) after {iterations} iterations, n={n}, {runs} runs\n")
    print(f"{'k':>3} {'static':>12} {'dynamic':>12} {'speedup':>12}")
    rng = np.random.default_rng(0)
    for k in (2, 5) if SMOKE else (2, 5, 10, 25):
        static = simulate_lambda2_decay(
            n, k, iterations, dynamic=False, runs=runs, rng=rng
        )
        dynamic = simulate_lambda2_decay(
            n, k, iterations, dynamic=True, runs=runs, rng=rng
        )
        s, d = static.mean[-1], dynamic.mean[-1]
        speedup = s / max(d, 1e-300)
        print(f"{k:>3} {s:>12.3e} {d:>12.3e} {speedup:>12.1e}")

    horizon = 10 if SMOKE else 40
    print(f"\nConsensus distance over {horizon} iterations (k=2):")
    static_dist = simulate_consensus(n, 2, horizon, dynamic=False, rng=rng)
    dynamic_dist = simulate_consensus(n, 2, horizon, dynamic=True, rng=rng)
    for t in (0, 4, 9) if SMOKE else (0, 9, 19, 39):
        print(
            f"  iter {t + 1:>3}: static={static_dist[t]:.3e} "
            f"dynamic={dynamic_dist[t]:.3e}"
        )

    print(
        "\nDynamic graphs mix orders of magnitude faster at the same "
        "degree — models align with the consensus and leak less about "
        "any individual node's data (Section 4 of the paper)."
    )


if __name__ == "__main__":
    main()
