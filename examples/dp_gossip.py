"""RQ7 — gossip learning under node-level DP-SGD (paper Figure 9).

Each node clips per-sample gradients and adds Gaussian noise; the
noise multiplier is calibrated with the RDP accountant so the whole
run spends at most the requested (epsilon, delta) budget. Combines DP
with static and dynamic topologies to show the paper's takeaway:
dynamics let you relax the local DP budget.

Run:  python examples/dp_gossip.py
"""

import os

from repro.experiments import run_many, scaled_config

SMOKE = os.environ.get("REPRO_EXAMPLES_SCALE") == "smoke"


def main() -> None:
    budgets = (10.0, None) if SMOKE else (50.0, 10.0, None)  # None = non-private
    configs = [
        scaled_config(
            "purchase100",
            scale="tiny",
            name=f"{'eps' + format(eps, 'g') if eps else 'non-dp'}-"
            f"{'dyn' if dynamic else 'stat'}",
            protocol="samo",
            view_size=2,
            dynamic=dynamic,
            dp_epsilon=eps,
            rounds=2 if SMOKE else 5,
            seed=3,
        )
        for eps in budgets
        for dynamic in (False, True)
    ]
    results = run_many(configs)

    print(f"{'run':<14} {'sigma':>7} {'spent_eps':>10} {'max_test':>9} "
          f"{'max_mia':>8}")
    for name, result in results.items():
        spent = result.rounds[-1].epsilon
        print(
            f"{name:<14} {result.metadata['noise_multiplier']:>7.3f} "
            f"{spent if spent is not None else float('nan'):>10.2f} "
            f"{result.max_test_accuracy:>9.3f} "
            f"{result.max_mia_accuracy:>8.3f}"
        )

    print(
        "\nStricter budgets (smaller epsilon) add more noise: both MIA "
        "accuracy and utility drop. The dynamic topology offsets part "
        "of the utility loss — the paper's argument for pairing DP "
        "with good mixing."
    )


if __name__ == "__main__":
    main()
