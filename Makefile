# Development targets. The test suite needs only numpy + pytest
# (pytest-benchmark and hypothesis for the full tier-1 run).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-smoke lint docs-check coverage examples serve-smoke

## Tier-1 suite: unit + integration tests and benchmarks.
test:
	$(PYTHON) -m pytest -x -q

## Test suite under coverage, with a floor on the engine-critical
## packages (needs `python -m pip install coverage`).
coverage:
	$(PYTHON) -m coverage run \
		--source=src/repro/nn,src/repro/gossip,src/repro/privacy,src/repro/metrics,src/repro/telemetry \
		-m pytest -x -q tests
	$(PYTHON) -m coverage report -m --fail-under=85

## Full benchmark harness (REPRO_BENCH_SCALE=tiny|small|paper).
## Refreshes BENCH_engine.json (per-executor engine throughput).
bench:
	$(PYTHON) -m pytest benchmarks/ -q

## Fast benchmark smoke: the engine-throughput + campaign acceptance
## checks (also refreshes BENCH_engine.json).
bench-smoke:
	$(PYTHON) -m pytest benchmarks/test_engine_throughput.py \
		benchmarks/test_campaign_throughput.py -q

## Smoke-run every script in examples/ at tiny scale.
examples:
	$(PYTHON) tools/run_examples.py

## Boot the HTTP/SSE service on an ephemeral port, run a study through
## it end to end (stream, cache hit, clean shutdown).
serve-smoke:
	$(PYTHON) tools/serve_smoke.py

## Static checks: byte-compile everything, then run the repo's own
## invariant checker (determinism / locks / lifecycle / purity rules —
## see docs/static-analysis.md). Stdlib-only, no third-party linter.
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples tools
	$(PYTHON) -m tools.reprolint src tests benchmarks examples tools

## Documentation: fail on broken relative links in README.md / docs/*.md.
docs-check:
	$(PYTHON) tools/check_docs_links.py
