"""Random k-regular graph construction and validation.

The paper connects ``n`` nodes in an initial random k-regular graph
with view size k in {2, 5, 10, 25}. We generate graphs with networkx's
pairing-model generator and re-sample until connected, then convert
between adjacency structures and per-node *views* (neighbor sets).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

__all__ = [
    "random_regular_graph",
    "views_from_graph",
    "graph_from_views",
    "validate_k_regular",
    "is_connected",
]

Views = list[set[int]]


def random_regular_graph(
    n: int, k: int, rng: np.random.Generator, require_connected: bool = True,
    max_retries: int = 200,
) -> nx.Graph:
    """Sample a random k-regular graph on ``n`` nodes.

    Raises ``ValueError`` for infeasible (n, k) pairs (k >= n or n*k
    odd) and retries sampling until the graph is connected when
    ``require_connected`` is set (always the case in the paper, which
    needs information to flow between all peers).
    """
    if k <= 0 or n <= 0:
        raise ValueError("n and k must be positive")
    if k >= n:
        raise ValueError(f"k-regular graph needs k < n, got k={k}, n={n}")
    if (n * k) % 2:
        raise ValueError(f"n * k must be even, got n={n}, k={k}")
    for _ in range(max_retries):
        seed = int(rng.integers(0, 2**31 - 1))
        graph = nx.random_regular_graph(k, n, seed=seed)
        if not require_connected or nx.is_connected(graph):
            return graph
    raise RuntimeError(
        f"failed to sample a connected {k}-regular graph on {n} nodes "
        f"after {max_retries} attempts"
    )


def views_from_graph(graph: nx.Graph) -> Views:
    """Per-node neighbor sets, indexed by node id 0..n-1."""
    n = graph.number_of_nodes()
    if set(graph.nodes) != set(range(n)):
        raise ValueError("graph nodes must be labeled 0..n-1")
    return [set(graph.neighbors(i)) for i in range(n)]


def graph_from_views(views: Views) -> nx.Graph:
    """Build an undirected graph from symmetric neighbor sets."""
    n = len(views)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for i, view in enumerate(views):
        for j in view:
            if not 0 <= j < n:
                raise ValueError(f"node {i} has out-of-range neighbor {j}")
            if i == j:
                raise ValueError(f"node {i} has a self-loop")
            if i not in views[j]:
                raise ValueError(f"views are asymmetric: {i} -> {j} but not back")
            graph.add_edge(i, j)
    return graph


def validate_k_regular(views: Views, k: int) -> None:
    """Assert that views describe a simple undirected k-regular graph."""
    graph = graph_from_views(views)  # raises on asymmetry / self-loops
    degrees = [deg for _, deg in graph.degree()]
    bad = [i for i, deg in enumerate(degrees) if deg != k]
    if bad:
        raise ValueError(f"nodes {bad[:10]} do not have degree {k}")


def is_connected(views: Views) -> bool:
    """True when the view graph is connected."""
    return nx.is_connected(graph_from_views(views))
