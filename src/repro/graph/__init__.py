"""Communication graphs: topology generation, peer sampling, mixing.

Implements the paper's k-regular random graphs (Section 3.1), the
PeerSwap dynamic peer-sampling protocol (Section 2.4), and the spectral
mixing analysis of Section 4 / Figure 10.
"""

from repro.graph.topology import (
    random_regular_graph,
    views_from_graph,
    graph_from_views,
    validate_k_regular,
    is_connected,
)
from repro.graph.peer_sampling import (
    PeerSampler,
    StaticPeerSampler,
    PeerSwapSampler,
    FreshGraphSampler,
    SAMPLERS,
    make_sampler,
    make_sampler_by_name,
)
from repro.graph.theory import (
    ramanujan_lambda2,
    predicted_static_mixing_time,
    empirical_lambda2,
    spectral_gap,
)
from repro.graph.mixing import (
    mixing_matrix,
    mixing_matrix_from_views,
    lambda2,
    consensus_distance,
    simulate_lambda2_decay,
    mixing_time,
    simulate_consensus,
    MixingDecayResult,
)

__all__ = [
    "random_regular_graph",
    "views_from_graph",
    "graph_from_views",
    "validate_k_regular",
    "is_connected",
    "PeerSampler",
    "StaticPeerSampler",
    "PeerSwapSampler",
    "FreshGraphSampler",
    "SAMPLERS",
    "make_sampler",
    "make_sampler_by_name",
    "mixing_matrix",
    "mixing_matrix_from_views",
    "lambda2",
    "consensus_distance",
    "simulate_lambda2_decay",
    "mixing_time",
    "simulate_consensus",
    "MixingDecayResult",
    "ramanujan_lambda2",
    "predicted_static_mixing_time",
    "empirical_lambda2",
    "spectral_gap",
]
