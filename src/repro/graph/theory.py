"""Closed-form spectral predictions for k-regular gossip.

Section 4 of the paper analyses mixing empirically; this module adds
the standard random-graph theory the empirics should (and do) match:

* For a random k-regular graph (k >= 3), Friedman's theorem says the
  second-largest adjacency eigenvalue concentrates near the Ramanujan
  bound ``2 sqrt(k - 1)``; the corresponding lazy mixing matrix
  ``W = (A + I) / (k + 1)`` then has
  ``lambda2(W) ~ (2 sqrt(k - 1) + 1) / (k + 1)``.
* The static setting decays geometrically, so the epsilon-mixing time
  is ``log(eps) / log(lambda2(W))``.

These predictions let tests validate the simulator against theory and
give users a fast estimate without running the simulation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.mixing import lambda2, mixing_matrix

__all__ = [
    "ramanujan_lambda2",
    "predicted_static_mixing_time",
    "empirical_lambda2",
    "spectral_gap",
]


def ramanujan_lambda2(k: int) -> float:
    """Predicted lambda2 of the lazy mixing matrix of a random
    k-regular graph (Friedman / Alon-Boppana regime).

    The adjacency spectrum's second eigenvalue is ~2 sqrt(k-1); adding
    the self-loop and normalizing by (k+1) gives
    ``(2 sqrt(k-1) + 1) / (k+1)``. For k = 2 (a union of cycles) the
    bound degenerates; we return the cycle value
    ``(2 cos(2 pi / n) + 1) / 3 -> 1`` as n grows, approximated by 1.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    if k == 2:
        return 1.0  # cycles: lambda2 -> 1 as n -> inf
    return (2.0 * math.sqrt(k - 1) + 1.0) / (k + 1)


def predicted_static_mixing_time(k: int, epsilon: float) -> float:
    """Iterations for lambda2(W)^T < epsilon under the static setting."""
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must be in (0, 1)")
    lam = ramanujan_lambda2(k)
    if lam >= 1.0:
        return float("inf")
    return math.log(epsilon) / math.log(lam)


def empirical_lambda2(
    n: int, k: int, samples: int = 10, rng: np.random.Generator | None = None
) -> tuple[float, float]:
    """Mean and std of lambda2(W) over sampled random k-regular graphs."""
    rng = rng if rng is not None else np.random.default_rng(0)
    values = [lambda2(mixing_matrix(n, k, rng)) for _ in range(samples)]
    return float(np.mean(values)), float(np.std(values))


def spectral_gap(w: np.ndarray) -> float:
    """``1 - lambda2(w)`` — larger gap means faster mixing."""
    return 1.0 - lambda2(w)
