"""Spectral mixing analysis (Section 4 of the paper).

For a k-regular gossip exchange the mixing matrix is

    W[i, j] = 1 / (k + 1)  if j is a neighbor of i or j == i, else 0.

``W`` is symmetric and doubly stochastic, and Boyd et al. show the
distance to consensus contracts by its second-largest eigenvalue
modulus. For a *sequence* of graphs the relevant quantity is
``lambda2(W*)`` with ``W* = W(T) ... W(1)``; products of symmetric
matrices are not symmetric, so :func:`lambda2` computes the spectral
norm of ``W - J/n`` (the operator norm on the disagreement subspace),
which coincides with the eigenvalue definition in the symmetric case
and is the correct contraction factor in general.

The dynamic setting follows the paper's analysis: all nodes are
randomly permuted at each iteration (``W(t) = P.T @ W @ P``), which is
the stationary regime of PeerSwap. A PeerSwap-driven variant is also
provided to validate that the two coincide in distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.peer_sampling import PeerSwapSampler
from repro.graph.topology import Views, random_regular_graph, views_from_graph

__all__ = [
    "mixing_matrix",
    "mixing_matrix_from_views",
    "lambda2",
    "consensus_distance",
    "simulate_lambda2_decay",
    "mixing_time",
    "simulate_consensus",
    "MixingDecayResult",
]


def mixing_matrix_from_views(views: Views) -> np.ndarray:
    """Build the (k+1)-averaging mixing matrix from neighbor sets."""
    n = len(views)
    w = np.zeros((n, n))
    for i, view in enumerate(views):
        weight = 1.0 / (len(view) + 1)
        w[i, i] = weight
        for j in view:
            w[i, j] = weight
    return w


def mixing_matrix(n: int, k: int, rng: np.random.Generator) -> np.ndarray:
    """Mixing matrix of a fresh random k-regular graph."""
    graph = random_regular_graph(n, k, rng)
    return mixing_matrix_from_views(views_from_graph(graph))


def lambda2(w: np.ndarray) -> float:
    """Contraction factor of ``w`` on the disagreement subspace.

    Computed as the spectral norm of ``w - J/n``; equals the
    second-largest eigenvalue modulus when ``w`` is symmetric doubly
    stochastic.
    """
    n = w.shape[0]
    if w.shape != (n, n):
        raise ValueError(f"w must be square, got {w.shape}")
    centered = w - np.full((n, n), 1.0 / n)
    return float(np.linalg.norm(centered, ord=2))


def consensus_distance(theta: np.ndarray) -> float:
    """L2 distance of the node-value vector to its average (Eq. 11)."""
    return float(np.linalg.norm(theta - theta.mean()))


def _permute(w: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Conjugate ``w`` by a random permutation (relabel all nodes)."""
    perm = rng.permutation(w.shape[0])
    return w[np.ix_(perm, perm)]


@dataclass
class MixingDecayResult:
    """lambda2(W*) trajectories over iterations, across repeated runs."""

    n: int
    k: int
    dynamic: bool
    values: np.ndarray  # shape (runs, iterations)

    @property
    def mean(self) -> np.ndarray:
        return self.values.mean(axis=0)

    @property
    def std(self) -> np.ndarray:
        return self.values.std(axis=0)


def simulate_lambda2_decay(
    n: int,
    k: int,
    iterations: int,
    dynamic: bool,
    runs: int = 50,
    rng: np.random.Generator | None = None,
    mode: str = "permutation",
    floor: float = 1e-13,
) -> MixingDecayResult:
    """Reproduce Figure 10: lambda2 of the running product W(t)...W(1).

    ``mode='permutation'`` follows Section 4's analysis (random node
    relabeling per iteration); ``mode='peerswap'`` drives the topology
    with one PeerSwap per node per iteration instead. Values are
    floored at ``floor`` to emulate the paper's numerical precision
    marker.
    """
    if mode not in {"permutation", "peerswap"}:
        raise ValueError(f"unknown mode {mode!r}")
    rng = rng if rng is not None else np.random.default_rng(0)
    values = np.empty((runs, iterations))
    for run in range(runs):
        if dynamic and mode == "peerswap":
            sampler = PeerSwapSampler(n, k, rng)
            product = np.eye(n)
            for t in range(iterations):
                for node in rng.permutation(n):
                    sampler.on_wake(int(node))
                w_t = mixing_matrix_from_views(sampler.views())
                product = w_t @ product
                values[run, t] = max(lambda2(product), floor)
        else:
            w = mixing_matrix(n, k, rng)
            product = np.eye(n)
            for t in range(iterations):
                w_t = _permute(w, rng) if dynamic else w
                product = w_t @ product
                values[run, t] = max(lambda2(product), floor)
    return MixingDecayResult(n=n, k=k, dynamic=dynamic, values=values)


def mixing_time(
    n: int,
    k: int,
    epsilon: float,
    dynamic: bool,
    max_iterations: int = 2_000,
    runs: int = 5,
    rng: np.random.Generator | None = None,
) -> float:
    """Estimated iterations until lambda2(W*) drops below ``epsilon``.

    Complements Figure 10 with a scalar summary: the epsilon-mixing
    time of the gossip sequence. Averaged over ``runs`` independent
    topologies; returns ``inf`` when the target is not reached within
    ``max_iterations``.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must be in (0, 1)")
    rng = rng if rng is not None else np.random.default_rng(0)
    times = []
    for _ in range(runs):
        w = mixing_matrix(n, k, rng)
        product = np.eye(n)
        hit = float("inf")
        for t in range(1, max_iterations + 1):
            w_t = _permute(w, rng) if dynamic else w
            product = w_t @ product
            if lambda2(product) < epsilon:
                hit = t
                break
        times.append(hit)
    return float(np.mean(times))


def simulate_consensus(
    n: int,
    k: int,
    iterations: int,
    dynamic: bool,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Run the synchronous consensus protocol of Equation (9).

    Every node starts from a random scalar; returns the consensus
    distance after each iteration. Used to sanity-check that the
    spectral predictions translate into actual value mixing.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    w = mixing_matrix(n, k, rng)
    theta = rng.normal(size=n)
    distances = np.empty(iterations)
    for t in range(iterations):
        w_t = _permute(w, rng) if dynamic else w
        theta = w_t @ theta
        distances[t] = consensus_distance(theta)
    return distances
