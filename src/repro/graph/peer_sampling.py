"""Random peer-sampling services (Section 2.4 of the paper).

Two samplers share an interface:

* :class:`StaticPeerSampler` — the initial random k-regular graph never
  changes.
* :class:`PeerSwapSampler` — PeerSwap (Guerraoui et al., SRDS 2024): on
  wake-up a node exchanges its *position in the graph* with a uniformly
  random neighbor, keeping the graph k-regular while randomizing it
  over time.
"""

from __future__ import annotations

import numpy as np

from repro.graph.topology import (
    Views,
    random_regular_graph,
    validate_k_regular,
    views_from_graph,
)

__all__ = [
    "PeerSampler",
    "StaticPeerSampler",
    "PeerSwapSampler",
    "FreshGraphSampler",
    "SAMPLERS",
    "make_sampler",
    "make_sampler_by_name",
]


class PeerSampler:
    """Interface: maintains per-node views over time."""

    def __init__(self, n_nodes: int, k: int, rng: np.random.Generator):
        if k >= n_nodes:
            raise ValueError("view size k must be smaller than the number of nodes")
        self.n_nodes = n_nodes
        self.k = k
        graph = random_regular_graph(n_nodes, k, rng)
        self._views: Views = views_from_graph(graph)
        self._rng = rng

    def view(self, node_id: int) -> set[int]:
        """Current view (neighbor set) of ``node_id``."""
        return set(self._views[node_id])

    def views(self) -> Views:
        """Copies of all views, indexed by node id."""
        return [set(v) for v in self._views]

    def on_wake(self, node_id: int) -> None:
        """Hook called by the simulator when ``node_id`` wakes up."""
        raise NotImplementedError

    def capture_state(self) -> dict:
        """Mutable sampler state for checkpoint/resume. The draw stream
        is NOT included: ``_rng`` is the simulator's generator, which
        the simulator captures itself."""
        return {"views": [sorted(view) for view in self._views]}

    def restore_state(self, state: dict) -> None:
        self._views = [set(view) for view in state["views"]]

    @property
    def dynamic(self) -> bool:
        raise NotImplementedError


class StaticPeerSampler(PeerSampler):
    """Views are frozen at the initial random k-regular graph."""

    def on_wake(self, node_id: int) -> None:
        pass

    @property
    def dynamic(self) -> bool:
        return False


class PeerSwapSampler(PeerSampler):
    """PeerSwap: a waking node swaps graph positions with a neighbor.

    Implements the view updates of Section 2.4 exactly:

    * ``N_i <- (N_j \\ {i}) | {j}`` and symmetrically for ``j``;
    * every other neighbor of old-``i`` replaces ``i`` by ``j`` and
      every other neighbor of old-``j`` replaces ``j`` by ``i``.

    The result is the same k-regular graph with nodes ``i`` and ``j``
    relabeled, so regularity is invariant.
    """

    def on_wake(self, node_id: int) -> None:
        view = self._views[node_id]
        if not view:
            return
        j = int(self._rng.choice(sorted(view)))
        self.swap(node_id, j)

    def swap(self, i: int, j: int) -> None:
        """Swap the graph positions of nodes ``i`` and ``j``."""
        if i == j:
            return
        old_i = set(self._views[i])
        old_j = set(self._views[j])
        new_i = (old_j - {i}) | ({j} if i in old_j else set())
        new_j = (old_i - {j}) | ({i} if j in old_i else set())
        # When i and j are neighbors the displaced edge between their
        # positions stays an edge between them: i in old_j implies the
        # swapped i keeps j as a neighbor (handled above).
        self._views[i] = new_i
        self._views[j] = new_j
        for k in old_i - {j, i}:
            if k != i and k != j:
                self._views[k].discard(i)
                self._views[k].add(j)
        for k in old_j - {i, j}:
            if k != i and k != j:
                self._views[k].discard(j)
                self._views[k].add(i)
        # Common neighbors of old i and j end up with both (they were
        # neighbors of both positions before, and still are after).
        for k in (old_i & old_j) - {i, j}:
            self._views[k].add(i)
            self._views[k].add(j)

    def validate(self) -> None:
        """Check the k-regular invariant (used in tests)."""
        validate_k_regular(self._views, self.k)

    @property
    def dynamic(self) -> bool:
        return True


class FreshGraphSampler(PeerSampler):
    """Resample an entirely fresh random k-regular graph periodically.

    This is the randomized-communication model of Epidemic Learning
    (De Vos et al., cited in Section 6.4): rather than evolving the
    graph locally like PeerSwap, the topology is redrawn globally every
    ``resample_every`` wake events (default: once per ``n`` wakes,
    i.e. roughly once per communication round). Used in ablations to
    separate "any dynamics" from "PeerSwap specifically".
    """

    def __init__(
        self,
        n_nodes: int,
        k: int,
        rng: np.random.Generator,
        resample_every: int | None = None,
    ):
        super().__init__(n_nodes, k, rng)
        if resample_every is None:
            resample_every = n_nodes
        if resample_every <= 0:
            raise ValueError("resample_every must be positive")
        self.resample_every = resample_every
        self._wakes_since_resample = 0

    def on_wake(self, node_id: int) -> None:
        self._wakes_since_resample += 1
        if self._wakes_since_resample >= self.resample_every:
            graph = random_regular_graph(self.n_nodes, self.k, self._rng)
            self._views = views_from_graph(graph)
            self._wakes_since_resample = 0

    def capture_state(self) -> dict:
        state = super().capture_state()
        state["wakes_since_resample"] = self._wakes_since_resample
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._wakes_since_resample = state["wakes_since_resample"]

    @property
    def dynamic(self) -> bool:
        return True


SAMPLERS = {
    "static": StaticPeerSampler,
    "peerswap": PeerSwapSampler,
    "fresh": FreshGraphSampler,
}


def make_sampler(
    dynamic: bool, n_nodes: int, k: int, rng: np.random.Generator
) -> PeerSampler:
    """Build the sampler matching the paper's static/dynamic toggle."""
    cls = PeerSwapSampler if dynamic else StaticPeerSampler
    return cls(n_nodes, k, rng)


def make_sampler_by_name(
    name: str, n_nodes: int, k: int, rng: np.random.Generator
) -> PeerSampler:
    """Build a sampler by registry name (static/peerswap/fresh)."""
    if name not in SAMPLERS:
        raise ValueError(f"unknown sampler {name!r}; choose from {sorted(SAMPLERS)}")
    return SAMPLERS[name](n_nodes, k, rng)
