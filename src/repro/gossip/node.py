"""Per-node state for gossip learning."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.partition import NodeSplit
from repro.nn.serialize import State

__all__ = ["GossipNode"]


@dataclass
class GossipNode:
    """State owned by one participant.

    Attributes
    ----------
    state:
        The node's current model parameters (theta_i).
    inbox:
        Models received since the last wake-up. Base Gossip consumes
        them immediately on reception; SAMO stores them here until the
        next wake-up (the set Theta_i of Algorithm 2, excluding the
        node's own model which lives in ``state``).
    split:
        The node's local train/test data.
    rng:
        Private generator driving neighbor choice, minibatch order and
        DP noise, so runs are reproducible per node.
    """

    node_id: int
    state: State
    split: NodeSplit
    rng: np.random.Generator
    inbox: list[State] = field(default_factory=list)
    updates_performed: int = 0
    models_received: int = 0

    def receive(self, payload: State) -> None:
        self.inbox.append(payload)
        self.models_received += 1

    def drain_inbox(self) -> list[State]:
        """Return and clear buffered models."""
        drained = self.inbox
        self.inbox = []
        return drained

    def snapshot(self) -> State:
        """Copy of the current model state (for sending)."""
        return {name: arr.copy() for name, arr in self.state.items()}

    @property
    def train_x(self) -> np.ndarray:
        return self.split.train.x

    @property
    def train_y(self) -> np.ndarray:
        return self.split.train.y

    @property
    def test_x(self) -> np.ndarray:
        return self.split.test.x

    @property
    def test_y(self) -> np.ndarray:
        return self.split.test.y
