"""Asynchronous gossip-learning runtime.

A discrete-event, tick-based simulator (Section 3.1 of the paper): a
round of communication is 100 ticks; each node waits a per-node gap
sampled once from N(mu=100, sigma^2=100) between wake-ups. Two
protocols are provided: Base Gossip Learning (Algorithm 1) and
Send-All-Merge-Once / SAMO (Algorithm 2).
"""

from repro.gossip.clock import WakeSchedule, TickClock
from repro.gossip.messages import ModelMessage, MessageLog
from repro.gossip.node import GossipNode
from repro.gossip.trainer import BatchedTrainer, LocalTrainer, TrainerConfig
from repro.gossip.protocols import (
    GossipProtocol,
    BaseGossipProtocol,
    PartialMergeGossipProtocol,
    SAMOProtocol,
    make_protocol,
)
from repro.gossip.simulator import GossipSimulator, SimulatorConfig
from repro.gossip.engine import (
    BatchedExecutor,
    Executor,
    FlatGossipSimulator,
    ProcessExecutor,
    SerialExecutor,
    StateArena,
    UpdateTask,
    make_simulator,
)
from repro.gossip.shard import RowPartitioner, ShardedExecutor

__all__ = [
    "BatchedExecutor",
    "RowPartitioner",
    "ShardedExecutor",
    "BatchedTrainer",
    "Executor",
    "FlatGossipSimulator",
    "ProcessExecutor",
    "SerialExecutor",
    "StateArena",
    "UpdateTask",
    "make_simulator",
    "WakeSchedule",
    "TickClock",
    "ModelMessage",
    "MessageLog",
    "GossipNode",
    "LocalTrainer",
    "TrainerConfig",
    "GossipProtocol",
    "BaseGossipProtocol",
    "PartialMergeGossipProtocol",
    "SAMOProtocol",
    "make_protocol",
    "GossipSimulator",
    "SimulatorConfig",
]
