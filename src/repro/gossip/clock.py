"""Tick clock and per-node wake-up schedules.

"The execution is divided into discrete time units called ticks. Each
round of communication is represented by 100 ticks and each node i
waits Delta_i ticks between wake-ups. The waiting time Delta_i is
sampled from a normal distribution N(mu, sigma^2) with mu = 100 and
sigma^2 = 100 at the beginning of the execution." (Section 3.1)
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["WakeSchedule", "TickClock"]


class WakeSchedule:
    """Deterministic wake-up times for every node.

    Each node's gap is drawn once; the first wake-up is a uniform
    random phase in [0, gap) so nodes are desynchronized from the
    start, then wake-ups repeat every ``gap`` ticks.
    """

    def __init__(
        self,
        n_nodes: int,
        rng: np.random.Generator,
        mu: float = 100.0,
        sigma: float = 10.0,
        min_gap: int = 1,
    ):
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        if mu <= 0 or sigma < 0:
            raise ValueError("mu must be positive and sigma non-negative")
        gaps = rng.normal(mu, sigma, size=n_nodes)
        self.gaps = np.maximum(np.round(gaps), min_gap).astype(np.int64)
        self.phases = np.array(
            [rng.integers(0, gap) for gap in self.gaps], dtype=np.int64
        )

    def wakes_at(self, node_id: int, tick: int) -> bool:
        """True when ``node_id`` wakes at ``tick``."""
        gap = self.gaps[node_id]
        return tick >= self.phases[node_id] and (tick - self.phases[node_id]) % gap == 0

    def waking_nodes(self, tick: int) -> list[int]:
        """Node ids waking at ``tick`` (ascending order)."""
        offset = tick - self.phases
        mask = (offset >= 0) & (offset % self.gaps == 0)
        return list(np.flatnonzero(mask))

    def count_wakes(self, node_id: int, horizon_ticks: int) -> int:
        """Exact number of wake-ups of ``node_id`` in [0, horizon_ticks).

        Used by the DP accountant to bound the number of local updates
        a node can perform over a planned run.
        """
        phase = int(self.phases[node_id])
        gap = int(self.gaps[node_id])
        if horizon_ticks <= phase:
            return 0
        return (horizon_ticks - 1 - phase) // gap + 1

    def wakeups_per_round(self, ticks_per_round: int = 100) -> float:
        """Expected total wake-ups per round, for diagnostics."""
        return float(np.sum(ticks_per_round / self.gaps))


class TickClock:
    """Counts ticks and converts them to communication rounds."""

    def __init__(self, ticks_per_round: int = 100):
        if ticks_per_round <= 0:
            raise ValueError("ticks_per_round must be positive")
        self.ticks_per_round = ticks_per_round
        self.tick = 0

    def advance(self) -> int:
        self.tick += 1
        return self.tick

    @property
    def round_index(self) -> int:
        """Zero-based index of the round containing the current tick."""
        return self.tick // self.ticks_per_round

    def is_round_boundary(self) -> bool:
        """True right after the last tick of a round."""
        return self.tick > 0 and self.tick % self.ticks_per_round == 0

    def ticks_for_rounds(self, rounds: int) -> int:
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        return rounds * self.ticks_per_round

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TickClock(tick={self.tick}, round={self.round_index})"
