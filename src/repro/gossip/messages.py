"""Model-exchange messages and the omniscient observer's log.

The threat model (Section 2.6) assumes an attacker observing all
messages exchanged in the system. :class:`MessageLog` records every
exchange so attacks and communication-cost accounting (Figure 5's
"models sent per user") can be computed after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ModelMessage", "MessageLog"]


@dataclass(frozen=True)
class ModelMessage:
    """One model sent from ``sender`` to ``receiver`` at ``tick``.

    The payload is the sender's model state (a name -> array dict); it
    is stored by reference — senders must pass a snapshot copy.
    """

    sender: int
    receiver: int
    tick: int
    payload: dict[str, np.ndarray]

    @property
    def payload_size(self) -> int:
        """Number of scalars transferred (proxy for bytes on the wire)."""
        return int(sum(arr.size for arr in self.payload.values()))


@dataclass
class MessageLog:
    """Append-only record of all exchanged messages."""

    keep_payloads: bool = False
    count: int = 0
    per_sender: dict[int, int] = field(default_factory=dict)
    messages: list[ModelMessage] = field(default_factory=list)

    def record(self, message: ModelMessage) -> None:
        self.count += 1
        self.per_sender[message.sender] = self.per_sender.get(message.sender, 0) + 1
        if self.keep_payloads:
            self.messages.append(message)

    def sent_by(self, node_id: int) -> int:
        return self.per_sender.get(node_id, 0)

    def models_sent_per_node(self, n_nodes: int) -> float:
        """Average number of models each node sent (Figure 5 cost axis)."""
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        return self.count / n_nodes
