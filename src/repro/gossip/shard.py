"""Sharded shared-memory execution subsystem.

The batched executor (PR 3) trains a tick's wake tasks as lockstep
``(B, dim)`` blocks, but all of it on one core; the process executor
(PR 1) uses many cores, but pickles every task's state vector to a pool
worker and copies the result back. This module combines the two: arena
rows are partitioned across long-lived *shard workers*, each of which
attaches to the engine's :class:`~repro.nn.flat.SharedArena` segment
once, owns a workspace model plus its shard's data slices, and runs the
PR 3 batched training kernels over its rows in place.

Per tick, a shard receives only ``(row_index, session, rng_state)``
triples — never a state vector. Workers read their rows straight out of
the shared segment, train, and write results straight back; the only
payload returned is each task's advanced generator state (plus the
delta of per-row fallback counts, a tiny dict). That is the zero-copy
contract: task traffic is O(tasks), not O(tasks * dim).

The same workers double as **observer shards**: after a one-time
``observe_init`` that ships the fixed global-test subsample and each
row's attack arrays, a per-round ``observe`` message carries only
subsample index arrays. Each worker scores its own arena rows with a
:class:`~repro.metrics.evaluation.BatchedEvaluator` (evaluation and MPE
scoring never leave the shard) and replies with per-row score vectors
and accuracies; the parent merges, balances, and builds the reports.

Determinism: each task travels with its node's exact generator state
and lr_decay session index, and every shard trains through the same
:class:`~repro.gossip.engine.BatchedExecutor` logic (including its
per-row fallback for DP-SGD, stochastic layers and empty splits), so a
sharded run is bit-identical to :class:`~repro.gossip.engine.SerialExecutor`
on a float64 arena for a fixed seed — the engine's phased ticks make
results independent of which process trains which row.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from time import perf_counter
from typing import Callable, Sequence

import numpy as np

from repro.data.partition import NodeSplit
from repro.gossip.engine import (
    BatchedExecutor,
    Executor,
    SplitArrays,
    StateArena,
    UpdateTask,
    as_split_arrays,
)
from repro.gossip.trainer import LocalTrainer, TrainerConfig
from repro.metrics.evaluation import BatchedEvaluator
from repro.nn.flat import SharedArena, StateLayout
from repro.nn.layers import Module
from repro.telemetry import Registry, Telemetry

__all__ = ["RowPartitioner", "ShardedExecutor"]

# Default cap mirrors ProcessExecutor's pool sizing.
_MAX_AUTO_SHARDS = 8

_TRAIN = "train"
_OBSERVE_INIT = "observe_init"
_OBSERVE = "observe"
_STOP = "stop"


class RowPartitioner:
    """Maps arena row indices to shards.

    Strategies:

    * ``"contiguous"`` — equal-length contiguous row ranges (shard 0
      gets the first rows, and so on). Predictable, cache-friendly.
    * ``"balanced"`` — greedy longest-processing-time assignment by
      per-row sample count: rows are placed largest-first onto the
      currently lightest shard, equalizing training compute when node
      splits are uneven (ties break toward fewer rows, then the lower
      shard id, so the result is deterministic).

    ``partition`` always returns exactly ``n_shards`` disjoint,
    ascending index arrays covering ``range(n_rows)``; trailing shards
    may be empty when ``n_shards > n_rows`` (the executor clamps its
    worker count so it never spawns one for an empty shard).
    """

    strategies = ("contiguous", "balanced")

    def __init__(self, strategy: str = "contiguous"):
        if strategy not in self.strategies:
            raise ValueError(
                f"unknown partition strategy {strategy!r}; "
                f"expected one of {self.strategies}"
            )
        self.strategy = strategy

    def partition(
        self,
        n_rows: int,
        n_shards: int,
        sample_counts: Sequence[int] | None = None,
    ) -> list[np.ndarray]:
        if n_rows <= 0:
            raise ValueError("n_rows must be positive")
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if sample_counts is not None and len(sample_counts) != n_rows:
            raise ValueError(
                f"got {len(sample_counts)} sample counts for {n_rows} rows"
            )
        if self.strategy == "contiguous":
            return [
                np.asarray(chunk, dtype=np.intp)
                for chunk in np.array_split(np.arange(n_rows), n_shards)
            ]
        counts = (
            np.ones(n_rows)
            if sample_counts is None
            else np.asarray(sample_counts, dtype=np.float64)
        )
        order = sorted(range(n_rows), key=lambda row: (-counts[row], row))
        loads = [0.0] * n_shards
        sizes = [0] * n_shards
        shards: list[list[int]] = [[] for _ in range(n_shards)]
        for row in order:
            target = min(
                range(n_shards), key=lambda s: (loads[s], sizes[s], s)
            )
            shards[target].append(row)
            loads[target] += counts[row]
            sizes[target] += 1
        return [np.asarray(sorted(rows), dtype=np.intp) for rows in shards]


def _restore_generator(state: dict) -> np.random.Generator:
    """Rebuild a Generator from a ``bit_generator.state`` dict."""
    bit_generator = getattr(np.random, state["bit_generator"])()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


def encode_tasks(tasks: Sequence[UpdateTask]) -> list[tuple]:
    """The exact per-task payload shipped to a shard worker.

    Row index, lr_decay session, generator state — and nothing else.
    State vectors never cross the pipe; they live in the shared arena
    both ways. Kept as a standalone function so tests can assert the
    no-pickle contract on the real payload.
    """
    return [
        (task.node_id, task.session, task.rng.bit_generator.state)
        for task in tasks
    ]


def _shard_worker(
    conn,
    segment: str,
    n_rows: int,
    dim: int,
    dtype: np.dtype,
    model_builder: Callable[[], Module],
    trainer_config: TrainerConfig,
    layout: StateLayout,
    split_arrays: SplitArrays,
    train_batch: int,
    shard_index: int = 0,
    telemetry_enabled: bool = False,
) -> None:
    """Long-lived shard worker loop.

    Attaches to the shared arena once, builds its workspace trainer and
    a :class:`BatchedExecutor` over its split slice once, then serves
    requests until told to stop:

    * ``("train", items, config_or_None)`` — rebuild each task's
      generator, train (blocked where possible, per-row fallback
      otherwise), write result rows into the shared segment, and reply
      with the advanced generator states plus the fallback-count delta
      and (when telemetry is on) the worker-local metric-registry
      delta — both travel with the task results, never out of band;
    * ``("observe_init", payload)`` — store the observation inputs and
      build the shard's :class:`BatchedEvaluator` once;
    * ``("observe", items)`` — score this shard's rows against the live
      arena and reply with per-row scores and accuracies.
    """
    arena = None
    executor = None
    try:
        arena = SharedArena.attach(segment, n_rows, dim, dtype)
        trainer = LocalTrainer(model_builder(), trainer_config)
        executor = BatchedExecutor(
            trainer, layout, split_arrays, train_batch=train_batch
        )
        evaluator = None
        observe_state: dict = {}
        # Worker-local registry: recorded here, drained into a delta
        # that rides each train reply (the fallback_counts pattern).
        registry = Registry() if telemetry_enabled else None
        shard_train_ms = shard_tasks = None
        if registry is not None:
            shard_train_ms = registry.histogram(
                "repro_shard_train_ms",
                "Wall-clock of one shard worker's train batch",
                labels=("shard",),
            ).child(shard=str(shard_index))
            shard_tasks = registry.counter(
                "repro_shard_tasks_total",
                "Local-update tasks trained, by shard",
                labels=("shard",),
            ).child(shard=str(shard_index))
        while True:
            message = conn.recv()
            if message[0] == _STOP:
                break
            if message[0] == _OBSERVE_INIT:
                x_global, y_global, attack_arrays, eval_batch = message[1]
                observe_state = {
                    "x_global": x_global,
                    "y_global": y_global,
                    "attack": attack_arrays,
                }
                evaluator = BatchedEvaluator(
                    trainer.model, layout=layout, eval_batch=eval_batch
                )
                conn.send(("ok", None))
                continue
            if message[0] == _OBSERVE:
                conn.send(
                    (
                        "ok",
                        _observe_rows(
                            evaluator, observe_state, arena, message[1]
                        ),
                    )
                )
                continue
            _, items, new_config = message
            if new_config is not None:
                # The shared trainer's config was swapped after this
                # worker spawned (DP install does that); mirror it —
                # the internal BatchedExecutor re-reads trainer.config
                # on every call, exactly like the single-process path.
                trainer.set_config(new_config)
            tasks = [
                UpdateTask(
                    node_id,
                    arena.data[node_id],
                    _restore_generator(rng_state),
                    session,
                )
                for node_id, session, rng_state in items
            ]
            if registry is None:
                results = executor.train_batch(tasks)
            else:
                start = perf_counter()
                results = executor.train_batch(tasks)
                shard_train_ms.observe((perf_counter() - start) * 1000.0)
                shard_tasks.inc(len(tasks))
            for task, (vector, _) in zip(tasks, results):
                arena.data[task.node_id][...] = vector
            fallback_delta = dict(executor.fallback_counts)
            executor.fallback_counts.clear()
            telemetry_delta = (
                registry.collect_delta() if registry is not None else None
            )
            conn.send(
                (
                    "ok",
                    (
                        [
                            (task.node_id, task.rng.bit_generator.state)
                            for task in tasks
                        ],
                        fallback_delta,
                        telemetry_delta,
                    ),
                )
            )
    except EOFError:  # pragma: no cover - parent vanished mid-recv
        pass
    except BaseException:  # noqa: BLE001 - report, then die
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:  # pragma: no cover - pipe already gone
            pass
    finally:
        if executor is not None:
            executor.close()
        if arena is not None:
            arena.close()
        conn.close()


def _observe_rows(
    evaluator: BatchedEvaluator | None,
    state: dict,
    arena: SharedArena,
    items: list[tuple],
) -> list[tuple]:
    """Score one shard's rows for one observation round.

    ``items`` holds ``(row, train_idx, test_idx)`` triples — the
    subsample index arrays the parent drew from the observer RNG
    (``None`` means the whole split). Models are read straight out of
    the live arena; only score vectors and accuracy floats go back.
    """
    if evaluator is None:
        raise RuntimeError("observe message before observe_init")
    rows = [row for row, _, _ in items]
    xs_train: list[np.ndarray] = []
    ys_train: list[np.ndarray] = []
    xs_test: list[np.ndarray] = []
    ys_test: list[np.ndarray] = []
    for row, train_idx, test_idx in items:
        train_x, train_y, test_x, test_y = state["attack"][row]
        if train_idx is not None:
            train_x, train_y = train_x[train_idx], train_y[train_idx]
        if test_idx is not None:
            test_x, test_y = test_x[test_idx], test_y[test_idx]
        xs_train.append(train_x)
        ys_train.append(train_y)
        xs_test.append(test_x)
        ys_test.append(test_y)
    params = arena.data
    own = params[np.asarray(rows, dtype=np.intp)]
    global_acc = evaluator.accuracy_rows(own, state["x_global"], state["y_global"])
    obs = evaluator.attack_observations(
        params, xs_train + xs_test, ys_train + ys_test, rows=rows + rows
    )
    n = len(rows)
    return [
        (
            row,
            obs[i][0],  # member MPE scores
            obs[n + i][0],  # non-member MPE scores
            obs[i][1],  # local-train accuracy
            obs[n + i][1],  # local-test accuracy
            float(global_acc[i]),
        )
        for i, row in enumerate(rows)
    ]


def _mp_context():
    """Fork where available (fast, nothing needs pickling at spawn
    time); spawn elsewhere — worker arguments stay picklable either
    way."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ShardedExecutor(Executor):
    """Arena rows partitioned across persistent shard-worker processes.

    Construction spawns one worker per (non-empty) shard; each attaches
    to the arena's shared-memory segment by name and keeps a workspace
    model, so per-tick traffic is row indices and generator states
    only. ``train_batch`` is forwarded to every shard's internal
    :class:`BatchedExecutor`, whose grouping and per-row fallback rules
    (DP-SGD, models without a batched backward, empty splits) apply
    unchanged within each shard.

    ``close`` is idempotent and must run eventually (the engine's
    ``close``/context manager does); workers are daemons, so even an
    abandoned executor cannot outlive its process.

    When the engine passes its live ``trainer``, config swaps made
    after construction (DP installation replaces the dataclass on the
    shared trainer) are pushed to the involved shards alongside the
    next batch, mirroring the batched executor's per-call config
    re-read; without a trainer the construction-time config is final.
    """

    name = "sharded"
    copies_task_vectors = False  # rows are read from the shared segment

    def __init__(
        self,
        model_builder: Callable[[], Module] | None,
        trainer_config: TrainerConfig,
        layout: StateLayout,
        splits: Sequence[NodeSplit] | SplitArrays,
        arena: StateArena,
        n_shards: int = 0,
        train_batch: int = 0,
        partition: str = "contiguous",
        trainer: "LocalTrainer | None" = None,
        telemetry: Telemetry | None = None,
    ):
        if model_builder is None:
            raise ValueError(
                "the sharded executor needs a picklable model_builder "
                "(e.g. functools.partial(build_model, ...)) to construct "
                "per-shard workspace models"
            )
        segment = getattr(arena, "shared_name", None)
        if segment is None:
            raise ValueError(
                "the sharded executor needs a shared-memory arena "
                "(StateArena(..., shared=True)); a private arena's rows "
                "are invisible to shard workers"
            )
        super().__init__()
        split_arrays = as_split_arrays(splits)
        n_rows = arena.n_nodes
        requested = n_shards or min(
            os.cpu_count() or 1, _MAX_AUTO_SHARDS
        )
        requested = max(1, min(requested, n_rows))
        counts = [split_arrays[i][0].shape[0] for i in range(n_rows)]
        self.partitioner = RowPartitioner(partition)
        shard_rows = [
            rows
            for rows in self.partitioner.partition(
                n_rows, requested, sample_counts=counts
            )
            if rows.size
        ]
        self.n_shards = len(shard_rows)
        self.shard_rows = shard_rows
        self._shard_of = np.empty(n_rows, dtype=np.intp)
        for shard, rows in enumerate(shard_rows):
            self._shard_of[rows] = shard
        self._data = arena.data
        self._closed = False
        # When the engine hands us its live trainer, follow config
        # swaps made after construction (the batched executor re-reads
        # trainer.config per call; shards get the delta pushed).
        self._trainer = trainer
        self._config_override: TrainerConfig | None = None
        self._shard_config: list[TrainerConfig] = []
        self._observe_ready = False
        # Shard workers record into worker-local registries; replies
        # carry collect_delta() payloads that are folded in here.
        telemetry_enabled = telemetry is not None and telemetry.enabled
        self._registry = telemetry.registry if telemetry_enabled else None
        self._conns = []
        self._procs = []
        ctx = _mp_context()
        for shard_index, rows in enumerate(shard_rows):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_shard_worker,
                args=(
                    child_conn,
                    segment,
                    n_rows,
                    arena.dim,
                    arena.dtype,
                    model_builder,
                    trainer_config,
                    layout,
                    {int(i): split_arrays[int(i)] for i in rows},
                    train_batch,
                    shard_index,
                    telemetry_enabled,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(process)
            self._shard_config.append(trainer_config)

    def set_config(self, config: TrainerConfig) -> None:
        """Swap the trainer config; shards get it with their next batch.

        Goes through the live trainer when the engine handed one over
        (so the single-process side revalidates too); otherwise the new
        config is stored and diff-pushed like any other swap.
        """
        if not isinstance(config, TrainerConfig):
            raise TypeError(
                f"expected a TrainerConfig, got {type(config).__name__}"
            )
        if self._trainer is not None:
            self._trainer.set_config(config)
        else:
            self._config_override = config

    def train_batch(
        self, tasks: list[UpdateTask]
    ) -> list[tuple[np.ndarray, np.random.Generator]]:
        if self._closed:
            raise RuntimeError("executor is closed")
        by_shard: dict[int, list[int]] = {}
        for i, task in enumerate(tasks):
            by_shard.setdefault(int(self._shard_of[task.node_id]), []).append(i)
        config = (
            self._trainer.config
            if self._trainer is not None
            else self._config_override
        )
        # Fan out to every involved shard first; they train in
        # parallel while we collect replies in the same order.
        for shard, indices in by_shard.items():
            push = None
            if config is not None and config != self._shard_config[shard]:
                self._shard_config[shard] = config
                push = config
            try:
                self._conns[shard].send(
                    (_TRAIN, encode_tasks([tasks[i] for i in indices]), push)
                )
            except (BrokenPipeError, OSError):
                # The worker died — most likely after sending a
                # diagnostic that is still buffered in the pipe; read
                # it so the caller sees the real traceback instead of
                # a bare broken pipe.
                self._recv(shard)
                raise RuntimeError(
                    f"shard worker {shard} died without a diagnostic"
                ) from None
        results: list = [None] * len(tasks)
        for shard, indices in by_shard.items():
            rng_states, fallback_delta, telemetry_delta = self._recv(shard)
            if fallback_delta:
                self.fallback_counts.update(fallback_delta)
            if telemetry_delta and self._registry is not None:
                self._registry.merge_delta(telemetry_delta)
            for i, (node_id, rng_state) in zip(indices, rng_states):
                task = tasks[i]
                if task.node_id != node_id:
                    raise RuntimeError(
                        f"shard {shard} replied out of order "
                        f"(row {node_id}, expected {task.node_id})"
                    )
                # Advance the node's own generator to where the worker
                # left its copy — streams continue exactly as serially.
                task.rng.bit_generator.state = rng_state
                results[i] = (self._data[node_id], task.rng)
        return results

    # -- sharded observation ------------------------------------------

    def observe_init(
        self,
        x_global: np.ndarray,
        y_global: np.ndarray,
        attack_arrays: dict[int, tuple],
        eval_batch: int = 0,
    ) -> None:
        """Ship the per-round-invariant observation inputs once.

        ``attack_arrays`` maps every row to its full
        ``(train_x, train_y, test_x, test_y)`` arrays; each shard only
        receives its own rows' slice plus the (already subsampled)
        global test set. After this, per-round ``observe`` traffic is
        index arrays in, score vectors out.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        for shard, rows in enumerate(self.shard_rows):
            shard_arrays = {int(row): attack_arrays[int(row)] for row in rows}
            self._conns[shard].send(
                (_OBSERVE_INIT, (x_global, y_global, shard_arrays, eval_batch))
            )
        for shard in range(self.n_shards):
            self._recv(shard)
        self._observe_ready = True

    def observe(
        self, plans: dict[int, tuple[np.ndarray | None, np.ndarray | None]]
    ) -> dict[int, tuple[np.ndarray, np.ndarray, float, float, float]]:
        """Score every planned row on its own shard, against the live arena.

        ``plans`` maps row -> ``(train_idx, test_idx)`` subsample index
        arrays (``None`` = whole split), pre-drawn by the observer so
        RNG consumption matches the single-process path. Returns
        row -> ``(member_scores, nonmember_scores, train_accuracy,
        test_accuracy, global_accuracy)`` with raw (unbalanced) score
        vectors; balancing and report building stay with the caller.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        if not self._observe_ready:
            raise RuntimeError("observe() called before observe_init()")
        involved = []
        for shard, rows in enumerate(self.shard_rows):
            items = [
                (int(row), plans[int(row)][0], plans[int(row)][1])
                for row in rows
                if int(row) in plans
            ]
            if not items:
                continue
            self._conns[shard].send((_OBSERVE, items))
            involved.append(shard)
        out: dict[int, tuple] = {}
        for shard in involved:
            for row, member, nonmember, train_acc, test_acc, global_acc in (
                self._recv(shard)
            ):
                out[row] = (member, nonmember, train_acc, test_acc, global_acc)
        return out

    def _recv(self, shard: int):
        try:
            tag, payload = self._conns[shard].recv()
        except EOFError:
            raise RuntimeError(
                f"shard worker {shard} died unexpectedly"
            ) from None
        if tag != "ok":
            raise RuntimeError(f"shard worker {shard} failed:\n{payload}")
        return payload

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send((_STOP,))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            conn.close()
        for process in self._procs:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=10)
