"""Sharded shared-memory execution subsystem.

The batched executor (PR 3) trains a tick's wake tasks as lockstep
``(B, dim)`` blocks, but all of it on one core; the process executor
(PR 1) uses many cores, but pickles every task's state vector to a pool
worker and copies the result back. This module combines the two: arena
rows are partitioned across long-lived *shard workers*, each of which
attaches to the engine's :class:`~repro.nn.flat.SharedArena` segment
once, owns a workspace model plus its shard's data slices, and runs the
PR 3 batched training kernels over its rows in place.

Per tick, a shard receives only ``(row_index, session, rng_state)``
triples — never a state vector. Workers read their rows straight out of
the shared segment, train, and write results straight back; the only
payload returned is each task's advanced generator state. That is the
zero-copy contract: task traffic is O(tasks), not O(tasks * dim).

Determinism: each task travels with its node's exact generator state
and lr_decay session index, and every shard trains through the same
:class:`~repro.gossip.engine.BatchedExecutor` logic (including its
per-row fallback for DP-SGD, stochastic layers and empty splits), so a
sharded run is bit-identical to :class:`~repro.gossip.engine.SerialExecutor`
on a float64 arena for a fixed seed — the engine's phased ticks make
results independent of which process trains which row.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from typing import Callable, Sequence

import numpy as np

from repro.data.partition import NodeSplit
from repro.gossip.engine import (
    BatchedExecutor,
    Executor,
    SplitArrays,
    StateArena,
    UpdateTask,
    as_split_arrays,
)
from repro.gossip.trainer import LocalTrainer, TrainerConfig
from repro.nn.flat import SharedArena, StateLayout
from repro.nn.layers import Module

__all__ = ["RowPartitioner", "ShardedExecutor"]

# Default cap mirrors ProcessExecutor's pool sizing.
_MAX_AUTO_SHARDS = 8

_TRAIN = "train"
_STOP = "stop"


class RowPartitioner:
    """Maps arena row indices to shards.

    Strategies:

    * ``"contiguous"`` — equal-length contiguous row ranges (shard 0
      gets the first rows, and so on). Predictable, cache-friendly.
    * ``"balanced"`` — greedy longest-processing-time assignment by
      per-row sample count: rows are placed largest-first onto the
      currently lightest shard, equalizing training compute when node
      splits are uneven (ties break toward fewer rows, then the lower
      shard id, so the result is deterministic).

    ``partition`` always returns exactly ``n_shards`` disjoint,
    ascending index arrays covering ``range(n_rows)``; trailing shards
    may be empty when ``n_shards > n_rows`` (the executor clamps its
    worker count so it never spawns one for an empty shard).
    """

    strategies = ("contiguous", "balanced")

    def __init__(self, strategy: str = "contiguous"):
        if strategy not in self.strategies:
            raise ValueError(
                f"unknown partition strategy {strategy!r}; "
                f"expected one of {self.strategies}"
            )
        self.strategy = strategy

    def partition(
        self,
        n_rows: int,
        n_shards: int,
        sample_counts: Sequence[int] | None = None,
    ) -> list[np.ndarray]:
        if n_rows <= 0:
            raise ValueError("n_rows must be positive")
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if sample_counts is not None and len(sample_counts) != n_rows:
            raise ValueError(
                f"got {len(sample_counts)} sample counts for {n_rows} rows"
            )
        if self.strategy == "contiguous":
            return [
                np.asarray(chunk, dtype=np.intp)
                for chunk in np.array_split(np.arange(n_rows), n_shards)
            ]
        counts = (
            np.ones(n_rows)
            if sample_counts is None
            else np.asarray(sample_counts, dtype=np.float64)
        )
        order = sorted(range(n_rows), key=lambda row: (-counts[row], row))
        loads = [0.0] * n_shards
        sizes = [0] * n_shards
        shards: list[list[int]] = [[] for _ in range(n_shards)]
        for row in order:
            target = min(
                range(n_shards), key=lambda s: (loads[s], sizes[s], s)
            )
            shards[target].append(row)
            loads[target] += counts[row]
            sizes[target] += 1
        return [np.asarray(sorted(rows), dtype=np.intp) for rows in shards]


def _restore_generator(state: dict) -> np.random.Generator:
    """Rebuild a Generator from a ``bit_generator.state`` dict."""
    bit_generator = getattr(np.random, state["bit_generator"])()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


def encode_tasks(tasks: Sequence[UpdateTask]) -> list[tuple]:
    """The exact per-task payload shipped to a shard worker.

    Row index, lr_decay session, generator state — and nothing else.
    State vectors never cross the pipe; they live in the shared arena
    both ways. Kept as a standalone function so tests can assert the
    no-pickle contract on the real payload.
    """
    return [
        (task.node_id, task.session, task.rng.bit_generator.state)
        for task in tasks
    ]


def _shard_worker(
    conn,
    segment: str,
    n_rows: int,
    dim: int,
    dtype: np.dtype,
    model_builder: Callable[[], Module],
    trainer_config: TrainerConfig,
    layout: StateLayout,
    split_arrays: SplitArrays,
    train_batch: int,
) -> None:
    """Long-lived shard worker loop.

    Attaches to the shared arena once, builds its workspace trainer and
    a :class:`BatchedExecutor` over its split slice once, then serves
    ``("train", items)`` requests until told to stop: rebuild each
    task's generator, train (blocked where possible, per-row fallback
    otherwise), write result rows into the shared segment, and reply
    with the advanced generator states.
    """
    arena = None
    try:
        arena = SharedArena.attach(segment, n_rows, dim, dtype)
        trainer = LocalTrainer(model_builder(), trainer_config)
        executor = BatchedExecutor(
            trainer, layout, split_arrays, train_batch=train_batch
        )
        while True:
            message = conn.recv()
            if message[0] == _STOP:
                break
            _, items, new_config = message
            if new_config is not None:
                # The shared trainer's config was swapped after this
                # worker spawned (DP install does that); mirror it —
                # the internal BatchedExecutor re-reads trainer.config
                # on every call, exactly like the single-process path.
                trainer.config = new_config
            tasks = [
                UpdateTask(
                    node_id,
                    arena.data[node_id],
                    _restore_generator(rng_state),
                    session,
                )
                for node_id, session, rng_state in items
            ]
            results = executor.train_batch(tasks)
            for task, (vector, _) in zip(tasks, results):
                arena.data[task.node_id][...] = vector
            conn.send(
                (
                    "ok",
                    [
                        (task.node_id, task.rng.bit_generator.state)
                        for task in tasks
                    ],
                )
            )
    except EOFError:  # pragma: no cover - parent vanished mid-recv
        pass
    except BaseException:  # noqa: BLE001 - report, then die
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:  # pragma: no cover - pipe already gone
            pass
    finally:
        if arena is not None:
            arena.close()
        conn.close()


def _mp_context():
    """Fork where available (fast, nothing needs pickling at spawn
    time); spawn elsewhere — worker arguments stay picklable either
    way."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ShardedExecutor(Executor):
    """Arena rows partitioned across persistent shard-worker processes.

    Construction spawns one worker per (non-empty) shard; each attaches
    to the arena's shared-memory segment by name and keeps a workspace
    model, so per-tick traffic is row indices and generator states
    only. ``train_batch`` is forwarded to every shard's internal
    :class:`BatchedExecutor`, whose grouping and per-row fallback rules
    (DP-SGD, models without a batched backward, empty splits) apply
    unchanged within each shard.

    ``close`` is idempotent and must run eventually (the engine's
    ``close``/context manager does); workers are daemons, so even an
    abandoned executor cannot outlive its process.

    When the engine passes its live ``trainer``, config swaps made
    after construction (DP installation replaces the dataclass on the
    shared trainer) are pushed to the involved shards alongside the
    next batch, mirroring the batched executor's per-call config
    re-read; without a trainer the construction-time config is final.
    """

    name = "sharded"
    copies_task_vectors = False  # rows are read from the shared segment

    def __init__(
        self,
        model_builder: Callable[[], Module] | None,
        trainer_config: TrainerConfig,
        layout: StateLayout,
        splits: Sequence[NodeSplit] | SplitArrays,
        arena: StateArena,
        n_shards: int = 0,
        train_batch: int = 0,
        partition: str = "contiguous",
        trainer: "LocalTrainer | None" = None,
    ):
        if model_builder is None:
            raise ValueError(
                "the sharded executor needs a picklable model_builder "
                "(e.g. functools.partial(build_model, ...)) to construct "
                "per-shard workspace models"
            )
        segment = getattr(arena, "shared_name", None)
        if segment is None:
            raise ValueError(
                "the sharded executor needs a shared-memory arena "
                "(StateArena(..., shared=True)); a private arena's rows "
                "are invisible to shard workers"
            )
        split_arrays = as_split_arrays(splits)
        n_rows = arena.n_nodes
        requested = n_shards or min(
            os.cpu_count() or 1, _MAX_AUTO_SHARDS
        )
        requested = max(1, min(requested, n_rows))
        counts = [split_arrays[i][0].shape[0] for i in range(n_rows)]
        self.partitioner = RowPartitioner(partition)
        shard_rows = [
            rows
            for rows in self.partitioner.partition(
                n_rows, requested, sample_counts=counts
            )
            if rows.size
        ]
        self.n_shards = len(shard_rows)
        self.shard_rows = shard_rows
        self._shard_of = np.empty(n_rows, dtype=np.intp)
        for shard, rows in enumerate(shard_rows):
            self._shard_of[rows] = shard
        self._data = arena.data
        self._closed = False
        # When the engine hands us its live trainer, follow config
        # swaps made after construction (the batched executor re-reads
        # trainer.config per call; shards get the delta pushed).
        self._trainer = trainer
        self._shard_config: list[TrainerConfig] = []
        self._conns = []
        self._procs = []
        ctx = _mp_context()
        for rows in shard_rows:
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_shard_worker,
                args=(
                    child_conn,
                    segment,
                    n_rows,
                    arena.dim,
                    arena.dtype,
                    model_builder,
                    trainer_config,
                    layout,
                    {int(i): split_arrays[int(i)] for i in rows},
                    train_batch,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(process)
            self._shard_config.append(trainer_config)

    def train_batch(
        self, tasks: list[UpdateTask]
    ) -> list[tuple[np.ndarray, np.random.Generator]]:
        if self._closed:
            raise RuntimeError("executor is closed")
        by_shard: dict[int, list[int]] = {}
        for i, task in enumerate(tasks):
            by_shard.setdefault(int(self._shard_of[task.node_id]), []).append(i)
        config = self._trainer.config if self._trainer is not None else None
        # Fan out to every involved shard first; they train in
        # parallel while we collect replies in the same order.
        for shard, indices in by_shard.items():
            push = None
            if config is not None and config != self._shard_config[shard]:
                self._shard_config[shard] = config
                push = config
            try:
                self._conns[shard].send(
                    (_TRAIN, encode_tasks([tasks[i] for i in indices]), push)
                )
            except (BrokenPipeError, OSError):
                # The worker died — most likely after sending a
                # diagnostic that is still buffered in the pipe; read
                # it so the caller sees the real traceback instead of
                # a bare broken pipe.
                self._recv(shard)
                raise RuntimeError(
                    f"shard worker {shard} died without a diagnostic"
                ) from None
        results: list = [None] * len(tasks)
        for shard, indices in by_shard.items():
            for i, (node_id, rng_state) in zip(indices, self._recv(shard)):
                task = tasks[i]
                if task.node_id != node_id:
                    raise RuntimeError(
                        f"shard {shard} replied out of order "
                        f"(row {node_id}, expected {task.node_id})"
                    )
                # Advance the node's own generator to where the worker
                # left its copy — streams continue exactly as serially.
                task.rng.bit_generator.state = rng_state
                results[i] = (self._data[node_id], task.rng)
        return results

    def _recv(self, shard: int):
        try:
            tag, payload = self._conns[shard].recv()
        except EOFError:
            raise RuntimeError(
                f"shard worker {shard} died unexpectedly"
            ) from None
        if tag != "ok":
            raise RuntimeError(f"shard worker {shard} failed:\n{payload}")
        return payload

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send((_STOP,))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            conn.close()
        for process in self._procs:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=10)
