"""Discrete-event gossip simulator.

Drives the tick clock, the peer-sampling service and the protocol
hooks. Message delivery is instantaneous (a send at tick t is received
at tick t), matching the GossiPy-style simulation used by the paper.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.partition import NodeSplit
from repro.gossip.clock import TickClock, WakeSchedule
from repro.gossip.messages import MessageLog, ModelMessage
from repro.gossip.node import GossipNode
from repro.gossip.protocols import GossipProtocol
from repro.graph.peer_sampling import PeerSampler, make_sampler_by_name
from repro.nn.serialize import State

__all__ = ["SimulatorConfig", "GossipSimulator"]

# round_callback(round_index, simulator) -> None
RoundCallback = Callable[[int, "GossipSimulator"], None]


@dataclass(frozen=True)
class SimulatorConfig:
    """Static description of one gossip run's communication layer.

    ``sampler`` selects the peer-sampling service by name ("static",
    "peerswap", "fresh"); when None it is derived from ``dynamic`` for
    backward compatibility with the paper's two-setting grid.

    Failure injection (both default off):

    * ``drop_prob`` — every message is independently lost with this
      probability (lossy links);
    * ``failure_prob`` — a waking node is unavailable with this
      probability and skips the wake entirely (crash-recovery churn).

    ``delay_ticks``/``delay_jitter`` model network latency: a message
    sent at tick t is delivered at ``t + delay_ticks + U{0..jitter}``.
    The default 0 reproduces the paper's instantaneous exchanges.
    """

    n_nodes: int = 16
    view_size: int = 2
    dynamic: bool = False
    sampler: str | None = None
    ticks_per_round: int = 100
    wake_mu: float = 100.0
    wake_sigma: float = 10.0
    drop_prob: float = 0.0
    failure_prob: float = 0.0
    delay_ticks: int = 0
    delay_jitter: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes <= 1:
            raise ValueError("need at least two nodes")
        if not 0 < self.view_size < self.n_nodes:
            raise ValueError("view_size must be in (0, n_nodes)")
        if not 0.0 <= self.drop_prob < 1.0:
            raise ValueError("drop_prob must be in [0, 1)")
        if not 0.0 <= self.failure_prob < 1.0:
            raise ValueError("failure_prob must be in [0, 1)")
        if self.delay_ticks < 0 or self.delay_jitter < 0:
            raise ValueError("delays must be non-negative")

    @property
    def sampler_name(self) -> str:
        if self.sampler is not None:
            return self.sampler
        return "peerswap" if self.dynamic else "static"


class GossipSimulator:
    """Owns nodes, topology, clock and message log for one run."""

    def __init__(
        self,
        config: SimulatorConfig,
        protocol: GossipProtocol,
        splits: list[NodeSplit],
        initial_state: State,
        keep_payloads: bool = False,
    ):
        if len(splits) != config.n_nodes:
            raise ValueError(
                f"got {len(splits)} data splits for {config.n_nodes} nodes"
            )
        self.config = config
        self.protocol = protocol
        self.rng = np.random.default_rng(config.seed)
        self.sampler: PeerSampler = make_sampler_by_name(
            config.sampler_name, config.n_nodes, config.view_size, self.rng
        )
        self.messages_dropped = 0
        self.wakes_skipped = 0
        # In-flight messages as a min-heap of (deliver_tick, seq, ...);
        # the sequence number breaks ties FIFO.
        self._in_flight: list[tuple[int, int, int, int, State]] = []
        self._send_seq = 0
        self.clock = TickClock(config.ticks_per_round)
        self.schedule = WakeSchedule(
            config.n_nodes, self.rng, mu=config.wake_mu, sigma=config.wake_sigma
        )
        self.log = MessageLog(keep_payloads=keep_payloads)
        self.nodes = [
            GossipNode(
                node_id=split.node_id,
                state={k: v.copy() for k, v in initial_state.items()},
                split=split,
                rng=np.random.default_rng(
                    self.rng.integers(0, 2**63 - 1)
                ),
            )
            for split in splits
        ]

    # -- messaging ------------------------------------------------------

    def _send(self, sender: int, receiver: int, payload: State) -> None:
        if receiver == sender:
            raise ValueError(f"node {sender} attempted to message itself")
        if self.config.drop_prob and self.rng.random() < self.config.drop_prob:
            self.messages_dropped += 1
            return
        self.log.record(
            ModelMessage(
                sender=sender,
                receiver=receiver,
                tick=self.clock.tick,
                payload=payload,
            )
        )
        delay = self.config.delay_ticks
        if self.config.delay_jitter:
            delay += int(self.rng.integers(0, self.config.delay_jitter + 1))
        if delay == 0:
            self.protocol.on_receive(self.nodes[receiver], payload)
        else:
            heapq.heappush(
                self._in_flight,
                (self.clock.tick + delay, self._send_seq, sender, receiver, payload),
            )
            self._send_seq += 1

    def _deliver_due(self) -> None:
        """Deliver every in-flight message whose time has come."""
        while self._in_flight and self._in_flight[0][0] <= self.clock.tick:
            _, _, _, receiver, payload = heapq.heappop(self._in_flight)
            self.protocol.on_receive(self.nodes[receiver], payload)

    @property
    def messages_in_flight(self) -> int:
        return len(self._in_flight)

    # -- main loop ------------------------------------------------------

    def run_tick(self) -> None:
        """Process one tick: deliver due messages, wake nodes in random
        order, then advance the clock."""
        self._deliver_due()
        waking = self.schedule.waking_nodes(self.clock.tick)
        if waking:
            self.rng.shuffle(waking)
            for node_id in waking:
                node_id = int(node_id)
                if (
                    self.config.failure_prob
                    and self.rng.random() < self.config.failure_prob
                ):
                    self.wakes_skipped += 1
                    continue
                # PeerSwap happens "before doing anything else" (S2.4).
                self.sampler.on_wake(node_id)
                self.protocol.on_wake(
                    self.nodes[node_id],
                    self.sampler.view(node_id),
                    self._send,
                )
        self.clock.advance()

    def run_round(self) -> None:
        """Advance exactly one communication round."""
        target = self.clock.tick + self.config.ticks_per_round
        while self.clock.tick < target:
            self.run_tick()

    def run(self, rounds: int, round_callback: RoundCallback | None = None) -> None:
        """Run ``rounds`` communication rounds, invoking the callback
        (e.g. the omniscient attacker) at each round boundary."""
        for round_index in range(rounds):
            self.run_round()
            if round_callback is not None:
                round_callback(round_index, self)

    # -- introspection ----------------------------------------------------

    def states(self) -> list[State]:
        """Snapshot of every node's current model (attacker's view)."""
        return [node.snapshot() for node in self.nodes]

    @property
    def messages_sent(self) -> int:
        return self.log.count
