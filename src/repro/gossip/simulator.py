"""Discrete-event gossip simulator.

Drives the tick clock, the peer-sampling service and the protocol
hooks. Message delivery is instantaneous (a send at tick t is received
at tick t), matching the GossiPy-style simulation used by the paper.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.partition import NodeSplit
from repro.gossip.clock import TickClock, WakeSchedule
from repro.gossip.messages import MessageLog, ModelMessage
from repro.gossip.node import GossipNode
from repro.gossip.protocols import GossipProtocol
from repro.graph.peer_sampling import PeerSampler, make_sampler_by_name
from repro.nn.serialize import State

__all__ = ["SimulatorConfig", "GossipSimulator"]

# round_callback(round_index, simulator) -> None
RoundCallback = Callable[[int, "GossipSimulator"], None]


@dataclass(frozen=True)
class SimulatorConfig:
    """Static description of one gossip run's communication layer.

    ``sampler`` selects the peer-sampling service by name ("static",
    "peerswap", "fresh"); when None it is derived from ``dynamic`` for
    backward compatibility with the paper's two-setting grid.

    Failure injection (both default off):

    * ``drop_prob`` — every message is independently lost with this
      probability (lossy links);
    * ``failure_prob`` — a waking node is unavailable with this
      probability and skips the wake entirely (crash-recovery churn).

    ``delay_ticks``/``delay_jitter`` model network latency: a message
    sent at tick t is delivered at ``t + delay_ticks + U{0..jitter}``.
    The default 0 reproduces the paper's instantaneous exchanges.

    Execution engine (see DESIGN.md, "Flat-state execution engine"):

    * ``engine`` — "flat" (the default) stores all node models in one
      contiguous ``(n_nodes, dim)`` arena and vectorizes aggregation;
      "dict" keeps the legacy per-key dict-``State`` hot path.
      Semantic note: the flat engine runs *phased* ticks (all sends of
      a tick become visible only after every wake of that tick), which
      makes serial and parallel execution bit-identical; the dict
      engine interleaves delivery with the wake loop. The two engines
      are statistically equivalent but not bitwise comparable.
    * ``executor`` — "serial", "process", "batched" or "sharded"; the
      flat engine can run the local updates of independently waking
      nodes in a process pool, train them in lockstep as one
      ``(B, dim)`` block ("batched" — DP-SGD and models without a
      batched backward fall back per row), or partition arena rows
      across long-lived shard workers that each run the batched
      kernels over a zero-copy shared-memory arena ("sharded").
      Ignored by the dict engine.
    * ``n_workers`` — process-pool size (0 = one per CPU, capped).
    * ``n_shards`` — shard-worker count for the sharded executor
      (0 = one per CPU, capped; always clamped to ``n_nodes``).
    * ``shard_partition`` — how arena rows map to shards:
      "contiguous" row ranges, or "balanced" greedy assignment by
      per-node sample count (equalizes shard compute when splits are
      uneven).
    * ``train_batch`` — rows per blocked training op for the batched
      executor (and for each shard of the sharded one): 0 = one block
      per same-size group of a tick's wake tasks, N > 0 = blocks of at
      most N rows (bounds peak activation memory for conv models),
      -1 = force the per-row path. Ignored by the other executors.
    * ``arena_dtype`` — storage dtype of the flat arena; evaluation
      *and* batched-executor training math stay in this dtype (no
      float64 promotion).
    """

    n_nodes: int = 16
    view_size: int = 2
    dynamic: bool = False
    sampler: str | None = None
    ticks_per_round: int = 100
    wake_mu: float = 100.0
    wake_sigma: float = 10.0
    drop_prob: float = 0.0
    failure_prob: float = 0.0
    delay_ticks: int = 0
    delay_jitter: int = 0
    engine: str = "flat"
    executor: str = "serial"
    n_workers: int = 0
    n_shards: int = 0
    shard_partition: str = "contiguous"
    train_batch: int = 0
    arena_dtype: str = "float64"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes <= 1:
            raise ValueError("need at least two nodes")
        if not 0 < self.view_size < self.n_nodes:
            raise ValueError("view_size must be in (0, n_nodes)")
        if not 0.0 <= self.drop_prob < 1.0:
            raise ValueError("drop_prob must be in [0, 1)")
        if not 0.0 <= self.failure_prob < 1.0:
            raise ValueError("failure_prob must be in [0, 1)")
        if self.delay_ticks < 0 or self.delay_jitter < 0:
            raise ValueError("delays must be non-negative")
        if self.engine not in ("dict", "flat"):
            raise ValueError("engine must be 'dict' or 'flat'")
        if self.executor not in ("serial", "process", "batched", "sharded"):
            raise ValueError(
                "executor must be 'serial', 'process', 'batched' "
                "or 'sharded'"
            )
        if self.n_workers < 0:
            raise ValueError("n_workers must be non-negative")
        if self.n_shards < 0:
            raise ValueError("n_shards must be non-negative")
        if self.shard_partition not in ("contiguous", "balanced"):
            raise ValueError(
                "shard_partition must be 'contiguous' or 'balanced'"
            )
        if self.train_batch < -1:
            raise ValueError("train_batch must be >= -1")
        if self.arena_dtype not in ("float32", "float64"):
            raise ValueError("arena_dtype must be 'float32' or 'float64'")

    @property
    def sampler_name(self) -> str:
        if self.sampler is not None:
            return self.sampler
        return "peerswap" if self.dynamic else "static"


class GossipSimulator:
    """Owns nodes, topology, clock and message log for one run."""

    def __init__(
        self,
        config: SimulatorConfig,
        protocol: GossipProtocol,
        splits: list[NodeSplit],
        initial_state: State,
        keep_payloads: bool = False,
    ):
        if len(splits) != config.n_nodes:
            raise ValueError(
                f"got {len(splits)} data splits for {config.n_nodes} nodes"
            )
        self.config = config
        self.protocol = protocol
        self.rng = np.random.default_rng(config.seed)
        self.sampler: PeerSampler = make_sampler_by_name(
            config.sampler_name, config.n_nodes, config.view_size, self.rng
        )
        self.messages_dropped = 0
        self.wakes_skipped = 0
        self.messages_undelivered = 0
        # In-flight messages as a min-heap of (deliver_tick, seq, ...);
        # the sequence number breaks ties FIFO.
        self._in_flight: list[tuple[int, int, int, int, State]] = []
        self._send_seq = 0
        self.clock = TickClock(config.ticks_per_round)
        self.schedule = WakeSchedule(
            config.n_nodes, self.rng, mu=config.wake_mu, sigma=config.wake_sigma
        )
        self.log = MessageLog(keep_payloads=keep_payloads)
        self.nodes = [
            GossipNode(
                node_id=split.node_id,
                state=self._node_initial_state(initial_state),
                split=split,
                rng=np.random.default_rng(
                    self.rng.integers(0, 2**63 - 1)
                ),
            )
            for split in splits
        ]

    def _node_initial_state(self, initial_state: State) -> State:
        """Per-node copy of the shared initial model (engine hook: the
        flat engine skips the copy — node states become arena views)."""
        return {k: v.copy() for k, v in initial_state.items()}

    # -- messaging ------------------------------------------------------

    def _transmission_delay(self, sender: int, receiver: int) -> int | None:
        """Shared channel model for both engines: validate the link,
        decide drop (None) and the delivery delay in ticks. Draw order
        (drop first, then jitter) is part of the reproducibility
        contract."""
        if receiver == sender:
            raise ValueError(f"node {sender} attempted to message itself")
        if self.config.drop_prob and self.rng.random() < self.config.drop_prob:
            self.messages_dropped += 1
            return None
        delay = self.config.delay_ticks
        if self.config.delay_jitter:
            delay += int(self.rng.integers(0, self.config.delay_jitter + 1))
        return delay

    def _send(self, sender: int, receiver: int, payload: State) -> None:
        delay = self._transmission_delay(sender, receiver)
        if delay is None:
            return
        self.log.record(
            ModelMessage(
                sender=sender,
                receiver=receiver,
                tick=self.clock.tick,
                payload=payload,
            )
        )
        if delay == 0:
            self.protocol.on_receive(self.nodes[receiver], payload)
        else:
            # Copy-on-enqueue: the sender may keep training and mutate
            # its state while the message is in flight; the network must
            # deliver the bytes that were sent, not the sender's future.
            frozen = {name: arr.copy() for name, arr in payload.items()}
            heapq.heappush(
                self._in_flight,
                (self.clock.tick + delay, self._send_seq, sender, receiver, frozen),
            )
            self._send_seq += 1

    def _deliver_due(self) -> None:
        """Deliver every in-flight message whose time has come."""
        while self._in_flight and self._in_flight[0][0] <= self.clock.tick:
            _, _, _, receiver, payload = heapq.heappop(self._in_flight)
            self.protocol.on_receive(self.nodes[receiver], payload)

    @property
    def messages_in_flight(self) -> int:
        return len(self._in_flight)

    # -- main loop ------------------------------------------------------

    def run_tick(self) -> None:
        """Process one tick: deliver due messages, wake nodes in random
        order, then advance the clock."""
        self._deliver_due()
        waking = self.schedule.waking_nodes(self.clock.tick)
        if waking:
            self.rng.shuffle(waking)
            for node_id in waking:
                node_id = int(node_id)
                if (
                    self.config.failure_prob
                    and self.rng.random() < self.config.failure_prob
                ):
                    self.wakes_skipped += 1
                    continue
                # PeerSwap happens "before doing anything else" (S2.4).
                self.sampler.on_wake(node_id)
                self.protocol.on_wake(
                    self.nodes[node_id],
                    self.sampler.view(node_id),
                    self._send,
                )
        self.clock.advance()

    def run_round(self) -> None:
        """Advance exactly one communication round."""
        target = self.clock.tick + self.config.ticks_per_round
        while self.clock.tick < target:
            self.run_tick()

    def run(self, rounds: int, round_callback: RoundCallback | None = None) -> None:
        """Run ``rounds`` communication rounds, invoking the callback
        (e.g. the omniscient attacker) at each round boundary.

        Messages still in flight when the horizon ends are delivered if
        due at the final tick, and the remainder is tallied in
        ``messages_undelivered`` instead of silently lingering.
        """
        for round_index in range(rounds):
            self.run_round()
            if round_callback is not None:
                round_callback(round_index, self)
        self.finish()

    def finish(self) -> None:
        """End-of-run bookkeeping: deliver messages due at the final
        tick and tally the remainder in ``messages_undelivered``. The
        streaming session API calls this once the configured horizon is
        reached; :meth:`run` calls it for the one-shot path."""
        self._flush_end_of_run()
        self.messages_undelivered = len(self._in_flight)

    def _flush_end_of_run(self) -> None:
        """Deliver messages due at the final tick (engine hook)."""
        self._deliver_due()

    def set_trainer_config(self, config) -> None:
        """Swap the shared trainer's config (validated, loss rebuilt).

        The supported way to change hyperparameters mid-run (e.g. DP
        installation); the flat engine additionally propagates the swap
        to a live executor and its workers.
        """
        self.protocol.trainer.set_config(config)

    def fallback_counts(self) -> dict[str, int]:
        """Per-reason tallies of rows that left the blocked fast path.

        The dict engine has no blocked path, so this is always empty;
        the flat engine reports its executor's counters.
        """
        return {}

    def close(self) -> None:
        """Release engine resources (idempotent). No-op for the dict
        engine; the flat engine overrides it to shut down executor
        workers and shared-memory segments."""

    def __enter__(self) -> "GossipSimulator":
        """Context-manager support: ``with make_simulator(...) as sim:``
        guarantees :meth:`close` runs — pools and shared-memory
        segments are released even when a run raises mid-round."""
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- state capture (checkpoint/resume) --------------------------------

    def _copy_payload(self, payload):
        """Deep-copy one message payload (engine hook: the dict engine
        ships dict states, the flat engine ships flat vectors)."""
        return {name: arr.copy() for name, arr in payload.items()}

    def _capture_node_model(self, node: GossipNode):
        """The node's model parameters, detached from live storage
        (engine hook: the flat engine stores models in the arena
        snapshot instead and returns None here)."""
        return {name: arr.copy() for name, arr in node.state.items()}

    def _restore_node_model(self, node: GossipNode, saved) -> None:
        if saved is not None:
            node.state = {name: arr.copy() for name, arr in saved.items()}

    def capture_state(self) -> dict:
        """Snapshot every piece of mutable run state.

        Together with the (deterministically rebuildable) construction
        state, the returned dict fully determines the rest of the run:
        the tick clock, the simulator RNG stream (shared with the peer
        sampler), sampler views, per-node models / inboxes / RNG
        streams / counters, the in-flight message heap, the message log
        and the drop/skip tallies. ``restore_state`` inverts it;
        engines extend both via the ``_copy_payload`` /
        ``_capture_node_model`` hooks and subclass overrides.
        """
        trainer = self.protocol.trainer
        return {
            "tick": self.clock.tick,
            "rng": self.rng.bit_generator.state,
            "sampler": self.sampler.capture_state(),
            "send_seq": self._send_seq,
            "in_flight": [
                (tick, seq, sender, receiver, self._copy_payload(payload))
                for tick, seq, sender, receiver, payload in self._in_flight
            ],
            "messages_dropped": self.messages_dropped,
            "wakes_skipped": self.wakes_skipped,
            "messages_undelivered": self.messages_undelivered,
            "log": {
                "count": self.log.count,
                "per_sender": dict(self.log.per_sender),
                "messages": list(self.log.messages),
            },
            # The dict engine's lr_decay bookkeeping lives on the shared
            # trainer (the flat engine tracks sessions itself).
            "trainer_sessions": dict(trainer._sessions),
            "trainer_steps": trainer.steps_taken,
            "nodes": [
                {
                    "model": self._capture_node_model(node),
                    "inbox": [self._copy_payload(p) for p in node.inbox],
                    "rng": node.rng.bit_generator.state,
                    "updates_performed": node.updates_performed,
                    "models_received": node.models_received,
                }
                for node in self.nodes
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`capture_state` snapshot onto a freshly
        built simulator (same config). Every RNG stream is restored
        exactly, so the continued run is bit-identical to one that was
        never interrupted."""
        self.clock.tick = state["tick"]
        # The sampler shares this generator object; one restore covers
        # both draw streams.
        self.rng.bit_generator.state = state["rng"]
        self.sampler.restore_state(state["sampler"])
        self._send_seq = state["send_seq"]
        self._in_flight = [
            (tick, seq, sender, receiver, self._copy_payload(payload))
            for tick, seq, sender, receiver, payload in state["in_flight"]
        ]
        heapq.heapify(self._in_flight)
        self.messages_dropped = state["messages_dropped"]
        self.wakes_skipped = state["wakes_skipped"]
        self.messages_undelivered = state["messages_undelivered"]
        self.log.count = state["log"]["count"]
        self.log.per_sender = dict(state["log"]["per_sender"])
        self.log.messages = list(state["log"]["messages"])
        trainer = self.protocol.trainer
        trainer._sessions = dict(state["trainer_sessions"])
        trainer.steps_taken = state["trainer_steps"]
        for node, saved in zip(self.nodes, state["nodes"]):
            self._restore_node_model(node, saved["model"])
            node.inbox = [self._copy_payload(p) for p in saved["inbox"]]
            node.rng.bit_generator.state = saved["rng"]
            node.updates_performed = saved["updates_performed"]
            node.models_received = saved["models_received"]

    # -- introspection ----------------------------------------------------

    def states(self) -> list[State]:
        """Snapshot of every node's current model (attacker's view)."""
        return [node.snapshot() for node in self.nodes]

    def state_matrix(self, layout=None) -> np.ndarray:
        """All node models as one ``(n_nodes, dim)`` float matrix.

        The row-batch evaluation path reads node models through this
        hook. The base implementation packs each dict ``State`` through
        a :class:`~repro.nn.flat.StateLayout` (built from node 0 when
        not supplied); the flat engine overrides it to return its arena
        zero-copy. Treat the result as read-only — under the flat
        engine it IS the live arena.
        """
        from repro.nn.flat import StateLayout

        if layout is None:
            layout = StateLayout.from_state(self.nodes[0].state)
        # Pack in the states' own dtype so float32 models are evaluated
        # in float32 here too, matching the flat engine's arena dtype.
        dtype = np.result_type(*(slot.dtype for slot in layout.slots))
        out = np.empty((self.config.n_nodes, layout.dim), dtype=dtype)
        for node in self.nodes:
            layout.pack(node.state, out=out[node.node_id])
        return out

    @property
    def messages_sent(self) -> int:
        return self.log.count
