"""The two gossip-learning protocols of the paper.

* :class:`BaseGossipProtocol` — Algorithm 1. On wake-up a node sends
  its model to ONE random neighbor. On reception it aggregates pairwise
  (``theta_i <- (theta_i + theta_j) / 2``) and immediately performs a
  local update.
* :class:`SAMOProtocol` — Algorithm 2 (Send-All-Merge-Once, the
  paper's contribution). On reception a node only stores the model. On
  wake-up, if models were received it averages them with its own,
  performs a local update, clears the buffer, and finally sends its
  model to ALL neighbors.

Both are driven by the simulator through two hooks, ``on_wake`` and
``on_receive``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.gossip.node import GossipNode
from repro.gossip.trainer import LocalTrainer
from repro.nn.serialize import State, average_states

__all__ = [
    "GossipProtocol",
    "BaseGossipProtocol",
    "PartialMergeGossipProtocol",
    "SAMOProtocol",
    "make_protocol",
]

# send(sender_id, receiver_id, payload) provided by the simulator.
SendFn = Callable[[int, int, State], None]


class GossipProtocol:
    """Interface shared by both protocols.

    ``max_updates_per_node`` caps local updates per node; once a node
    exhausts the cap it keeps gossiping (aggregation and dissemination
    continue) but skips further training. The DP runner uses this to
    make the calibrated privacy budget a hard guarantee — exactly the
    fixed-step budget of DP-SGD deployments.
    """

    name = "abstract"

    def __init__(self, trainer: LocalTrainer, max_updates_per_node: int | None = None):
        self.trainer = trainer
        self.max_updates_per_node = max_updates_per_node

    def on_wake(self, node: GossipNode, view: set[int], send: SendFn) -> None:
        raise NotImplementedError

    def on_receive(self, node: GossipNode, payload: State) -> None:
        raise NotImplementedError

    def _local_update(self, node: GossipNode) -> None:
        if (
            self.max_updates_per_node is not None
            and node.updates_performed >= self.max_updates_per_node
        ):
            return
        node.state = self.trainer.train(
            node.state, node.train_x, node.train_y, node.rng,
            node_id=node.node_id,
        )
        node.updates_performed += 1


class BaseGossipProtocol(GossipProtocol):
    """Algorithm 1: push to one random neighbor; merge+train on receive.

    ``merge_weight`` is the weight given to the INCOMING model during
    the pairwise merge. The paper's Algorithm 1 uses 0.5 (plain
    averaging); values below 0.5 reproduce the *partial* aggregation of
    Pasquini et al. [62], which Section 6.2 argues mixes worse and
    leaks more — exercised by the aggregation ablation benchmark.
    """

    name = "base_gossip"

    def __init__(
        self,
        trainer: LocalTrainer,
        max_updates_per_node: int | None = None,
        merge_weight: float = 0.5,
    ):
        super().__init__(trainer, max_updates_per_node)
        if not 0.0 < merge_weight <= 1.0:
            raise ValueError("merge_weight must be in (0, 1]")
        self.merge_weight = merge_weight

    def on_wake(self, node: GossipNode, view: set[int], send: SendFn) -> None:
        if not view:
            return
        neighbor = int(node.rng.choice(sorted(view)))
        send(node.node_id, neighbor, node.snapshot())

    def on_receive(self, node: GossipNode, payload: State) -> None:
        node.models_received += 1
        node.state = average_states(
            [node.state, payload],
            weights=[1.0 - self.merge_weight, self.merge_weight],
        )
        self._local_update(node)


class PartialMergeGossipProtocol(BaseGossipProtocol):
    """Base Gossip with self-biased (partial) aggregation.

    Keeps 75% of the local model on each merge — the weaker-mixing
    aggregation style the paper contrasts against (Section 6.2).
    """

    name = "base_gossip_partial"

    def __init__(
        self, trainer: LocalTrainer, max_updates_per_node: int | None = None
    ):
        super().__init__(trainer, max_updates_per_node, merge_weight=0.25)


class SAMOProtocol(GossipProtocol):
    """Algorithm 2: buffer on receive; merge-once and push-all on wake."""

    name = "samo"

    def on_wake(self, node: GossipNode, view: set[int], send: SendFn) -> None:
        inbox = node.drain_inbox()
        if inbox:  # |Theta_i| > 1 counting the node's own model
            node.state = average_states([node.state] + inbox)
            self._local_update(node)
        for neighbor in sorted(view):
            send(node.node_id, neighbor, node.snapshot())

    def on_receive(self, node: GossipNode, payload: State) -> None:
        node.receive(payload)


def make_protocol(name: str, trainer: LocalTrainer) -> GossipProtocol:
    """Protocol factory keyed by the names used in experiment configs."""
    protocols: dict[str, type[GossipProtocol]] = {
        "base_gossip": BaseGossipProtocol,
        "base_gossip_partial": PartialMergeGossipProtocol,
        "samo": SAMOProtocol,
    }
    if name not in protocols:
        raise ValueError(f"unknown protocol {name!r}; choose from {sorted(protocols)}")
    return protocols[name](trainer)
