"""Local update steps (Equation 2), with optional DP-SGD.

Nodes own model *states* (plain dicts); a single shared workspace
:class:`~repro.nn.layers.Module` is loaded with a node's state, trained
on the node's local split, and the resulting state is handed back. This
keeps memory bounded when simulating many nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.nn.batched import (
    BatchedModel,
    _Block,
    named_leaf_modules,
    parameter_column_runs,
)
from repro.nn.flat import StateLayout
from repro.nn.layers import (
    BatchNorm2d,
    Module,
    mask_stream_rng,
    stream_dropout_layers,
)
from repro.nn.loss import CrossEntropyLoss, batched_cross_entropy_grad
from repro.nn.optim import SGD, BatchedSGD
from repro.privacy.dp import (
    DPSGDConfig,
    clip_block,
    clip_per_sample,
    noisy_gradient,
    noisy_gradient_block,
)
from repro.nn.serialize import State, get_state, set_state

__all__ = ["TrainerConfig", "LocalTrainer", "BatchedTrainer"]


@dataclass(frozen=True)
class TrainerConfig:
    """Hyperparameters of one node's local update (Table 2 columns).

    ``label_smoothing`` and ``lr_decay`` implement the paper's Section
    5 recommendation against *early overfitting* ("regularization,
    dynamic learning rates ... to limit the persistent impact of
    initial vulnerabilities"): label smoothing regularizes each local
    loss; ``lr_decay`` multiplies the effective learning rate by
    ``lr_decay ** session`` for successive local-update sessions of a
    node, cooling training down over time. Both default off, matching
    Table 2.
    """

    learning_rate: float = 0.01
    momentum: float = 0.0
    weight_decay: float = 5e-4
    local_epochs: int = 3
    batch_size: int = 32
    label_smoothing: float = 0.0
    lr_decay: float = 1.0
    dp: DPSGDConfig | None = None

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.local_epochs < 0:
            raise ValueError("local_epochs must be non-negative")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if not 0.0 <= self.label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        if not 0.0 < self.lr_decay <= 1.0:
            raise ValueError("lr_decay must be in (0, 1]")


class LocalTrainer:
    """Runs local SGD epochs on a shared workspace model."""

    def __init__(self, model: Module, config: TrainerConfig):
        self.model = model
        self.config = config
        self.loss = CrossEntropyLoss(label_smoothing=config.label_smoothing)
        self.steps_taken = 0
        self._sessions: dict[int, int] = {}
        self._stream_layers = stream_dropout_layers(model)

    def set_config(self, config: TrainerConfig) -> None:
        """Swap hyperparameters explicitly (validated, loss rebuilt).

        The supported way to change config mid-run (e.g. DP
        installation): the dataclass revalidates on construction and
        the loss is rebuilt immediately instead of lazily on the next
        ``train`` call.
        """
        if not isinstance(config, TrainerConfig):
            raise TypeError(
                f"expected TrainerConfig, got {type(config).__name__}"
            )
        self.config = config
        self.loss = CrossEntropyLoss(label_smoothing=config.label_smoothing)

    def train(
        self,
        state: State,
        x: np.ndarray,
        y: np.ndarray,
        rng: np.random.Generator,
        node_id: int | None = None,
        session: int | None = None,
    ) -> State:
        """Train ``state`` for ``local_epochs`` epochs on (x, y).

        Returns the updated state; the input dict is not mutated.
        Momentum buffers are fresh per call: after gossip aggregation a
        stale velocity has no meaning, so each local session starts
        clean (see DESIGN.md). ``node_id`` keys the per-node session
        counter used by ``lr_decay``; an explicit ``session`` bypasses
        that bookkeeping (the flat engine tracks sessions itself so
        process-pool workers stay stateless).
        """
        if x.shape[0] == 0:
            return dict(state)
        # Recreate the loss in case config was replaced post-init
        # (DP installation swaps the config dataclass).
        if self.loss.label_smoothing != self.config.label_smoothing:
            self.loss = CrossEntropyLoss(
                label_smoothing=self.config.label_smoothing
            )
        if session is None:
            session = self._sessions.get(node_id, 0) if node_id is not None else 0
            if node_id is not None:
                self._sessions[node_id] = session + 1
        lr = self.config.learning_rate * (self.config.lr_decay**session)
        set_state(self.model, state)
        self.model.train()
        # Train in the state's dtype: a float32 arena row must not be
        # promoted to float64 through float64 inputs (dtype audit —
        # loss and optimizer internals preserve it downstream).
        dtype = self.model.parameters()[0].data.dtype
        if x.dtype != dtype:
            x = x.astype(dtype)
        optimizer = SGD(
            self.model.parameters(),
            lr=lr,
            momentum=self.config.momentum,
            weight_decay=self.config.weight_decay,
        )
        n = x.shape[0]
        node_key = node_id if node_id is not None else 0
        step_idx = 0
        for _ in range(self.config.local_epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.config.batch_size):
                batch = order[start : start + self.config.batch_size]
                # Stream-mode dropout: fresh counter-based generators
                # per step, a pure function of (node, session, step) —
                # the batched path derives the identical masks.
                for li, layer in enumerate(self._stream_layers):
                    layer.set_mask_rng(
                        mask_stream_rng(
                            layer.stream_seed, node_key, session, step_idx, li
                        )
                    )
                if self.config.dp is None:
                    self._sgd_step(optimizer, x[batch], y[batch])
                else:
                    self._dp_sgd_step(optimizer, x[batch], y[batch], rng)
                self.steps_taken += 1
                step_idx += 1
        return get_state(self.model)

    def _sgd_step(self, optimizer: SGD, xb: np.ndarray, yb: np.ndarray) -> None:
        optimizer.zero_grad()
        logits = self.model.forward(xb)
        self.loss.forward(logits, yb)
        self.model.backward(self.loss.backward())
        optimizer.step()

    def _dp_sgd_step(
        self,
        optimizer: SGD,
        xb: np.ndarray,
        yb: np.ndarray,
        rng: np.random.Generator,
    ) -> None:
        """DP-SGD: per-sample clipped gradients, summed, noised, averaged.

        Per-sample gradients are obtained by running each sample as its
        own microbatch — exact, if slower than functorch-style
        vectorization.
        """
        assert self.config.dp is not None
        params = self.model.parameters()
        summed: list[np.ndarray] | None = None
        for i in range(xb.shape[0]):
            optimizer.zero_grad()
            logits = self.model.forward(xb[i : i + 1])
            self.loss.forward(logits, yb[i : i + 1])
            self.model.backward(self.loss.backward())
            grads = [p.grad.copy() for p in params]
            clipped, _ = clip_per_sample(grads, self.config.dp.clip_norm)
            if summed is None:
                summed = clipped
            else:
                summed = [acc + g for acc, g in zip(summed, clipped)]
        if summed is None:
            return
        averaged = noisy_gradient(summed, xb.shape[0], self.config.dp, rng)
        optimizer.zero_grad()
        for param, grad in zip(params, averaged):
            param.accumulate(grad)
        optimizer.step()


class BatchedTrainer:
    """Lockstep local SGD for a block of models (one arena row each).

    The blocked counterpart of :class:`LocalTrainer`: ``train_block``
    runs ``local_epochs`` of per-row mini-batch SGD over a ``(B, dim)``
    parameter block, where every row draws its mini-batches from its
    *own* generator in the legacy order (one permutation per epoch),
    steps with its own ``lr_decay ** session``-cooled learning rate, and
    starts each call with fresh momentum state — exactly the semantics
    of running :class:`LocalTrainer` row by row. All math runs in the
    block dtype (a float32 arena trains in float32); in float64 the
    final rows are bit-identical to the workspace path.

    Constraints the caller (the batched executor) enforces by grouping:
    every row of a block must hold the same number of local samples
    (lockstep mini-batch geometry); models without a batched backward
    (e.g. legacy-mode dropout) stay on the per-row path. DP-SGD rides
    the fast path via :meth:`_dp_train_block`, and stream-mode dropout
    via per-row counter-based mask streams.
    """

    def __init__(
        self,
        model: Module,
        config: TrainerConfig,
        layout: StateLayout | None = None,
    ):
        self.model = model
        self.config = config
        self.layout = (
            layout if layout is not None else StateLayout.from_model(model)
        )
        self._batched = BatchedModel(model, self.layout)
        self._param_runs = parameter_column_runs(self.layout)
        # Per-parameter column segments in named_parameters() order —
        # the iteration order of the serial DP step, which the blocked
        # norm fold and noise draws must reproduce exactly.
        self._param_segments = [
            (
                self.layout.slot(name).offset,
                self.layout.slot(name).offset + self.layout.slot(name).size,
            )
            for name, _ in model.named_parameters()
        ]
        self._stream_layers = stream_dropout_layers(model)
        self._batchnorms = [
            (prefix, m)
            for prefix, m in named_leaf_modules(model)
            if isinstance(m, BatchNorm2d)
        ]
        # Persistent (tile, grads) scratch per DP block shape — the
        # tiled forward reallocating ~2 block-sized buffers per step
        # costs more than the clip itself at MLP sizes.
        self._dp_buffers: dict = {}
        self.steps_taken = 0

    def set_config(self, config: TrainerConfig) -> None:
        """Swap hyperparameters explicitly (validated)."""
        if not isinstance(config, TrainerConfig):
            raise TypeError(
                f"expected TrainerConfig, got {type(config).__name__}"
            )
        self.config = config

    def _install_mask_streams(
        self,
        node_ids: Sequence[int],
        sessions: Sequence[int],
        step: int,
        tile: int,
    ) -> None:
        if not self._stream_layers:
            return
        streams = [
            [
                mask_stream_rng(
                    layer.stream_seed, node_ids[j], sessions[j], step, li
                )
                for j in range(len(node_ids))
            ]
            for li, layer in enumerate(self._stream_layers)
        ]
        self._batched.set_mask_streams(streams, tile=tile)

    def train_block(
        self,
        params: np.ndarray,
        xs: Sequence[np.ndarray],
        ys: Sequence[np.ndarray],
        rngs: Sequence[np.random.Generator],
        sessions: Sequence[int],
        node_ids: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Train every row of ``params`` in place; returns the block.

        ``xs[b]``/``ys[b]`` are row b's local split, ``rngs[b]`` its
        generator (mutated — batch orders draw from it exactly as the
        serial path would), ``sessions[b]`` its lr_decay session index.
        ``node_ids[b]`` keys row b's dropout mask streams; required
        when the model has stream-mode dropout layers.
        """
        b = params.shape[0]
        if not (len(xs) == len(ys) == len(rngs) == len(sessions) == b):
            raise ValueError("need one split/rng/session per block row")
        if self._stream_layers and node_ids is None:
            raise ValueError(
                "model has stream-mode dropout; pass node_ids so each "
                "row draws its own mask streams"
            )
        if node_ids is not None and len(node_ids) != b:
            raise ValueError("need one node_id per block row")
        if b == 0 or self.config.local_epochs == 0:
            return params
        n = xs[0].shape[0]
        if any(x.shape[0] != n for x in xs):
            raise ValueError(
                "all rows of a block must hold the same number of samples"
            )
        if n == 0:
            return params
        if self.config.dp is not None:
            return self._dp_train_block(
                params, xs, ys, rngs, sessions, node_ids
            )
        config = self.config
        dtype = params.dtype
        x_all = np.stack(xs)
        if x_all.dtype != dtype:
            x_all = x_all.astype(dtype)
        y_all = np.stack(ys)
        lrs = np.array(
            [
                config.learning_rate * (config.lr_decay**session)
                for session in sessions
            ]
        )
        optimizer = BatchedSGD(
            self._param_runs,
            lrs,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        # backward() writes every parameter slot, so one uninitialized
        # buffer serves all steps without zeroing.
        grads = np.empty_like(params)
        rows = np.arange(b)[:, None]
        step_idx = 0
        for _ in range(config.local_epochs):
            orders = [rng.permutation(n) for rng in rngs]
            for start in range(0, n, config.batch_size):
                batch = np.stack(
                    [order[start : start + config.batch_size] for order in orders]
                )
                self._install_mask_streams(node_ids, sessions, step_idx, 1)
                logits = self._batched.forward(params, x_all[rows, batch])
                _, grad = batched_cross_entropy_grad(
                    logits,
                    y_all[rows, batch],
                    config.label_smoothing,
                    with_losses=False,
                )
                self._batched.backward(grad, grads)
                optimizer.step(params, grads)
                self.steps_taken += 1
                step_idx += 1
        return params

    def _dp_train_block(
        self,
        params: np.ndarray,
        xs: Sequence[np.ndarray],
        ys: Sequence[np.ndarray],
        rngs: Sequence[np.random.Generator],
        sessions: Sequence[int],
        node_ids: Sequence[int] | None,
    ) -> np.ndarray:
        """Vectorized DP-SGD over a block: per-sample gradients at once.

        Every sample of every row becomes its own tile row — a
        ``(B * k, dim)`` forward/backward over parameter copies yields
        all per-sample gradients in one blocked pass (each tile row is
        a size-1 microbatch, so per-row parity makes it bit-identical
        to the serial microbatch loop). Clipping, the sum fold, noising
        and averaging then run as array ops (:func:`clip_block` /
        :func:`noisy_gradient_block`), and one persistent
        :class:`BatchedSGD` steps the real rows — reproducing
        ``LocalTrainer._dp_sgd_step`` exactly in float64.
        """
        dp = self.config.dp
        assert dp is not None
        config = self.config
        b = params.shape[0]
        n = xs[0].shape[0]
        dtype = params.dtype
        x_all = np.stack(xs)
        if x_all.dtype != dtype:
            x_all = x_all.astype(dtype)
        y_all = np.stack(ys)
        lrs = np.array(
            [
                config.learning_rate * (config.lr_decay**session)
                for session in sessions
            ]
        )
        optimizer = BatchedSGD(
            self._param_runs,
            lrs,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        rows = np.arange(b)[:, None]
        batched = self._batched
        batched.collect_bn_stats = True
        step_idx = 0
        try:
            for _ in range(config.local_epochs):
                orders = [rng.permutation(n) for rng in rngs]
                for start in range(0, n, config.batch_size):
                    batch = np.stack(
                        [
                            order[start : start + config.batch_size]
                            for order in orders
                        ]
                    )
                    k = batch.shape[1]
                    xb = x_all[rows, batch]  # (B, k, ...)
                    yb = y_all[rows, batch]  # (B, k)
                    # One tile row per sample: row b*k+i is node b's
                    # sample i run as a size-1 microbatch.
                    tiled, grads = self._dp_scratch(b * k, params)
                    tiled.reshape(b, k, -1)[...] = params[:, None, :]
                    x_tiled = xb.reshape((b * k, 1) + xb.shape[2:])
                    y_tiled = yb.reshape(b * k, 1)
                    self._install_mask_streams(
                        node_ids, sessions, step_idx, k
                    )
                    logits = batched.forward(tiled, x_tiled)
                    _, grad = batched_cross_entropy_grad(
                        logits,
                        y_tiled,
                        config.label_smoothing,
                        with_losses=False,
                    )
                    batched.backward(grad, grads)
                    self._fold_bn_stats(params, b, k)
                    clip_block(grads, self._param_segments, dp.clip_norm)
                    # Sequential left fold over the sample axis, like
                    # the serial `summed = [acc + g]` accumulation.
                    per_sample = grads.reshape(b, k, -1)
                    summed = per_sample[:, 0].copy()
                    for i in range(1, k):
                        summed += per_sample[:, i]
                    averaged = noisy_gradient_block(
                        summed, k, dp, list(rngs), self._param_segments
                    )
                    optimizer.step(params, averaged.astype(dtype, copy=False))
                    self.steps_taken += 1
                    step_idx += 1
        finally:
            batched.collect_bn_stats = False
        return params

    def _dp_scratch(
        self, rows: int, params: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Reusable (tile, grads) pair for a ``rows``-tile DP step.

        The grads buffer is zeroed once and stays valid across steps:
        ``backward`` write-once-fills every *parameter* slot each pass
        and never touches buffer columns, and the in-place clip scales
        parameter columns only — so the buffer columns' zeros (which
        the sum fold reads) are permanent.
        """
        key = (rows, params.dtype)
        pair = self._dp_buffers.get(key)
        if pair is None:
            pair = (
                np.empty((rows, params.shape[1]), dtype=params.dtype),
                np.zeros((rows, params.shape[1]), dtype=params.dtype),
            )
            self._dp_buffers[key] = pair
        return pair

    def _fold_bn_stats(self, params: np.ndarray, b: int, k: int) -> None:
        """Fold per-tile BatchNorm statistics into the real rows.

        The tiled forward computed each microbatch's (mean, var); the
        serial path folds them into the running buffers one microbatch
        at a time, so replay that exact sequence per row.
        """
        if not self._batchnorms:
            return
        block = _Block(self.layout, params)
        for prefix, module in self._batchnorms:
            mean, var = self._batched.bn_stats[prefix]
            mv = mean.reshape(b, k, -1)
            vv = var.reshape(b, k, -1)
            m = module.momentum
            rmean = block.get("buffer:" + prefix + "running_mean")
            rvar = block.get("buffer:" + prefix + "running_var")
            for i in range(k):
                rmean[...] = (1 - m) * rmean + m * mv[:, i]
                rvar[...] = (1 - m) * rvar + m * vv[:, i]
