"""Flat-buffer execution engine for the gossip simulator.

The dict-``State`` hot path walks a Python dict per node, per message
and per average. This engine stores every node's model as one row of a
contiguous ``(n_nodes, dim)`` :class:`StateArena` (layout computed once
by :class:`~repro.nn.flat.StateLayout`) so gossip aggregation becomes a
single vectorized numpy op over rows, and hands the per-tick local
updates of independently waking nodes to an :class:`Executor` — serial,
or a process pool where each worker owns its own workspace
:class:`~repro.nn.layers.Module`.

Tick semantics (deliberately executor-order independent so serial and
parallel runs are bit-identical): within one tick, first due delayed
messages are delivered, then every surviving wake merges / trains /
sends, and sends become visible to receivers only after all wakes of
the tick have been processed. The legacy dict engine instead interleaves
instant delivery with the wake loop; the two engines are therefore
statistically equivalent but not bitwise comparable (see DESIGN.md).

``GossipNode.state`` remains a live dict *view* over the node's arena
row, so attacks, metrics and ``states()`` snapshots keep working
unchanged on top of the flat representation.
"""

from __future__ import annotations

import heapq
import os
from collections import Counter
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.data.partition import NodeSplit
from repro.gossip.messages import ModelMessage
from repro.gossip.node import GossipNode
from repro.gossip.protocols import (
    BaseGossipProtocol,
    GossipProtocol,
    SAMOProtocol,
)
from repro.gossip.simulator import GossipSimulator, SimulatorConfig
from repro.gossip.trainer import BatchedTrainer, LocalTrainer, TrainerConfig
from repro.nn.batched import supports_batched_backward
from repro.nn.flat import SharedArena, StateLayout
from repro.nn.layers import Module
from repro.nn.serialize import State, normalize_weights
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = [
    "StateArena",
    "UpdateTask",
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "BatchedExecutor",
    "FlatGossipSimulator",
    "fallback_reason",
    "make_simulator",
]


class StateArena:
    """All node models as rows of one contiguous ``(n_nodes, dim)`` array.

    Layout contract: row ``i`` is node ``i``'s model flattened by the
    arena's :class:`~repro.nn.flat.StateLayout` (sorted-name slot
    order, interchangeable with ``state_to_vector``). Dtype contract:
    ``data`` is stored and aggregated in ``dtype`` (float32 or
    float64); dict states packed in are cast to it, and views unpacked
    out carry it. Aggregation primitives (:meth:`average_rows`,
    :meth:`merge_row`, :meth:`mix`) mutate or read rows in place —
    dict-``State`` views over rows stay live across all of them.

    ``shared=True`` places ``data`` in a :class:`~repro.nn.flat.SharedArena`
    (a named shared-memory segment) so shard worker processes can attach
    to the same rows by name; :meth:`release` detaches, keeping a
    private copy readable. Callers holding row views across a release
    must rebuild them (the flat simulator rebinds its node views).
    """

    def __init__(
        self,
        layout: StateLayout,
        n_nodes: int,
        dtype: np.dtype | str = np.float64,
        shared: bool = False,
    ):
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        self.layout = layout
        self.dtype = np.dtype(dtype)
        self._shared: SharedArena | None = None
        if shared:
            self._shared = SharedArena(n_nodes, layout.dim, dtype=self.dtype)
            self.data = self._shared.data
        else:
            self.data = np.zeros((n_nodes, layout.dim), dtype=self.dtype)

    @property
    def shared_name(self) -> str | None:
        """Segment name for worker attachment; None on private arenas."""
        return self._shared.name if self._shared is not None else None

    def release(self) -> None:
        """Detach from the shared segment, keeping a private copy.

        Idempotent; a no-op for private arenas. ``data`` stays readable
        (and writable) afterwards, but existing row views still address
        the dead segment — rebuild them.
        """
        if self._shared is None:
            return
        shared, self._shared = self._shared, None
        self.data = np.array(shared.data)
        shared.close()

    @property
    def n_nodes(self) -> int:
        return self.data.shape[0]

    @property
    def dim(self) -> int:
        return self.data.shape[1]

    def row(self, node_id: int) -> np.ndarray:
        """The node's flat model vector (a live view, not a copy)."""
        return self.data[node_id]

    def state_view(self, node_id: int) -> State:
        """Dict-``State`` view over the node's row (compat layer)."""
        return self.layout.unpack(self.data[node_id])

    def load_state(self, node_id: int, state: State) -> None:
        """Pack a dict state into the node's row (casting to the arena dtype)."""
        self.layout.pack(state, out=self.data[node_id])

    def write_row(self, node_id: int, vector: np.ndarray) -> None:
        """Overwrite the node's row in place (views stay valid)."""
        self.data[node_id][...] = vector

    def average_rows(
        self, node_ids: Sequence[int], weights: Sequence[float] | None = None
    ) -> np.ndarray:
        """Weighted average of the selected rows as one vectorized op."""
        block = self.data[np.asarray(node_ids, dtype=np.intp)]
        if weights is None:
            return block.mean(axis=0)
        w = np.asarray(normalize_weights(list(weights)), dtype=self.dtype)
        return w @ block

    def merge_row(self, node_id: int, payload: np.ndarray, weight: float) -> None:
        """Pairwise merge ``row <- (1-weight)*row + weight*payload`` in place."""
        row = self.data[node_id]
        row *= 1.0 - weight
        row += weight * np.asarray(payload, dtype=self.dtype)

    def mix(self, weights: np.ndarray) -> np.ndarray:
        """All nodes' aggregations as ONE op: ``weights @ data``.

        ``weights`` is an ``(n_nodes, n_nodes)`` mixing matrix (row i =
        the weights node i gives every model, zeros for non-neighbors);
        one BLAS call replaces n_nodes dict-``State`` averages.
        """
        w = np.asarray(weights, dtype=self.dtype)
        if w.shape != (self.n_nodes, self.n_nodes):
            raise ValueError(
                f"weights must be ({self.n_nodes}, {self.n_nodes}), got {w.shape}"
            )
        return w @ self.data

    def apply_mix(self, weights: np.ndarray) -> None:
        """In-place :meth:`mix`; existing state views remain live."""
        self.data[...] = self.mix(weights)


def mean_vectors(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Uniform average of flat vectors as one vectorized op."""
    if not vectors:
        raise ValueError("cannot average zero vectors")
    return np.stack(vectors, axis=0).mean(axis=0)


@dataclass(frozen=True)
class UpdateTask:
    """One node's local update, shippable to a worker process.

    ``session`` is the node's lr_decay session index and MUST be
    tracked by the engine (``FlatGossipSimulator._sessions``), never
    inferred from ``node_id`` inside a trainer: per-trainer bookkeeping
    diverges the moment two executors (process-pool workers, the
    batched trainer, the serial workspace) see different subsets of a
    node's updates.
    """

    node_id: int
    vector: np.ndarray
    rng: np.random.Generator
    session: int

    def __post_init__(self) -> None:
        if self.session is None:
            raise ValueError(
                "UpdateTask.session must be an explicit session index; "
                "per-trainer node_id inference is not reproducible "
                "across executors"
            )


# Node-id -> (train_x, train_y); executors index it by task.node_id.
SplitArrays = Mapping[int, tuple[np.ndarray, np.ndarray]]


def as_split_arrays(
    splits: Sequence[NodeSplit] | SplitArrays,
) -> SplitArrays | list[tuple[np.ndarray, np.ndarray]]:
    """Training arrays addressable by node id.

    Accepts either the engine's full ``NodeSplit`` list (node id ==
    position) or a prebuilt mapping holding only some nodes' arrays —
    shard workers ship just their own slice of the data.
    """
    if isinstance(splits, Mapping):
        return splits
    return [(s.train.x, s.train.y) for s in splits]


def _train_task(
    trainer: LocalTrainer,
    layout: StateLayout,
    splits: SplitArrays,
    task: UpdateTask,
) -> tuple[np.ndarray, np.random.Generator]:
    """Run one local update on a workspace trainer; shared by executors."""
    x, y = splits[task.node_id]
    state = layout.unpack(task.vector)
    # node_id keys the dropout mask streams; session bookkeeping stays
    # with the engine (an explicit session bypasses trainer inference).
    new_state = trainer.train(
        state, x, y, task.rng, node_id=task.node_id, session=task.session
    )
    out = layout.pack(new_state, dtype=task.vector.dtype)
    return out, task.rng


def fallback_reason(
    task: UpdateTask,
    *,
    supported: bool,
    block_size: int,
    n_samples: int,
) -> str | None:
    """Why ``task`` cannot ride the blocked fast path (None = it can).

    The single source of truth for the per-row fallback predicate,
    shared by :class:`BatchedExecutor` and the shard workers. Reasons:

    * ``"no_batched_backward"`` — the model has a layer without a
      blocked train-mode backward (e.g. legacy-mode dropout).
    * ``"forced_per_row"`` — ``train_batch == -1`` explicitly disables
      blocking.
    * ``"empty_split"`` — the node owns no training samples (the
      trainer no-ops).

    DP-SGD and stream-mode dropout are deliberately NOT reasons: both
    ride the blocked path since the vectorized per-sample-gradient
    refactor.
    """
    if not supported:
        return "no_batched_backward"
    if block_size == -1:
        return "forced_per_row"
    if n_samples == 0:
        return "empty_split"
    return None


class Executor:
    """Runs a batch of independent local updates, preserving order.

    ``close`` must be idempotent on every backend. Executors that read
    task state straight from a shared arena set ``copies_task_vectors``
    to False: the engine hands them live row views instead of per-task
    row copies, and in exchange the executor must write result vectors
    into the arena rows itself (the engine skips the copy-back).

    ``fallback_counts`` tallies per-row slow-path hits by
    :func:`fallback_reason`; backends with no blocked path leave it
    empty.
    """

    name = "abstract"
    copies_task_vectors = True

    def __init__(self) -> None:
        self.fallback_counts: Counter[str] = Counter()

    def train_batch(
        self, tasks: list[UpdateTask]
    ) -> list[tuple[np.ndarray, np.random.Generator]]:
        raise NotImplementedError

    def set_config(self, config: TrainerConfig) -> None:
        """Swap the trainer config on this backend (validated upstream).

        The default reaches the in-process trainer; backends owning
        remote workers override to propagate the swap.
        """
        trainer = getattr(self, "trainer", None)
        if trainer is not None:
            trainer.set_config(config)

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class SerialExecutor(Executor):
    """In-process execution on the protocol's shared workspace model."""

    name = "serial"

    def __init__(
        self,
        trainer: LocalTrainer,
        layout: StateLayout,
        splits: Sequence[NodeSplit] | SplitArrays,
    ):
        super().__init__()
        self.trainer = trainer
        self.layout = layout
        self.splits = as_split_arrays(splits)

    def train_batch(
        self, tasks: list[UpdateTask]
    ) -> list[tuple[np.ndarray, np.random.Generator]]:
        return [
            _train_task(self.trainer, self.layout, self.splits, task)
            for task in tasks
        ]


class BatchedExecutor(Executor):
    """Blocked multi-model training over a tick's wake tasks.

    Stacks the independent local updates of same-tick waking nodes into
    ``(B, dim)`` blocks and trains them in lockstep with
    :class:`~repro.gossip.trainer.BatchedTrainer` — the training
    counterpart of the PR-2 batched evaluator. Tasks are grouped by
    local-sample count (lockstep mini-batch geometry); ``train_batch``
    caps the rows per block (0 = one block per group, N > 0 = chunks of
    N, -1 = force the per-row path). DP-SGD rides the blocked path
    (vectorized per-sample gradients) and so does stream-mode dropout
    (counter-based mask streams); the remaining per-row fallbacks —
    see :func:`fallback_reason` — run on the shared workspace trainer
    and are tallied in ``fallback_counts``. Results match
    :class:`SerialExecutor` bit for bit on float64 arenas (and within
    rounding on float32, where the blocked path stays in float32).
    """

    name = "batched"

    def __init__(
        self,
        trainer: LocalTrainer,
        layout: StateLayout,
        splits: Sequence[NodeSplit] | SplitArrays,
        train_batch: int = 0,
    ):
        super().__init__()
        if train_batch < -1:
            raise ValueError("train_batch must be >= -1")
        self.trainer = trainer
        self.layout = layout
        self.splits = as_split_arrays(splits)
        self.block_size = train_batch
        # Models without a batched backward (legacy-mode dropout) run
        # entirely on the per-row fallback; constructing the blocked
        # trainer would raise for them.
        self._supported = supports_batched_backward(trainer.model)
        self.batched = (
            BatchedTrainer(trainer.model, trainer.config, layout)
            if self._supported
            else None
        )

    def set_config(self, config: TrainerConfig) -> None:
        self.trainer.set_config(config)
        if self.batched is not None:
            self.batched.set_config(config)

    def train_batch(
        self, tasks: list[UpdateTask]
    ) -> list[tuple[np.ndarray, np.random.Generator]]:
        # Config may have been swapped after construction (legacy
        # direct-assignment path); re-read it.
        config = self.trainer.config
        if self.batched is not None:
            self.batched.config = config
        results: list = [None] * len(tasks)
        groups: dict[int, list[int]] = {}
        fallback: list[int] = []
        for i, task in enumerate(tasks):
            n = self.splits[task.node_id][0].shape[0]
            reason = fallback_reason(
                task,
                supported=self._supported,
                block_size=self.block_size,
                n_samples=n,
            )
            if reason is not None:
                self.fallback_counts[reason] += 1
                fallback.append(i)
            else:
                groups.setdefault(n, []).append(i)
        for n, indices in sorted(groups.items()):
            step = len(indices) if self.block_size == 0 else self.block_size
            for start in range(0, len(indices), step):
                chunk = indices[start : start + step]
                block = np.stack([tasks[i].vector for i in chunk])
                self.batched.train_block(
                    block,
                    [self.splits[tasks[i].node_id][0] for i in chunk],
                    [self.splits[tasks[i].node_id][1] for i in chunk],
                    [tasks[i].rng for i in chunk],
                    [tasks[i].session for i in chunk],
                    node_ids=[tasks[i].node_id for i in chunk],
                )
                for j, i in enumerate(chunk):
                    results[i] = (block[j], tasks[i].rng)
        for i in fallback:
            results[i] = _train_task(
                self.trainer, self.layout, self.splits, tasks[i]
            )
        return results


# Worker-process globals, populated once by the pool initializer so
# model weights and training data are not re-pickled per task.
_WORKSPACE: dict = {}


def _worker_init(
    model_builder: Callable[[], Module],
    trainer_config: TrainerConfig,
    layout: StateLayout,
    splits: list[tuple[np.ndarray, np.ndarray]],
) -> None:
    _WORKSPACE["trainer"] = LocalTrainer(model_builder(), trainer_config)
    _WORKSPACE["layout"] = layout
    _WORKSPACE["splits"] = splits


def _worker_train(
    task: UpdateTask,
) -> tuple[np.ndarray, np.random.Generator]:
    return _train_task(
        _WORKSPACE["trainer"], _WORKSPACE["layout"], _WORKSPACE["splits"], task
    )


class ProcessExecutor(Executor):
    """Process-pool execution; each worker owns a workspace Module.

    Generators travel with each task and come back mutated, so a node's
    random stream advances exactly as it would serially — results are
    bit-identical to :class:`SerialExecutor` for a fixed seed.
    """

    name = "process"

    def __init__(
        self,
        model_builder: Callable[[], Module],
        trainer_config: TrainerConfig,
        layout: StateLayout,
        splits: Sequence[NodeSplit],
        n_workers: int = 0,
    ):
        super().__init__()
        if model_builder is None:
            raise ValueError(
                "the process executor needs a picklable model_builder "
                "(e.g. functools.partial(build_model, ...)) to construct "
                "per-worker workspace models"
            )
        self._model_builder = model_builder
        self._trainer_config = trainer_config
        self._layout = layout
        self._split_arrays = [(s.train.x, s.train.y) for s in splits]
        self._n_workers = n_workers
        self._pool = self._make_pool()

    def _make_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        workers = self._n_workers or min(os.cpu_count() or 1, 8)
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(
                self._model_builder,
                self._trainer_config,
                self._layout,
                self._split_arrays,
            ),
        )

    def set_config(self, config: TrainerConfig) -> None:
        """Propagate a config swap by recycling the worker pool.

        Workers receive the config once at initialization, so an
        in-place swap must rebuild them; rare enough (DP installation)
        that the restart cost is irrelevant.
        """
        if config == self._trainer_config:
            return
        if not isinstance(config, TrainerConfig):
            raise TypeError(
                f"expected TrainerConfig, got {type(config).__name__}"
            )
        self._trainer_config = config
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = self._make_pool()

    def train_batch(
        self, tasks: list[UpdateTask]
    ) -> list[tuple[np.ndarray, np.random.Generator]]:
        if self._pool is None:
            raise RuntimeError("executor is closed")
        return list(self._pool.map(_worker_train, tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class FlatGossipSimulator(GossipSimulator):
    """Gossip simulator running protocols on the flat-state arena.

    Implements the SAMO and Base Gossip semantics directly over arena
    rows (the protocol object supplies hyperparameters, the trainer and
    the update cap). Within a tick, execution is phased — deliver,
    wake/merge, batch-train, send — so the executor backend cannot
    change results.

    Dtype contract: all gossip aggregation and all evaluation reads run
    in ``config.arena_dtype``; only the local-update step unpacks a row
    into the trainer's workspace model. :meth:`state_matrix` exposes
    the arena zero-copy to the row-batch evaluation path
    (:class:`~repro.metrics.evaluation.BatchedEvaluator`), so the
    per-round attack observation never materializes per-node dict
    views.
    """

    def __init__(
        self,
        config: SimulatorConfig,
        protocol: GossipProtocol,
        splits: list[NodeSplit],
        initial_state: State,
        keep_payloads: bool = False,
        model_builder: Callable[[], Module] | None = None,
        telemetry: Telemetry | None = None,
    ):
        super().__init__(config, protocol, splits, initial_state, keep_payloads)
        if isinstance(protocol, SAMOProtocol):
            self._mode = "samo"
            self._merge_weight = 0.5
        elif isinstance(protocol, BaseGossipProtocol):
            self._mode = "base"
            self._merge_weight = protocol.merge_weight
        else:
            raise ValueError(
                f"flat engine does not support protocol {protocol.name!r}"
            )
        self.layout = StateLayout.from_state(initial_state)
        # The sharded executor's workers attach to the arena by name, so
        # it must be born in shared memory — migrating it later would
        # orphan every node-state view handed out below.
        self.arena = StateArena(
            self.layout,
            config.n_nodes,
            dtype=config.arena_dtype,
            shared=config.executor == "sharded",
        )
        # Pack the shared initial model once and broadcast it into all
        # rows; node states become live views over their row.
        self.arena.data[:] = self.layout.pack(
            initial_state, dtype=self.arena.dtype
        )
        for node in self.nodes:
            node.state = self.arena.state_view(node.node_id)
            node.inbox = []  # holds flat vectors under this engine
        self.model_builder = model_builder
        self._sessions = [0] * config.n_nodes
        # Messages sent this tick, visible to receivers once the tick's
        # wakes are all processed: (sender, receiver, vector).
        self._pending: list[tuple[int, int, np.ndarray]] = []
        # Built lazily so late config changes (DP installation swaps
        # the trainer config and update cap) reach pool workers.
        self._executor: Executor | None = None
        # Telemetry: phase timings accumulate in flat floats per tick
        # and flush to histograms once per round (run_round override),
        # so the enabled hot path adds a few perf_counter calls and the
        # disabled one a single `is None` branch per phase. Timing uses
        # the wall clock only — no RNG is ever touched, which keeps
        # fixed-seed results bit-identical with telemetry on.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel = self.telemetry if self.telemetry.enabled else None
        if self._tel is not None:
            reg = self.telemetry.registry
            phase_hist = reg.histogram(
                "repro_engine_phase_ms",
                "Per-round wall-clock of each round-loop phase",
                labels=("phase",),
            )
            self._phase_acc = {
                "deliver": 0.0, "wake": 0.0, "train": 0.0, "aggregate": 0.0
            }
            self._phase_series = {
                phase: phase_hist.child(phase=phase) for phase in self._phase_acc
            }
            self._fallback_total = reg.counter(
                "repro_engine_fallback_total",
                "Rows that left the blocked fast path, by reason",
                labels=("reason",),
            )
            self._fallback_seen: Counter[str] = Counter()
            # Bound lazily on first train_batch: the executor (and its
            # name label) does not exist yet.
            self._batch_ms = None
            self._tasks_total = None

    def _node_initial_state(self, initial_state: State) -> State:
        """No per-node dict copy: node states are rebound to arena views
        right after construction, so the base engine's n_nodes deep
        copies would be allocated only to be discarded."""
        return initial_state

    # -- executor -----------------------------------------------------

    def executor(self) -> Executor:
        if self._executor is None:
            trainer = self.protocol.trainer
            splits = [node.split for node in self.nodes]
            if self.config.executor == "process":
                self._executor = ProcessExecutor(
                    self.model_builder,
                    trainer.config,
                    self.layout,
                    splits,
                    self.config.n_workers,
                )
            elif self.config.executor == "batched":
                self._executor = BatchedExecutor(
                    trainer,
                    self.layout,
                    splits,
                    train_batch=self.config.train_batch,
                )
            elif self.config.executor == "sharded":
                # Imported here: shard.py builds on this module.
                from repro.gossip.shard import ShardedExecutor

                self._executor = ShardedExecutor(
                    self.model_builder,
                    trainer.config,
                    self.layout,
                    splits,
                    self.arena,
                    n_shards=self.config.n_shards,
                    train_batch=self.config.train_batch,
                    partition=self.config.shard_partition,
                    trainer=trainer,
                    telemetry=self.telemetry,
                )
            else:
                self._executor = SerialExecutor(trainer, self.layout, splits)
        return self._executor

    def set_trainer_config(self, config: TrainerConfig) -> None:
        """Swap the trainer config, propagating to a live executor.

        The supported mid-run config path (e.g. DP installation): the
        shared trainer revalidates, and an already-built executor
        forwards the swap to its blocked trainer / worker processes.
        """
        self.protocol.trainer.set_config(config)
        if self._executor is not None:
            self._executor.set_config(config)

    def fallback_counts(self) -> dict[str, int]:
        """Per-reason tallies of rows that left the blocked fast path."""
        if self._executor is None:
            return {}
        return dict(self._executor.fallback_counts)

    def close(self) -> None:
        """Release executor resources (worker processes and shared
        memory). Idempotent; arena data stays readable afterwards —
        a shared-backed arena is copied private and node-state views
        are rebound over the copy."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None
        if self.arena.shared_name is not None:
            self.arena.release()
            for node in self.nodes:
                node.state = self.arena.state_view(node.node_id)

    # -- state capture (checkpoint/resume) ----------------------------

    def _copy_payload(self, payload):
        """Messages are flat vectors under this engine."""
        return np.array(payload)

    def _capture_node_model(self, node):
        """Node models live in the arena snapshot; nothing per node."""
        return None

    def _restore_node_model(self, node, saved) -> None:
        """No-op: the arena restore repopulates the rows the node-state
        views are bound to."""

    def capture_state(self) -> dict:
        state = super().capture_state()
        state["arena"] = self.arena.data.copy()
        state["sessions"] = list(self._sessions)
        state["pending"] = [
            (sender, receiver, np.array(payload))
            for sender, receiver, payload in self._pending
        ]
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        # Written in place so existing node-state views (and, for the
        # sharded executor, the shared-memory segment the workers are
        # attached to) stay bound to the restored rows.
        self.arena.data[...] = state["arena"]
        self._sessions = list(state["sessions"])
        self._pending = [
            (sender, receiver, np.array(payload))
            for sender, receiver, payload in state["pending"]
        ]

    def state_matrix(self, layout=None) -> np.ndarray:
        """The live arena, zero-copy (read-only by contract).

        Rows are in ``arena_dtype`` and follow the arena layout; a
        ``layout`` argument that addresses slots differently (names,
        offsets or shapes) is rejected rather than silently re-packed.
        """
        if layout is not None and not layout.compatible_with(self.layout):
            raise ValueError(
                f"layout does not match the arena layout "
                f"({layout!r} vs {self.layout!r})"
            )
        # A non-writable view enforces the read-only contract at zero
        # copy cost — an in-place op on it raises instead of silently
        # corrupting every node's model.
        view = self.arena.data.view()
        view.flags.writeable = False
        return view

    # -- messaging ----------------------------------------------------

    def _send_vector(self, sender: int, receiver: int, vector: np.ndarray) -> None:
        delay = self._transmission_delay(sender, receiver)
        if delay is None:
            return
        payload = vector.copy()  # copy-on-enqueue: freeze the bytes sent
        # Building the dict view is per-slot work the log discards
        # unless it actually retains payloads.
        logged = self.layout.unpack(payload) if self.log.keep_payloads else {}
        self.log.record(
            ModelMessage(
                sender=sender,
                receiver=receiver,
                tick=self.clock.tick,
                payload=logged,
            )
        )
        if delay == 0:
            self._pending.append((sender, receiver, payload))
        else:
            heapq.heappush(
                self._in_flight,
                (self.clock.tick + delay, self._send_seq, sender, receiver, payload),
            )
            self._send_seq += 1

    def _deliver_due(self) -> None:
        while self._in_flight and self._in_flight[0][0] <= self.clock.tick:
            _, _, sender, receiver, payload = heapq.heappop(self._in_flight)
            self._pending.append((sender, receiver, payload))

    def _flush_end_of_run(self) -> None:
        self._deliver_due()
        self._process_pending()

    def _process_pending(self) -> None:
        """Hand delivered messages to the protocol semantics."""
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        if self._mode == "samo":
            # Algorithm 2 buffers on receive; merging happens on wake.
            for _, receiver, payload in pending:
                node = self.nodes[receiver]
                node.inbox.append(payload)
                node.models_received += 1
            return
        # Algorithm 1 merges pairwise and trains per reception. Batch
        # in waves of distinct receivers so a node receiving twice in
        # one flush still processes its messages sequentially.
        while pending:
            wave: list[tuple[int, int, np.ndarray]] = []
            rest: list[tuple[int, int, np.ndarray]] = []
            seen: set[int] = set()
            for item in pending:
                if item[1] in seen:
                    rest.append(item)
                else:
                    seen.add(item[1])
                    wave.append(item)
            tel = self._tel
            start = perf_counter() if tel is not None else 0.0
            for _, receiver, payload in wave:
                node = self.nodes[receiver]
                node.models_received += 1
                self.arena.merge_row(receiver, payload, self._merge_weight)
            if tel is not None:
                self._phase_acc["aggregate"] += (perf_counter() - start) * 1000.0
            self._train_nodes([receiver for _, receiver, _ in wave])
            pending = rest

    # -- training -----------------------------------------------------

    def _train_nodes(self, node_ids: list[int]) -> None:
        """Run the local updates of independent nodes as one batch."""
        if not node_ids:
            return
        executor = self.executor()
        # Shared-arena executors read rows straight from the segment;
        # copying each row into its task would be pure waste there.
        copy_rows = executor.copies_task_vectors
        cap = self.protocol.max_updates_per_node
        tasks: list[UpdateTask] = []
        for node_id in node_ids:
            node = self.nodes[node_id]
            if cap is not None and node.updates_performed >= cap:
                continue
            node.updates_performed += 1
            if node.train_x.shape[0] == 0:
                continue  # the trainer no-ops; the session must not advance
            session = self._sessions[node_id]
            self._sessions[node_id] += 1
            row = self.arena.row(node_id)
            tasks.append(
                UpdateTask(
                    node_id,
                    row.copy() if copy_rows else row,
                    node.rng,
                    session,
                )
            )
        if not tasks:
            return
        if self._tel is None:
            results = executor.train_batch(tasks)
        else:
            start = perf_counter()
            results = executor.train_batch(tasks)
            self._record_train_batch(
                executor, len(tasks), (perf_counter() - start) * 1000.0
            )
        for task, (vector, rng) in zip(tasks, results):
            # In-place executors (copies_task_vectors=False) already
            # wrote results into the arena rows; copying a row onto
            # itself would waste O(dim) bandwidth per trained node.
            if copy_rows:
                self.arena.write_row(task.node_id, vector)
            # Process workers return a mutated generator copy; rebind it
            # so the node's stream advances exactly as it would serially.
            self.nodes[task.node_id].rng = rng

    # -- telemetry ----------------------------------------------------

    def _record_train_batch(
        self, executor: Executor, n_tasks: int, elapsed_ms: float
    ) -> None:
        """Fold one train_batch call into the telemetry accumulators."""
        self._phase_acc["train"] += elapsed_ms
        if self._batch_ms is None:
            reg = self.telemetry.registry
            self._batch_ms = reg.histogram(
                "repro_executor_batch_ms",
                "Wall-clock of one executor train_batch call",
                labels=("executor",),
            ).child(executor=executor.name)
            self._tasks_total = reg.counter(
                "repro_executor_tasks_total",
                "Local-update tasks dispatched, by executor",
                labels=("executor",),
            ).child(executor=executor.name)
        self._batch_ms.observe(elapsed_ms)
        self._tasks_total.inc(n_tasks)
        # The executor's fallback tallies are cumulative; convert to
        # counter increments by diffing against what was already shipped.
        for reason, count in executor.fallback_counts.items():
            delta = count - self._fallback_seen[reason]
            if delta > 0:
                self._fallback_total.inc(delta, reason=reason)
                self._fallback_seen[reason] = count

    def run_round(self) -> None:
        super().run_round()
        if self._tel is not None:
            # Flush the per-tick accumulators once per round: histogram
            # samples are per-round phase totals (mmb-style batched
            # counter flushes), not per-tick noise.
            for phase, series in self._phase_series.items():
                series.observe(self._phase_acc[phase])
                self._phase_acc[phase] = 0.0

    # -- main loop ----------------------------------------------------

    def run_tick(self) -> None:
        """Phased tick: deliver, wake (merge / batch-train / send),
        publish this tick's sends, advance the clock."""
        tel = self._tel
        start = perf_counter() if tel is not None else 0.0
        self._deliver_due()
        self._process_pending()
        if tel is not None:
            self._phase_acc["deliver"] += (perf_counter() - start) * 1000.0
        waking = self.schedule.waking_nodes(self.clock.tick)
        if waking:
            start = perf_counter() if tel is not None else 0.0
            self.rng.shuffle(waking)
            alive: list[int] = []
            for node_id in waking:
                node_id = int(node_id)
                if (
                    self.config.failure_prob
                    and self.rng.random() < self.config.failure_prob
                ):
                    self.wakes_skipped += 1
                    continue
                self.sampler.on_wake(node_id)
                alive.append(node_id)
            if self._mode == "samo":
                self._samo_wakes(alive)
            else:
                self._base_wakes(alive)
            self._process_pending()
            if tel is not None:
                self._phase_acc["wake"] += (perf_counter() - start) * 1000.0
        self.clock.advance()

    def _samo_wakes(self, alive: list[int]) -> None:
        """Algorithm 2: merge-once, train (batched), push to all."""
        tel = self._tel
        start = perf_counter() if tel is not None else 0.0
        train_ids: list[int] = []
        for node_id in alive:
            node = self.nodes[node_id]
            if node.inbox:
                inbox, node.inbox = node.inbox, []
                merged = mean_vectors([self.arena.row(node_id)] + inbox)
                self.arena.write_row(node_id, merged)
                train_ids.append(node_id)
        if tel is not None:
            self._phase_acc["aggregate"] += (perf_counter() - start) * 1000.0
        self._train_nodes(train_ids)
        for node_id in alive:
            row = self.arena.row(node_id)
            for neighbor in sorted(self.sampler.view(node_id)):
                self._send_vector(node_id, neighbor, row)

    def _base_wakes(self, alive: list[int]) -> None:
        """Algorithm 1: push to one random neighbor."""
        for node_id in alive:
            node = self.nodes[node_id]
            view = self.sampler.view(node_id)
            if not view:
                continue
            neighbor = int(node.rng.choice(sorted(view)))
            self._send_vector(node_id, neighbor, self.arena.row(node_id))


def make_simulator(
    config: SimulatorConfig,
    protocol: GossipProtocol,
    splits: list[NodeSplit],
    initial_state: State,
    keep_payloads: bool = False,
    model_builder: Callable[[], Module] | None = None,
    telemetry: Telemetry | None = None,
) -> GossipSimulator:
    """Build the simulator selected by ``config.engine``."""
    if config.engine == "flat":
        return FlatGossipSimulator(
            config,
            protocol,
            splits,
            initial_state,
            keep_payloads=keep_payloads,
            model_builder=model_builder,
            telemetry=telemetry,
        )
    return GossipSimulator(config, protocol, splits, initial_state, keep_payloads)
