"""repro — reproduction of "Exposing the Vulnerability of Decentralized
Learning to Membership Inference Attacks Through the Lens of Graph
Mixing" (Touat et al., MIDDLEWARE 2025).

Public entry points:

* :func:`repro.core.run_study` / :class:`repro.core.StudyConfig` —
  run a full gossip-learning + MIA study.
* :mod:`repro.graph.mixing` — the Section 4 spectral analysis.
* :mod:`repro.experiments` — per-figure/table regeneration.
"""

from repro.core import StudyConfig, VulnerabilityStudy, run_study

__version__ = "1.0.0"

__all__ = ["StudyConfig", "VulnerabilityStudy", "run_study", "__version__"]
