"""repro — reproduction of "Exposing the Vulnerability of Decentralized
Learning to Membership Inference Attacks Through the Lens of Graph
Mixing" (Touat et al., MIDDLEWARE 2025).

Public entry points:

* :func:`repro.core.run_study` / :class:`repro.core.StudyConfig` —
  run a full gossip-learning + MIA study in one call.
* :class:`repro.core.Study` — the session API: build once, stream
  rounds, checkpoint/resume, clean up via context manager.
* Grouped configs (:class:`repro.core.DataConfig` & friends) —
  composable slices of a ``StudyConfig``.
* :class:`repro.experiments.Campaign` — sweep builders + parallel
  execution over many studies.
* :mod:`repro.graph.mixing` — the Section 4 spectral analysis.
* :mod:`repro.experiments` — per-figure/table regeneration.
"""

from repro.core import (
    DataConfig,
    ExecutionConfig,
    ModelConfig,
    PrivacyConfig,
    Study,
    StudyConfig,
    TopologyConfig,
    VulnerabilityStudy,
    run_study,
)

__version__ = "1.1.0"

__all__ = [
    "DataConfig",
    "ModelConfig",
    "TopologyConfig",
    "ExecutionConfig",
    "PrivacyConfig",
    "Study",
    "StudyConfig",
    "VulnerabilityStudy",
    "run_study",
    "__version__",
]
