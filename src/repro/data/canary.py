"""Canary construction for worst-case privacy auditing (RQ3).

Following Aerni et al. (cited as [1] in the paper), canaries are
samples whose label is flipped to a wrong class, so a model can only
predict the flipped label by memorizing the sample. The paper
distributes canaries disjointly and evenly over all nodes and runs a
targeted, node-specific entropy attack on the known canary set.

To score the attack we need both member and non-member canaries:
half of the constructed canaries are *injected* into node training
sets, the other half are *held out* (label-flipped but never trained
on). Each held-out canary is assigned to a node as well and scored on
that node's model, mirroring the targeted attack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import Dataset
from repro.data.partition import NodeSplit

__all__ = ["CanarySet", "make_canaries", "inject_canaries"]


@dataclass
class CanarySet:
    """Bookkeeping for injected and held-out canaries.

    All indices refer to rows of the base training split whose labels
    were flipped in place. ``member_indices`` enter node training sets;
    ``holdout_indices`` never do. ``node_of`` maps every canary index
    (member or holdout) to the node whose model it is scored against.
    """

    member_indices: np.ndarray
    holdout_indices: np.ndarray
    original_labels: dict[int, int]
    flipped_labels: dict[int, int]
    node_of: dict[int, int]

    def __len__(self) -> int:
        return self.member_indices.size + self.holdout_indices.size

    @property
    def all_indices(self) -> np.ndarray:
        return np.concatenate([self.member_indices, self.holdout_indices])

    def members_for_node(self, node_id: int) -> np.ndarray:
        return np.array(
            [i for i in self.member_indices if self.node_of[int(i)] == node_id],
            dtype=np.int64,
        )

    def holdouts_for_node(self, node_id: int) -> np.ndarray:
        return np.array(
            [i for i in self.holdout_indices if self.node_of[int(i)] == node_id],
            dtype=np.int64,
        )


def make_canaries(
    base_train: Dataset,
    n_canaries: int,
    n_nodes: int,
    rng: np.random.Generator,
    holdout_fraction: float = 0.5,
) -> CanarySet:
    """Create ``n_canaries`` label-flipped canaries, split member/holdout.

    Labels are flipped in place on ``base_train``. Members and holdouts
    are each spread round-robin over nodes.
    """
    if n_canaries < 2:
        raise ValueError("need at least 2 canaries (one member, one holdout)")
    if n_canaries > len(base_train):
        raise ValueError("more canaries than samples")
    if not 0.0 < holdout_fraction < 1.0:
        raise ValueError("holdout_fraction must be in (0, 1)")
    num_classes = base_train.num_classes
    if num_classes < 2:
        raise ValueError("label flipping needs at least 2 classes")

    chosen = rng.choice(len(base_train), size=n_canaries, replace=False)
    n_holdout = max(1, int(round(n_canaries * holdout_fraction)))
    n_holdout = min(n_holdout, n_canaries - 1)
    holdout = np.sort(chosen[:n_holdout])
    members = np.sort(chosen[n_holdout:])

    original: dict[int, int] = {}
    flipped: dict[int, int] = {}
    node_of: dict[int, int] = {}
    for group in (members, holdout):
        for rank, idx in enumerate(group):
            idx = int(idx)
            original[idx] = int(base_train.y[idx])
            offset = int(rng.integers(1, num_classes))
            flipped[idx] = (original[idx] + offset) % num_classes
            base_train.y[idx] = flipped[idx]
            node_of[idx] = rank % n_nodes
    return CanarySet(
        member_indices=members,
        holdout_indices=holdout,
        original_labels=original,
        flipped_labels=flipped,
        node_of=node_of,
    )


def inject_canaries(splits: list[NodeSplit], canaries: CanarySet) -> list[NodeSplit]:
    """Rebuild node splits so member canaries are trained on by exactly
    their assigned node and no canary leaks into any test set or any
    other node's training set."""
    out: list[NodeSplit] = []
    all_canaries = canaries.all_indices
    for split in splits:
        mine = canaries.members_for_node(split.node_id)
        train_idx = np.setdiff1d(split.train.indices, all_canaries)
        train_idx = np.union1d(train_idx, mine)
        test_idx = np.setdiff1d(split.test.indices, all_canaries)
        out.append(
            NodeSplit(
                node_id=split.node_id,
                train=split.train.base.subset(train_idx),
                test=split.train.base.subset(test_idx),
            )
        )
    return out
