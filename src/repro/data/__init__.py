"""Datasets, partitioning, and canary construction.

The paper evaluates on CIFAR-10, CIFAR-100, FashionMNIST and
Purchase100. Those corpora are not downloadable in this offline
environment, so :mod:`repro.data.datasets` provides synthetic
class-conditional generators with matching shapes and class counts and
controllable difficulty (see DESIGN.md §4 for the substitution
rationale).
"""

from repro.data.datasets import (
    Dataset,
    Subset,
    make_synthetic_image_dataset,
    make_synthetic_tabular_dataset,
    make_cifar10_like,
    make_cifar100_like,
    make_fashion_mnist_like,
    make_purchase100_like,
    make_dataset,
    DATASET_BUILDERS,
)
from repro.data.partition import (
    NodeSplit,
    iid_partition,
    dirichlet_partition,
    make_node_splits,
    label_distribution,
)
from repro.data.canary import CanarySet, make_canaries, inject_canaries

__all__ = [
    "Dataset",
    "Subset",
    "make_synthetic_image_dataset",
    "make_synthetic_tabular_dataset",
    "make_cifar10_like",
    "make_cifar100_like",
    "make_fashion_mnist_like",
    "make_purchase100_like",
    "make_dataset",
    "DATASET_BUILDERS",
    "NodeSplit",
    "iid_partition",
    "dirichlet_partition",
    "make_node_splits",
    "label_distribution",
    "CanarySet",
    "make_canaries",
    "inject_canaries",
]
