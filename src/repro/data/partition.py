"""Data partitioning across nodes.

The paper (Section 3.1) distributes the training split uniformly across
nodes in equal parts for the i.i.d. setting, and uses Dirichlet(beta)
label-proportion sampling (Li et al.) for the non-i.i.d. setting.
Per-node *local test* sets are sampled from the same base training
split but kept disjoint from the node's training samples; they provide
the MIA non-member pool and the local-test term of the generalization
error (Equation 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import Dataset, Subset

__all__ = [
    "NodeSplit",
    "iid_partition",
    "dirichlet_partition",
    "make_node_splits",
    "label_distribution",
]


@dataclass
class NodeSplit:
    """A node's local view of the data."""

    node_id: int
    train: Subset
    test: Subset

    def __post_init__(self) -> None:
        overlap = np.intersect1d(self.train.indices, self.test.indices)
        if overlap.size:
            raise ValueError(
                f"node {self.node_id}: train/test overlap on {overlap.size} samples"
            )


def iid_partition(
    n_samples: int, n_nodes: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Shuffle indices and split into ``n_nodes`` near-equal parts."""
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    if n_samples < n_nodes:
        raise ValueError(f"cannot split {n_samples} samples across {n_nodes} nodes")
    perm = rng.permutation(n_samples)
    return [np.sort(part) for part in np.array_split(perm, n_nodes)]


def dirichlet_partition(
    labels: np.ndarray,
    n_nodes: int,
    beta: float,
    rng: np.random.Generator,
    min_per_node: int = 2,
    max_retries: int = 100,
) -> list[np.ndarray]:
    """Label-skewed partition via per-class Dirichlet proportions.

    For each class ``k`` the proportion vector across nodes is sampled
    from Dirichlet(beta); smaller beta yields stronger label imbalance.
    Retries until every node holds at least ``min_per_node`` samples.
    """
    if beta <= 0:
        raise ValueError("beta must be positive")
    labels = np.asarray(labels, dtype=np.int64)
    num_classes = int(labels.max()) + 1 if labels.size else 0
    for _ in range(max_retries):
        buckets: list[list[np.ndarray]] = [[] for _ in range(n_nodes)]
        for k in range(num_classes):
            class_idx = np.flatnonzero(labels == k)
            rng.shuffle(class_idx)
            proportions = rng.dirichlet([beta] * n_nodes)
            cuts = (np.cumsum(proportions) * class_idx.size).astype(np.int64)[:-1]
            for node_id, part in enumerate(np.split(class_idx, cuts)):
                buckets[node_id].append(part)
        parts = [
            np.sort(np.concatenate(b)) if b else np.array([], dtype=np.int64)
            for b in buckets
        ]
        if min(part.size for part in parts) >= min_per_node:
            return parts
    raise RuntimeError(
        f"could not build a Dirichlet(beta={beta}) partition giving every "
        f"node at least {min_per_node} samples after {max_retries} tries"
    )


def make_node_splits(
    base_train: Dataset,
    n_nodes: int,
    train_per_node: int | None = None,
    test_per_node: int | None = None,
    beta: float | None = None,
    seed: int = 0,
) -> list[NodeSplit]:
    """Build per-node train/test splits from the base training split.

    Parameters
    ----------
    base_train:
        The base dataset's training split; both local train and local
        test samples come from here (matching Section 3.1).
    beta:
        ``None`` for i.i.d.; otherwise the Dirichlet concentration for
        the non-i.i.d. setting.
    train_per_node / test_per_node:
        Optional caps; defaults carve the whole split into equal train
        shares and use a held-out quarter-sized local test set.
    """
    rng = np.random.default_rng(seed)
    n = len(base_train)
    if beta is None:
        train_parts = iid_partition(n, n_nodes, rng)
    else:
        train_parts = dirichlet_partition(base_train.y, n_nodes, beta, rng)
    if train_per_node is not None:
        train_parts = [
            part[rng.permutation(part.size)[: min(train_per_node, part.size)]]
            for part in train_parts
        ]
        train_parts = [np.sort(part) for part in train_parts]

    used = np.zeros(n, dtype=bool)
    for part in train_parts:
        used[part] = True
    free = np.flatnonzero(~used)
    rng.shuffle(free)

    splits: list[NodeSplit] = []
    cursor = 0
    for node_id, train_idx in enumerate(train_parts):
        want = test_per_node if test_per_node is not None else max(1, train_idx.size // 4)
        if cursor + want <= free.size:
            test_idx = free[cursor : cursor + want]
            cursor += want
        else:
            # Not enough unused samples (e.g. full split consumed by
            # training shares): fall back to sampling from other nodes'
            # training data, which is still non-member data *for this
            # node's model contribution*.
            others = np.flatnonzero(used & ~np.isin(np.arange(n), train_idx))
            if others.size < want:
                raise ValueError(
                    "not enough samples to build disjoint local test sets; "
                    "reduce train_per_node or test_per_node"
                )
            test_idx = rng.choice(others, size=want, replace=False)
        splits.append(
            NodeSplit(
                node_id=node_id,
                train=base_train.subset(np.sort(train_idx)),
                test=base_train.subset(np.sort(test_idx)),
            )
        )
    return splits


def label_distribution(split: Subset, num_classes: int | None = None) -> np.ndarray:
    """Normalized label histogram of a subset (for non-iid diagnostics)."""
    num_classes = num_classes or split.num_classes
    counts = np.bincount(split.y, minlength=num_classes).astype(np.float64)
    total = counts.sum()
    return counts / total if total else counts
