"""Synthetic stand-ins for the paper's four datasets.

Each generator produces class-conditional data that a small network can
learn, yet still overfit when a node holds only a few hundred samples —
the property membership inference exploits. Difficulty is controlled by

* ``prototypes_per_class`` — intra-class diversity (more prototypes is
  harder, emulating fine-grained datasets like CIFAR-100),
* ``noise_std`` — per-sample noise around the prototype,
* ``label_noise`` — fraction of uniformly re-labeled samples.

Image generators emit ``(N, C, H, W)`` float arrays in [0, 1]-ish
range; the tabular generator emits binary features like Purchase100.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Dataset",
    "Subset",
    "make_synthetic_image_dataset",
    "make_synthetic_tabular_dataset",
    "make_cifar10_like",
    "make_cifar100_like",
    "make_fashion_mnist_like",
    "make_purchase100_like",
    "make_dataset",
    "DATASET_BUILDERS",
]


@dataclass
class Dataset:
    """An in-memory supervised dataset."""

    name: str
    x: np.ndarray
    y: np.ndarray
    num_classes: int
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.y = np.asarray(self.y, dtype=np.int64)
        if self.x.shape[0] != self.y.shape[0]:
            raise ValueError("x and y must have the same number of samples")
        if self.y.size and (self.y.min() < 0 or self.y.max() >= self.num_classes):
            raise ValueError("labels out of range")

    def __len__(self) -> int:
        return self.x.shape[0]

    @property
    def input_shape(self) -> tuple[int, ...]:
        return self.x.shape[1:]

    def subset(self, indices: np.ndarray) -> "Subset":
        return Subset(self, np.asarray(indices, dtype=np.int64))


@dataclass
class Subset:
    """A view over a subset of a dataset's rows."""

    base: Dataset
    indices: np.ndarray

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices, dtype=np.int64)
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= len(self.base)
        ):
            raise IndexError("subset indices out of range")

    def __len__(self) -> int:
        return self.indices.shape[0]

    @property
    def x(self) -> np.ndarray:
        return self.base.x[self.indices]

    @property
    def y(self) -> np.ndarray:
        return self.base.y[self.indices]

    @property
    def num_classes(self) -> int:
        return self.base.num_classes


def _sample_labels(
    n: int, num_classes: int, rng: np.random.Generator
) -> np.ndarray:
    """Balanced label vector (as close to equal counts as possible)."""
    per_class = n // num_classes
    labels = np.repeat(np.arange(num_classes), per_class)
    remainder = n - labels.size
    if remainder:
        labels = np.concatenate([labels, rng.integers(0, num_classes, remainder)])
    rng.shuffle(labels)
    return labels.astype(np.int64)


def make_synthetic_image_dataset(
    name: str,
    n_train: int,
    n_test: int,
    image_size: int = 32,
    channels: int = 3,
    num_classes: int = 10,
    prototypes_per_class: int = 3,
    noise_std: float = 0.35,
    label_noise: float = 0.0,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """Generate paired train/test image datasets.

    Each class owns ``prototypes_per_class`` smooth random prototype
    images; every sample is a random prototype plus Gaussian pixel noise
    and a small random brightness shift. Train and test are drawn from
    the same distribution.
    """
    rng = np.random.default_rng(seed)
    # Smooth prototypes: low-resolution random fields upsampled, so that
    # convolutions have local structure to exploit.
    low = max(2, image_size // 4)
    prototypes = rng.normal(
        0.5, 0.5, size=(num_classes, prototypes_per_class, channels, low, low)
    )
    reps = int(np.ceil(image_size / low))
    prototypes = np.kron(prototypes, np.ones((1, 1, 1, reps, reps)))
    prototypes = prototypes[..., :image_size, :image_size]

    def _make(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = _sample_labels(n, num_classes, rng)
        proto_idx = rng.integers(0, prototypes_per_class, size=n)
        x = prototypes[labels, proto_idx].astype(np.float64)
        x = x + rng.normal(0.0, noise_std, size=x.shape)
        x = x + rng.normal(0.0, 0.1, size=(n, 1, 1, 1))  # brightness jitter
        if label_noise > 0:
            flip = rng.random(n) < label_noise
            labels[flip] = rng.integers(0, num_classes, size=int(flip.sum()))
        return x, labels

    x_tr, y_tr = _make(n_train)
    x_te, y_te = _make(n_test)
    meta = {
        "image_size": image_size,
        "channels": channels,
        "prototypes_per_class": prototypes_per_class,
        "noise_std": noise_std,
        "label_noise": label_noise,
    }
    return (
        Dataset(f"{name}-train", x_tr, y_tr, num_classes, dict(meta)),
        Dataset(f"{name}-test", x_te, y_te, num_classes, dict(meta)),
    )


def make_synthetic_tabular_dataset(
    name: str,
    n_train: int,
    n_test: int,
    num_features: int = 600,
    num_classes: int = 100,
    flip_prob: float = 0.15,
    label_noise: float = 0.0,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """Generate paired train/test binary tabular datasets.

    Mirrors Purchase100: each class is a random binary prototype vector;
    samples flip each bit independently with ``flip_prob``.
    """
    rng = np.random.default_rng(seed)
    prototypes = (rng.random((num_classes, num_features)) < 0.5).astype(np.float64)

    def _make(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = _sample_labels(n, num_classes, rng)
        x = prototypes[labels].copy()
        flips = rng.random(x.shape) < flip_prob
        x[flips] = 1.0 - x[flips]
        if label_noise > 0:
            flip = rng.random(n) < label_noise
            labels[flip] = rng.integers(0, num_classes, size=int(flip.sum()))
        return x, labels

    x_tr, y_tr = _make(n_train)
    x_te, y_te = _make(n_test)
    meta = {
        "num_features": num_features,
        "flip_prob": flip_prob,
        "label_noise": label_noise,
    }
    return (
        Dataset(f"{name}-train", x_tr, y_tr, num_classes, dict(meta)),
        Dataset(f"{name}-test", x_te, y_te, num_classes, dict(meta)),
    )


def make_cifar10_like(
    n_train: int = 50_000,
    n_test: int = 10_000,
    image_size: int = 32,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """CIFAR-10 stand-in: 10 classes, 3-channel images, moderate difficulty."""
    return make_synthetic_image_dataset(
        "cifar10",
        n_train,
        n_test,
        image_size=image_size,
        channels=3,
        num_classes=10,
        prototypes_per_class=4,
        noise_std=0.45,
        seed=seed,
    )


def make_cifar100_like(
    n_train: int = 50_000,
    n_test: int = 10_000,
    image_size: int = 32,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """CIFAR-100 stand-in: 100 fine-grained classes, hardest image task."""
    return make_synthetic_image_dataset(
        "cifar100",
        n_train,
        n_test,
        image_size=image_size,
        channels=3,
        num_classes=100,
        prototypes_per_class=3,
        noise_std=0.55,
        seed=seed,
    )


def make_fashion_mnist_like(
    n_train: int = 60_000,
    n_test: int = 10_000,
    image_size: int = 28,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """FashionMNIST stand-in: 10 classes, 1-channel images, easiest task."""
    return make_synthetic_image_dataset(
        "fashion_mnist",
        n_train,
        n_test,
        image_size=image_size,
        channels=1,
        num_classes=10,
        prototypes_per_class=2,
        noise_std=0.30,
        seed=seed,
    )


def make_purchase100_like(
    n_train: int = 157_859,
    n_test: int = 39_465,
    num_features: int = 600,
    seed: int = 0,
) -> tuple[Dataset, Dataset]:
    """Purchase100 stand-in: 600 binary features, 100 classes."""
    return make_synthetic_tabular_dataset(
        "purchase100",
        n_train,
        n_test,
        num_features=num_features,
        num_classes=100,
        flip_prob=0.15,
        seed=seed,
    )


DATASET_BUILDERS = {
    "cifar10": make_cifar10_like,
    "cifar100": make_cifar100_like,
    "fashion_mnist": make_fashion_mnist_like,
    "purchase100": make_purchase100_like,
}


def make_dataset(
    name: str, n_train: int, n_test: int, seed: int = 0, **kwargs
) -> tuple[Dataset, Dataset]:
    """Build a train/test pair by dataset name (see DATASET_BUILDERS)."""
    if name not in DATASET_BUILDERS:
        raise ValueError(
            f"unknown dataset {name!r}; choose from {sorted(DATASET_BUILDERS)}"
        )
    return DATASET_BUILDERS[name](n_train=n_train, n_test=n_test, seed=seed, **kwargs)
