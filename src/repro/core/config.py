"""Grouped experiment configuration.

:class:`~repro.core.study.StudyConfig` historically grew to ~35 flat
knobs. This module decomposes that surface into five composable groups
— :class:`DataConfig`, :class:`ModelConfig`, :class:`TopologyConfig`,
:class:`ExecutionConfig` and :class:`PrivacyConfig` — each owning the
validation, serialization (``to_dict``/``from_dict``) and override
semantics of its slice. ``StudyConfig`` remains the flat compat shim:
it is assembled from the groups (``StudyConfig.from_groups``), exposes
them back as properties, and keeps accepting flat kwargs, so every
existing call site, preset and CLI flag continues to work unchanged.

All groups are frozen dataclasses. Unknown keys are rejected with an
error that lists the valid field names (never a bare ``TypeError``),
both at construction from dicts and through ``with_overrides``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Any, Mapping

__all__ = [
    "ConfigGroup",
    "DataConfig",
    "ModelConfig",
    "TopologyConfig",
    "ExecutionConfig",
    "PrivacyConfig",
    "GROUPS",
    "FLAT_TO_GROUP",
    "config_hash",
    "group_field_names",
    "reject_unknown_keys",
]


def group_field_names(cls) -> tuple[str, ...]:
    """Field names of one config dataclass, in declaration order."""
    return tuple(f.name for f in fields(cls))


def reject_unknown_keys(
    cls_name: str, keys, valid, extra_valid: tuple[str, ...] = ()
) -> None:
    """Raise a ValueError naming the offending and the valid keys.

    Shared by every group and by ``StudyConfig.with_overrides`` so a
    typo'd knob produces an actionable message instead of a dataclass
    ``TypeError``.
    """
    valid_set = set(valid) | set(extra_valid)
    unknown = [k for k in keys if k not in valid_set]
    if unknown:
        raise ValueError(
            f"unknown {cls_name} field(s): {', '.join(sorted(unknown))}; "
            f"valid fields are: {', '.join(sorted(valid_set))}"
        )


@dataclass(frozen=True)
class ConfigGroup:
    """Shared serialization/override behavior of all config groups."""

    def to_dict(self) -> dict:
        """JSON-ready dict of this group's fields."""
        out: dict[str, Any] = {}
        for name in group_field_names(type(self)):
            value = getattr(self, name)
            if isinstance(value, tuple):
                value = list(value)
            out[name] = value
        return out

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ConfigGroup":
        """Build a group from a dict, rejecting unknown keys."""
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"{cls.__name__}.from_dict needs a mapping, "
                f"got {type(payload).__name__}"
            )
        reject_unknown_keys(cls.__name__, payload, group_field_names(cls))
        return cls(**payload)

    def with_overrides(self, **kwargs) -> "ConfigGroup":
        """Copy with the given fields replaced (unknown keys rejected)."""
        reject_unknown_keys(
            type(self).__name__, kwargs, group_field_names(type(self))
        )
        return replace(self, **kwargs)


@dataclass(frozen=True)
class DataConfig(ConfigGroup):
    """Dataset choice, pool sizes and the per-node partition."""

    dataset: str = "cifar10"
    n_train: int = 2_000
    n_test: int = 500
    image_size: int = 16
    num_features: int = 600
    train_per_node: int | None = 64
    test_per_node: int | None = 32
    beta: float | None = None  # None = i.i.d., else Dirichlet(beta)

    def __post_init__(self) -> None:
        if self.n_train <= 0 or self.n_test <= 0:
            raise ValueError("n_train and n_test must be positive")
        if self.image_size <= 0 or self.num_features <= 0:
            raise ValueError("image_size and num_features must be positive")
        if self.beta is not None and self.beta <= 0:
            raise ValueError("beta must be positive (or None for i.i.d.)")


@dataclass(frozen=True)
class ModelConfig(ConfigGroup):
    """Architecture scale and the Table-2 local-training recipe."""

    model_width: int = 8
    mlp_hidden: tuple[int, ...] = (256, 128, 64)
    learning_rate: float = 0.01
    momentum: float = 0.9
    weight_decay: float = 5e-4
    local_epochs: int = 3
    batch_size: int = 32
    label_smoothing: float = 0.0
    lr_decay: float = 1.0
    dropout: float = 0.0
    dropout_mode: str = "stream"

    def __post_init__(self) -> None:
        if isinstance(self.mlp_hidden, list):
            # Normalize JSON round-trips: lists come back as tuples.
            object.__setattr__(self, "mlp_hidden", tuple(self.mlp_hidden))
        if self.model_width <= 0:
            raise ValueError("model_width must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.local_epochs < 0:
            raise ValueError("local_epochs must be non-negative")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if not 0.0 <= self.label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        if not 0.0 < self.lr_decay <= 1.0:
            raise ValueError("lr_decay must be in (0, 1]")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if self.dropout_mode not in ("stream", "legacy"):
            raise ValueError("dropout_mode must be 'stream' or 'legacy'")


@dataclass(frozen=True)
class TopologyConfig(ConfigGroup):
    """Communication graph, protocol, horizon and failure injection."""

    n_nodes: int = 16
    view_size: int = 2
    dynamic: bool = False
    sampler: str | None = None  # overrides `dynamic`: static/peerswap/fresh
    protocol: str = "samo"
    rounds: int = 10
    ticks_per_round: int = 100
    drop_prob: float = 0.0
    failure_prob: float = 0.0
    delay_ticks: int = 0
    delay_jitter: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes <= 1:
            raise ValueError("need at least two nodes")
        if not 0 < self.view_size < self.n_nodes:
            raise ValueError("view_size must be in (0, n_nodes)")
        if self.rounds <= 0 or self.ticks_per_round <= 0:
            raise ValueError("rounds and ticks_per_round must be positive")
        if not 0.0 <= self.drop_prob < 1.0:
            raise ValueError("drop_prob must be in [0, 1)")
        if not 0.0 <= self.failure_prob < 1.0:
            raise ValueError("failure_prob must be in [0, 1)")
        if self.delay_ticks < 0 or self.delay_jitter < 0:
            raise ValueError("delays must be non-negative")


@dataclass(frozen=True)
class ExecutionConfig(ConfigGroup):
    """Engine/executor selection and evaluation batching/limits."""

    engine: str = "flat"  # "flat" (arena, default) or "dict" (legacy)
    executor: str = "serial"  # "serial"/"process"/"batched"/"sharded"
    n_workers: int = 0  # process-pool size; 0 = one per CPU (capped)
    n_shards: int = 0  # shard workers; 0 = one per CPU (capped)
    shard_partition: str = "contiguous"  # row->shard map
    train_batch: int = 0  # rows per blocked training op
    arena_dtype: str = "float64"  # flat-arena storage dtype
    eval_batch: int = 0  # node models per blocked eval op
    max_global_test: int = 512
    max_attack_samples: int = 256
    keep_node_records: bool = False

    def __post_init__(self) -> None:
        if self.engine not in ("dict", "flat"):
            raise ValueError("engine must be 'dict' or 'flat'")
        if self.executor not in ("serial", "process", "batched", "sharded"):
            raise ValueError(
                "executor must be 'serial', 'process', 'batched' or 'sharded'"
            )
        if self.n_workers < 0 or self.n_shards < 0:
            raise ValueError("n_workers and n_shards must be non-negative")
        if self.shard_partition not in ("contiguous", "balanced"):
            raise ValueError(
                "shard_partition must be 'contiguous' or 'balanced'"
            )
        if self.train_batch < -1 or self.eval_batch < -1:
            raise ValueError("train_batch and eval_batch must be >= -1")
        if self.arena_dtype not in ("float32", "float64"):
            raise ValueError("arena_dtype must be 'float32' or 'float64'")
        if self.max_global_test <= 0 or self.max_attack_samples <= 0:
            raise ValueError(
                "max_global_test and max_attack_samples must be positive"
            )


@dataclass(frozen=True)
class PrivacyConfig(ConfigGroup):
    """Differential privacy (RQ7) and canary auditing (RQ3)."""

    dp_epsilon: float | None = None  # None disables DP
    dp_delta: float = 1e-5
    dp_clip_norm: float = 1.0
    n_canaries: int = 0  # 0 disables the canary audit

    def __post_init__(self) -> None:
        if self.dp_epsilon is not None and self.dp_epsilon <= 0:
            raise ValueError("dp_epsilon must be positive (or None)")
        if not 0.0 < self.dp_delta < 1.0:
            raise ValueError("dp_delta must be in (0, 1)")
        if self.dp_clip_norm <= 0:
            raise ValueError("dp_clip_norm must be positive")
        if self.n_canaries < 0:
            raise ValueError("n_canaries must be non-negative")


def config_hash(config) -> str:
    """Canonical SHA-256 hex digest of a study config.

    The identity key of the service-layer response cache and job
    deduplication: a fixed config + seed determines the run bit for bit
    (float64), so two requests with the same hash may share one
    simulator. Accepts a ``StudyConfig`` (anything with ``to_dict``) or
    a plain mapping in any accepted spelling — grouped, flat, or a mix.
    Mappings are normalized through ``StudyConfig.from_dict`` first, so
    dict key ordering, group-vs-flat spellings, and omitted-but-default
    fields all hash identically.
    """
    if isinstance(config, Mapping):
        # Lazy import: study.py imports this module at load time.
        from repro.core.study import StudyConfig

        config = StudyConfig.from_dict(dict(config))
    payload = config.to_dict()
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# Group name -> group class, in StudyConfig presentation order.
GROUPS: dict[str, type[ConfigGroup]] = {
    "data": DataConfig,
    "model": ModelConfig,
    "topology": TopologyConfig,
    "execution": ExecutionConfig,
    "privacy": PrivacyConfig,
}

# Flat field name -> owning group name (the decomposition map).
FLAT_TO_GROUP: dict[str, str] = {
    name: group
    for group, cls in GROUPS.items()
    for name in group_field_names(cls)
}
