"""Session API for a full MIA-vulnerability study.

A :class:`StudyConfig` describes everything the paper varies — dataset,
model, protocol, topology, dynamics, view size, data distribution,
DP — plus the scale knobs (nodes, rounds, samples) that let the study
run on a laptop. The config is the flat compat shim over the grouped
:mod:`repro.core.config` layer (``DataConfig`` / ``ModelConfig`` /
``TopologyConfig`` / ``ExecutionConfig`` / ``PrivacyConfig``).

:class:`Study` is the session object with an explicit lifecycle:

* :meth:`Study.build` constructs the pipeline (data, model, simulator,
  observer) without running anything;
* :meth:`Study.iter_rounds` is a generator yielding one
  :class:`~repro.metrics.records.RoundRecord` per completed round, so
  callers can stream metrics, early-stop on a predicate, or inject
  faults mid-run;
* :meth:`Study.checkpoint` / :meth:`Study.resume` serialize the full
  mutable run state (arena rows, node RNG streams, in-flight messages,
  sampler views, observer state) so an interrupted run continues
  bit-identically in float64;
* the context-manager protocol guarantees executor/shared-memory
  cleanup (:meth:`Study.close`).

:func:`run_study` stays the one-call wrapper and is bit-identical to
the pre-session API.
"""

from __future__ import annotations

import math
import os
import pickle
import threading
from dataclasses import dataclass, replace
from functools import partial
from pathlib import Path
from time import perf_counter
from typing import Iterator

import numpy as np

from repro.core.attacker import OmniscientObserver
from repro.core.config import (
    FLAT_TO_GROUP,
    GROUPS,
    ConfigGroup,
    DataConfig,
    ExecutionConfig,
    config_hash,
    ModelConfig,
    PrivacyConfig,
    TopologyConfig,
    group_field_names,
    reject_unknown_keys,
)
from repro.data.canary import make_canaries, inject_canaries
from repro.data.datasets import make_dataset
from repro.data.partition import make_node_splits
from repro.gossip.engine import make_simulator
from repro.gossip.protocols import make_protocol
from repro.gossip.simulator import GossipSimulator, SimulatorConfig
from repro.gossip.trainer import LocalTrainer, TrainerConfig
from repro.metrics.records import RoundRecord, RunResult
from repro.nn.models import build_model
from repro.nn.serialize import get_state
from repro.privacy.accountant import RDPAccountant, calibrate_sigma
from repro.privacy.dp import DPSGDConfig
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["StudyConfig", "Study", "VulnerabilityStudy", "run_study"]

# Architecture used for each dataset in Table 2.
_DATASET_MODELS = {
    "cifar10": "cnn",
    "cifar100": "resnet8",
    "fashion_mnist": "cnn",
    "purchase100": "mlp",
}
_DATASET_CHANNELS = {"cifar10": 3, "cifar100": 3, "fashion_mnist": 1}
_DATASET_CLASSES = {
    "cifar10": 10,
    "cifar100": 100,
    "fashion_mnist": 10,
    "purchase100": 100,
}

# On-disk checkpoint format tag (bump on incompatible layout changes).
CHECKPOINT_FORMAT = "repro-study-checkpoint"
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class StudyConfig:
    """Full description of one experimental run (flat compat shim).

    Every field belongs to exactly one group of
    :mod:`repro.core.config`; the grouped views are exposed as the
    ``data`` / ``model`` / ``topology`` / ``execution`` / ``privacy``
    properties, and :meth:`from_groups` assembles a config from group
    objects. ``to_dict``/``from_dict`` round-trip the grouped form
    through JSON. Flat construction (``StudyConfig(n_nodes=8, ...)``)
    keeps working unchanged.
    """

    name: str = "study"
    # Data.
    dataset: str = "cifar10"
    n_train: int = 2_000
    n_test: int = 500
    image_size: int = 16
    num_features: int = 600
    train_per_node: int | None = 64
    test_per_node: int | None = 32
    beta: float | None = None  # None = i.i.d., else Dirichlet(beta)
    # Model.
    model_width: int = 8
    mlp_hidden: tuple[int, ...] = (256, 128, 64)
    # Communication.
    n_nodes: int = 16
    view_size: int = 2
    dynamic: bool = False
    sampler: str | None = None  # overrides `dynamic`: static/peerswap/fresh
    protocol: str = "samo"
    rounds: int = 10
    ticks_per_round: int = 100
    drop_prob: float = 0.0  # message-loss injection
    failure_prob: float = 0.0  # node-churn injection
    delay_ticks: int = 0  # network latency (ticks per message)
    delay_jitter: int = 0  # extra uniform latency in [0, jitter]
    # Execution engine (DESIGN.md "Flat-state execution engine").
    engine: str = "flat"  # "flat" (arena, default) or "dict" (legacy)
    executor: str = "serial"  # "serial"/"process"/"batched"/"sharded" (flat only)
    n_workers: int = 0  # process-pool size; 0 = one per CPU (capped)
    n_shards: int = 0  # shard workers; 0 = one per CPU (capped at n_nodes)
    shard_partition: str = "contiguous"  # row->shard map: contiguous/balanced
    train_batch: int = 0  # rows per blocked training op (0=all, -1=per-row)
    arena_dtype: str = "float64"  # flat-arena storage dtype
    # Local training (Table 2 columns).
    learning_rate: float = 0.01
    momentum: float = 0.9
    weight_decay: float = 5e-4
    local_epochs: int = 3
    batch_size: int = 32
    # Early-overfitting mitigations (Section 5 recommendations).
    label_smoothing: float = 0.0
    lr_decay: float = 1.0
    # Dropout regularization (MLP only). Mask streams are counter-based
    # (keyed by node/session/step) so dropout stays on the fast path;
    # "legacy" restores the stateful per-layer generator.
    dropout: float = 0.0
    dropout_mode: str = "stream"
    # Differential privacy (RQ7). ``dp_epsilon`` of None disables DP.
    dp_epsilon: float | None = None
    dp_delta: float = 1e-5
    dp_clip_norm: float = 1.0
    # Canary auditing (RQ3). 0 disables.
    n_canaries: int = 0
    # Evaluation.
    max_global_test: int = 512
    max_attack_samples: int = 256
    eval_batch: int = 0  # node models per blocked eval op (0=all, -1=per-node loop)
    keep_node_records: bool = False  # retain per-node evaluations
    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.mlp_hidden, list):
            object.__setattr__(self, "mlp_hidden", tuple(self.mlp_hidden))
        # Constructing the group views runs each group's validation, so
        # flat and grouped construction reject the same bad values.
        for group_name in GROUPS:
            getattr(self, group_name)

    # -- grouped views --------------------------------------------------

    def _group(self, cls: type[ConfigGroup]) -> ConfigGroup:
        return cls(
            **{name: getattr(self, name) for name in group_field_names(cls)}
        )

    @property
    def data(self) -> DataConfig:
        return self._group(DataConfig)

    @property
    def model(self) -> ModelConfig:
        return self._group(ModelConfig)

    @property
    def topology(self) -> TopologyConfig:
        return self._group(TopologyConfig)

    @property
    def execution(self) -> ExecutionConfig:
        return self._group(ExecutionConfig)

    @property
    def privacy(self) -> PrivacyConfig:
        return self._group(PrivacyConfig)

    @classmethod
    def from_groups(
        cls,
        name: str = "study",
        seed: int = 0,
        data: DataConfig | None = None,
        model: ModelConfig | None = None,
        topology: TopologyConfig | None = None,
        execution: ExecutionConfig | None = None,
        privacy: PrivacyConfig | None = None,
    ) -> "StudyConfig":
        """Assemble a config from group objects (defaults fill gaps)."""
        groups: dict[str, ConfigGroup] = {
            "data": data if data is not None else DataConfig(),
            "model": model if model is not None else ModelConfig(),
            "topology": topology if topology is not None else TopologyConfig(),
            "execution": (
                execution if execution is not None else ExecutionConfig()
            ),
            "privacy": privacy if privacy is not None else PrivacyConfig(),
        }
        flat: dict = {"name": name, "seed": seed}
        for group_name, group in groups.items():
            expected = GROUPS[group_name]
            if not isinstance(group, expected):
                raise ValueError(
                    f"{group_name} must be a {expected.__name__}, "
                    f"got {type(group).__name__}"
                )
            for field_name in group_field_names(expected):
                flat[field_name] = getattr(group, field_name)
        return cls(**flat)

    def to_dict(self) -> dict:
        """Grouped, JSON-ready representation (``from_dict`` inverts)."""
        out: dict = {"name": self.name, "seed": self.seed}
        for group_name in GROUPS:
            out[group_name] = getattr(self, group_name).to_dict()
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "StudyConfig":
        """Build from :meth:`to_dict` output; flat keys also accepted."""
        if not isinstance(payload, dict):
            raise ValueError(
                f"StudyConfig.from_dict needs a mapping, "
                f"got {type(payload).__name__}"
            )
        flat: dict = {}
        for key, value in payload.items():
            if key in GROUPS:
                group = (
                    GROUPS[key].from_dict(value)
                    if not isinstance(value, ConfigGroup)
                    else value
                )
                for field_name in group_field_names(GROUPS[key]):
                    flat[field_name] = getattr(group, field_name)
            elif key in ("name", "seed") or key in FLAT_TO_GROUP:
                flat[key] = value
            else:
                reject_unknown_keys(
                    "StudyConfig",
                    [key],
                    tuple(FLAT_TO_GROUP) + ("name", "seed"),
                    extra_valid=tuple(GROUPS),
                )
        return cls(**flat)

    def with_overrides(self, **kwargs) -> "StudyConfig":
        """Copy with flat fields and/or whole groups replaced.

        Accepts any flat field name, plus the group names (``data``,
        ``model``, ``topology``, ``execution``, ``privacy``) mapped to a
        group instance (replaces the group) or a dict (merged into the
        current group). Unknown keys raise a ValueError listing the
        valid names.
        """
        reject_unknown_keys(
            "StudyConfig",
            kwargs,
            tuple(FLAT_TO_GROUP) + ("name", "seed"),
            extra_valid=tuple(GROUPS),
        )
        flat: dict = {}
        for key, value in kwargs.items():
            if key in GROUPS:
                if isinstance(value, dict):
                    value = getattr(self, key).with_overrides(**value)
                if not isinstance(value, GROUPS[key]):
                    raise ValueError(
                        f"{key} override must be a {GROUPS[key].__name__} "
                        f"or a dict of its fields, got {type(value).__name__}"
                    )
                for field_name in group_field_names(GROUPS[key]):
                    flat[field_name] = getattr(value, field_name)
            else:
                flat[key] = value
        return replace(self, **flat)

    def config_hash(self) -> str:
        """Canonical content hash (:func:`repro.core.config.config_hash`)."""
        return config_hash(self)

    @property
    def architecture(self) -> str:
        if self.dataset not in _DATASET_MODELS:
            raise ValueError(f"unknown dataset {self.dataset!r}")
        return _DATASET_MODELS[self.dataset]

    @property
    def num_classes(self) -> int:
        return _DATASET_CLASSES[self.dataset]


class Study:
    """One experiment as a long-lived, introspectable session.

    Lifecycle::

        with Study(config) as study:        # __enter__ calls build()
            for record in study.iter_rounds():
                ...                          # stream, early-stop, inject
                study.checkpoint("run.ckpt") # optional, any boundary
            result = study.result()

    ``run()`` collapses the whole lifecycle into one call and is
    bit-identical to the historical ``run_study`` behavior. A study
    interrupted at round k can be serialized with :meth:`checkpoint`
    and continued by :meth:`resume`; the resumed run reproduces the
    uninterrupted ``RunResult`` bit for bit on float64 arenas.
    """

    def __init__(
        self, config: StudyConfig, telemetry: Telemetry | None = None
    ):
        self.config = config
        # Telemetry travels by reference, never through the config: it
        # must not change config_hash, cache identity, or any RNG draw.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel = self.telemetry if self.telemetry.enabled else None
        self._round_ms: list[float] = []
        if self._tel is not None:
            self._round_hist = self.telemetry.registry.histogram(
                "repro_study_round_ms",
                "Wall-clock of one full study round (simulate + observe)",
            ).child()
        self._built = False
        self._finalized = False
        self._rounds_done = 0
        # Set from any thread (the service layer's HTTP handlers);
        # honored by iter_rounds at the next round boundary, which is
        # also the checkpoint granularity — a cancelled study can
        # always be checkpointed and resumed bit-identically.
        self._cancel = threading.Event()

    # -- lifecycle ------------------------------------------------------

    def build(self) -> "Study":
        """Construct the pipeline (idempotent); returns self."""
        if self._built:
            return self
        self._build()
        self._built = True
        return self

    def __enter__(self) -> "Study":
        return self.build()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Release executor workers and shared memory (idempotent)."""
        if self._built:
            self.simulator.close()

    @property
    def rounds_completed(self) -> int:
        """Rounds observed so far (also the next round index)."""
        return self._rounds_done

    # -- cancellation ---------------------------------------------------

    def request_cancel(self) -> None:
        """Ask a running :meth:`iter_rounds` loop to stop (thread-safe).

        Takes effect at the next round boundary: the generator returns
        instead of starting another round. The study stays open —
        callers can still :meth:`checkpoint`, read :meth:`result` for
        the partial run, and must :meth:`close` as usual.
        """
        self._cancel.set()

    @property
    def cancel_requested(self) -> bool:
        """Whether :meth:`request_cancel` has been called."""
        return self._cancel.is_set()

    def clear_cancel(self) -> None:
        """Re-arm the session after a cancelled :meth:`iter_rounds`."""
        self._cancel.clear()

    # -- construction ---------------------------------------------------

    def _build(self) -> None:
        cfg = self.config
        # Data ---------------------------------------------------------
        dataset_kwargs = {}
        if cfg.architecture != "mlp":
            dataset_kwargs["image_size"] = cfg.image_size
        else:
            dataset_kwargs["num_features"] = cfg.num_features
        self.base_train, self.global_test = make_dataset(
            cfg.dataset, cfg.n_train, cfg.n_test, seed=cfg.seed, **dataset_kwargs
        )
        data_rng = np.random.default_rng(cfg.seed + 1)
        self.splits = make_node_splits(
            self.base_train,
            cfg.n_nodes,
            train_per_node=cfg.train_per_node,
            test_per_node=cfg.test_per_node,
            beta=cfg.beta,
            seed=cfg.seed + 2,
        )
        self.canaries = None
        if cfg.n_canaries > 0:
            self.canaries = make_canaries(
                self.base_train, cfg.n_canaries, cfg.n_nodes, data_rng
            )
            self.splits = inject_canaries(self.splits, self.canaries)
        # Model ---------------------------------------------------------
        # Kept as a picklable builder too: process-pool executor workers
        # construct their own workspace Module from it.
        self.model_builder = partial(
            build_model,
            cfg.architecture,
            in_channels=_DATASET_CHANNELS.get(cfg.dataset, 3),
            image_size=cfg.image_size,
            in_features=cfg.num_features,
            num_classes=cfg.num_classes,
            width=cfg.model_width,
            hidden=cfg.mlp_hidden,
            seed=cfg.seed,
            dropout=cfg.dropout,
            dropout_mode=cfg.dropout_mode,
        )
        self.model = self.model_builder()
        self.initial_state = get_state(self.model)
        # Protocol / simulator -------------------------------------------
        trainer = LocalTrainer(
            self.model,
            TrainerConfig(
                learning_rate=cfg.learning_rate,
                momentum=cfg.momentum,
                weight_decay=cfg.weight_decay,
                local_epochs=cfg.local_epochs,
                batch_size=cfg.batch_size,
                label_smoothing=cfg.label_smoothing,
                lr_decay=cfg.lr_decay,
                dp=None,
            ),
        )
        self.protocol = make_protocol(cfg.protocol, trainer)
        self.simulator = make_simulator(
            SimulatorConfig(
                n_nodes=cfg.n_nodes,
                view_size=cfg.view_size,
                dynamic=cfg.dynamic,
                sampler=cfg.sampler,
                ticks_per_round=cfg.ticks_per_round,
                drop_prob=cfg.drop_prob,
                failure_prob=cfg.failure_prob,
                delay_ticks=cfg.delay_ticks,
                delay_jitter=cfg.delay_jitter,
                engine=cfg.engine,
                executor=cfg.executor,
                n_workers=cfg.n_workers,
                n_shards=cfg.n_shards,
                shard_partition=cfg.shard_partition,
                train_batch=cfg.train_batch,
                arena_dtype=cfg.arena_dtype,
                seed=cfg.seed + 3,
            ),
            self.protocol,
            self.splits,
            self.initial_state,
            model_builder=self.model_builder,
            telemetry=self.telemetry,
        )
        # From here on a live simulator exists (worker processes,
        # shared-memory segments); a failing construction step must not
        # leak it — close() won't run because _built is never set.
        try:
            # DP: calibrated against the exact wake schedule, enforced
            # with a per-node update cap so the budget is a hard
            # guarantee.
            self._dp_q = 0.0
            self._sigma = 0.0
            if cfg.dp_epsilon is not None:
                self._install_dp()
            self.observer = OmniscientObserver(
                self.model,
                self.global_test,
                canaries=self.canaries,
                canary_base=self.base_train if self.canaries else None,
                max_global_test=cfg.max_global_test,
                max_attack_samples=cfg.max_attack_samples,
                seed=cfg.seed + 4,
                keep_node_records=cfg.keep_node_records,
                eval_batch=cfg.eval_batch,
                telemetry=self.telemetry,
            )
            if cfg.dp_epsilon is not None:
                self.observer.set_epsilon_fn(self._epsilon_at_round)
        except BaseException:
            self.simulator.close()
            raise

    # -- DP plumbing ----------------------------------------------------

    def _steps_per_update(self) -> int:
        """DP-SGD steps in one local update of the largest node."""
        cfg = self.config
        sizes = [max(1, s.train.indices.size) for s in self.splits]
        return max(
            cfg.local_epochs * math.ceil(n / cfg.batch_size) for n in sizes
        )

    def _install_dp(self) -> None:
        """Calibrate sigma against the planned run and cap updates.

        The wake schedule is already fixed, so the maximum number of
        wake-ups per node over the horizon is exact; the per-node
        update cap makes it an upper bound on local updates for both
        protocols (Base Gossip trains on receptions, which the cap also
        covers), turning the calibrated budget into a hard guarantee.
        """
        cfg = self.config
        assert cfg.dp_epsilon is not None
        horizon = cfg.rounds * cfg.ticks_per_round
        max_wakes = max(
            self.simulator.schedule.count_wakes(i, horizon)
            for i in range(cfg.n_nodes)
        )
        planned_updates = max(1, max_wakes)
        local_n = max(1, min(s.train.indices.size for s in self.splits))
        q = min(1.0, cfg.batch_size / local_n)
        total_steps = planned_updates * self._steps_per_update()
        sigma = calibrate_sigma(cfg.dp_epsilon, cfg.dp_delta, q, total_steps)
        dp_config = DPSGDConfig(
            clip_norm=cfg.dp_clip_norm,
            noise_multiplier=sigma,
            target_epsilon=cfg.dp_epsilon,
            target_delta=cfg.dp_delta,
        )
        trainer = self.protocol.trainer
        # Through the simulator so the swap revalidates and reaches the
        # live executor (batched trainer, process pool, shard workers)
        # instead of relying on each path re-reading trainer.config.
        self.simulator.set_trainer_config(replace(trainer.config, dp=dp_config))
        self.protocol.max_updates_per_node = planned_updates
        self._dp_q = q
        self._sigma = sigma

    def _epsilon_at_round(self, round_index: int) -> float:
        """Epsilon spent by the busiest node up to ``round_index``."""
        updates = max(n.updates_performed for n in self.simulator.nodes)
        accountant = RDPAccountant()
        accountant.step(self._dp_q, self._sigma, updates * self._steps_per_update())
        return accountant.get_epsilon(self.config.dp_delta)

    # -- execution --------------------------------------------------------

    def iter_rounds(self, rounds: int | None = None) -> Iterator[RoundRecord]:
        """Stream the remaining rounds, one :class:`RoundRecord` each.

        ``rounds`` bounds how many *additional* rounds to run (capped
        at the config horizon); None runs to the horizon. The generator
        can be abandoned at any boundary (early stopping) — call
        :meth:`result` for the partial run and :meth:`close` to release
        resources. End-of-run bookkeeping (final message flush and the
        ``messages_undelivered`` tally) happens exactly once, when the
        configured horizon is reached.
        """
        self.build()
        target = self.config.rounds
        if rounds is not None:
            if rounds < 0:
                raise ValueError("rounds must be non-negative")
            target = min(target, self._rounds_done + rounds)
        tel = self._tel
        try:
            while self._rounds_done < target:
                if self._cancel.is_set():
                    # Cancelled between rounds: stop without the
                    # end-of-run finalization — the horizon was not
                    # reached, and a resume must replay the remaining
                    # rounds bit-identically.
                    if tel is not None:
                        tel.tracer.event(
                            "study.cancelled", round=self._rounds_done
                        )
                    return
                round_index = self._rounds_done
                if tel is None:
                    self.simulator.run_round()
                    self.observer(round_index, self.simulator)
                else:
                    with tel.tracer.span("study.round", round=round_index):
                        start = perf_counter()
                        self.simulator.run_round()
                        self.observer(round_index, self.simulator)
                        elapsed = (perf_counter() - start) * 1000.0
                    self._round_ms.append(elapsed)
                    self._round_hist.observe(elapsed)
                self._rounds_done += 1
                # Finalize BEFORE the last yield: a caller that breaks
                # on the final record (a predicate satisfied at the
                # horizon) must still get the end-of-run flush and tally.
                self._maybe_finish()
                yield self.observer.records[-1]
        except GeneratorExit:
            # The caller abandoned the generator mid-run — the
            # early-stopping pattern. Mark it so traces show where and
            # why a run ended short of the horizon.
            if tel is not None and self._rounds_done < self.config.rounds:
                tel.tracer.event("study.early_stop", round=self._rounds_done)
            raise
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self._rounds_done >= self.config.rounds and not self._finalized:
            self.simulator.finish()
            self._finalized = True

    def run(self) -> RunResult:
        """Run to the horizon and clean up (the one-call API)."""
        try:
            for _ in self.iter_rounds():
                pass
            return self.result()
        finally:
            self.close()

    @property
    def records(self) -> list[RoundRecord]:
        """Records observed so far (live view of the observer's list)."""
        self.build()
        return self.observer.records

    def result(self) -> RunResult:
        """The run so far as a :class:`RunResult` (partial runs included).

        When the study runs with live telemetry *and*
        ``annotate_results`` is on, ``metadata["telemetry"]`` carries
        the per-round wall-clock series and a metrics snapshot for
        offline inspection (``repro report --telemetry``). The service
        keeps annotation off: result bytes must stay identical to a
        plain ``run_study`` of the same config.
        """
        self.build()
        result = RunResult(
            config_name=self.config.name,
            rounds=list(self.observer.records),
            metadata={
                "dataset": self.config.dataset,
                "protocol": self.config.protocol,
                "dynamic": self.config.dynamic,
                "sampler": self.simulator.config.sampler_name,
                "view_size": self.config.view_size,
                "beta": self.config.beta,
                "dp_epsilon": self.config.dp_epsilon,
                "noise_multiplier": self._sigma,
                "n_nodes": self.config.n_nodes,
                "engine": self.config.engine,
                "executor": self.config.executor,
                "n_workers": self.config.n_workers,
                "n_shards": self.config.n_shards,
                "shard_partition": self.config.shard_partition,
                "train_batch": self.config.train_batch,
                "eval_batch": self.config.eval_batch,
                "dropout": self.config.dropout,
                "dropout_mode": self.config.dropout_mode,
                "messages_dropped": self.simulator.messages_dropped,
                "wakes_skipped": self.simulator.wakes_skipped,
                "messages_undelivered": self.simulator.messages_undelivered,
                "fallback_counts": self.simulator.fallback_counts(),
            },
        )
        if self.telemetry.annotate_results:
            tracer = self.telemetry.tracer
            result.metadata["telemetry"] = {
                "round_ms": [round(ms, 3) for ms in self._round_ms],
                "spans_recorded": len(tracer.spans()),
                "spans_dropped": tracer.dropped,
                "metrics": self.telemetry.registry.snapshot(),
            }
        return result

    # -- checkpoint / resume ----------------------------------------------

    def checkpoint(self, path: str | Path) -> Path:
        """Serialize config + full mutable run state to ``path``.

        Call at a round boundary (between :meth:`iter_rounds` yields).
        The file carries the arena/node model states, every RNG stream
        (simulator, per-node, observer), sampler views, in-flight and
        pending messages, per-node counters (which also drive the DP
        accountant) and the observer's records — everything needed for
        :meth:`resume` to continue bit-identically in float64.
        """
        self.build()
        path = Path(path)
        payload = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "config": self.config.to_dict(),
            "rounds_done": self._rounds_done,
            "finalized": self._finalized,
            "simulator": self.simulator.capture_state(),
            "observer": self.observer.capture_state(),
        }
        # Write-then-rename: a crash mid-dump (the exact scenario
        # checkpoints exist for) must not destroy the previous good
        # checkpoint at this path.
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("wb") as handle:
            pickle.dump(payload, handle)
        os.replace(tmp, path)
        return path

    @classmethod
    def resume(
        cls, path: str | Path, telemetry: Telemetry | None = None
    ) -> "Study":
        """Rebuild a session from a :meth:`checkpoint` file.

        The pipeline is reconstructed deterministically from the stored
        config, then every piece of mutable state is restored, so
        ``iter_rounds`` continues exactly where the checkpointed study
        stopped.
        """
        path = Path(path)
        with path.open("rb") as handle:
            payload = pickle.load(handle)
        if (
            not isinstance(payload, dict)
            or payload.get("format") != CHECKPOINT_FORMAT
        ):
            raise ValueError(f"{path} is not a study checkpoint")
        if payload.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"unsupported checkpoint version {payload.get('version')!r} "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        study = cls(
            StudyConfig.from_dict(payload["config"]), telemetry=telemetry
        )
        study.build()
        try:
            study.simulator.restore_state(payload["simulator"])
            study.observer.restore_state(payload["observer"])
            study._rounds_done = payload["rounds_done"]
            study._finalized = payload["finalized"]
        except BaseException:
            # A malformed state dict must not leak the freshly built
            # simulator's workers/shared memory — the caller never gets
            # a Study to close.
            study.close()
            raise
        return study


class VulnerabilityStudy(Study):
    """Eager-build compat alias: construction builds the pipeline."""

    def __init__(self, config: StudyConfig):
        super().__init__(config)
        self.build()


def run_study(
    config: StudyConfig, telemetry: Telemetry | None = None
) -> RunResult:
    """Convenience wrapper: build, run and clean up in one call."""
    return Study(config, telemetry=telemetry).run()
