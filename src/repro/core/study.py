"""One-call API for a full MIA-vulnerability study.

A :class:`StudyConfig` describes everything the paper varies — dataset,
model, protocol, topology, dynamics, view size, data distribution,
DP — plus the scale knobs (nodes, rounds, samples) that let the study
run on a laptop. :func:`run_study` executes it and returns a
:class:`~repro.metrics.records.RunResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from functools import partial

import numpy as np

from repro.core.attacker import OmniscientObserver
from repro.data.canary import make_canaries, inject_canaries
from repro.data.datasets import make_dataset
from repro.data.partition import make_node_splits
from repro.gossip.engine import make_simulator
from repro.gossip.protocols import make_protocol
from repro.gossip.simulator import GossipSimulator, SimulatorConfig
from repro.gossip.trainer import LocalTrainer, TrainerConfig
from repro.metrics.records import RunResult
from repro.nn.models import build_model
from repro.nn.serialize import get_state
from repro.privacy.accountant import RDPAccountant, calibrate_sigma
from repro.privacy.dp import DPSGDConfig

__all__ = ["StudyConfig", "VulnerabilityStudy", "run_study"]

# Architecture used for each dataset in Table 2.
_DATASET_MODELS = {
    "cifar10": "cnn",
    "cifar100": "resnet8",
    "fashion_mnist": "cnn",
    "purchase100": "mlp",
}
_DATASET_CHANNELS = {"cifar10": 3, "cifar100": 3, "fashion_mnist": 1}
_DATASET_CLASSES = {
    "cifar10": 10,
    "cifar100": 100,
    "fashion_mnist": 10,
    "purchase100": 100,
}


@dataclass(frozen=True)
class StudyConfig:
    """Full description of one experimental run."""

    name: str = "study"
    # Data.
    dataset: str = "cifar10"
    n_train: int = 2_000
    n_test: int = 500
    image_size: int = 16
    num_features: int = 600
    train_per_node: int | None = 64
    test_per_node: int | None = 32
    beta: float | None = None  # None = i.i.d., else Dirichlet(beta)
    # Model.
    model_width: int = 8
    mlp_hidden: tuple[int, ...] = (256, 128, 64)
    # Communication.
    n_nodes: int = 16
    view_size: int = 2
    dynamic: bool = False
    sampler: str | None = None  # overrides `dynamic`: static/peerswap/fresh
    protocol: str = "samo"
    rounds: int = 10
    ticks_per_round: int = 100
    drop_prob: float = 0.0  # message-loss injection
    failure_prob: float = 0.0  # node-churn injection
    delay_ticks: int = 0  # network latency (ticks per message)
    delay_jitter: int = 0  # extra uniform latency in [0, jitter]
    # Execution engine (DESIGN.md "Flat-state execution engine").
    engine: str = "flat"  # "flat" (arena, default) or "dict" (legacy)
    executor: str = "serial"  # "serial"/"process"/"batched"/"sharded" (flat only)
    n_workers: int = 0  # process-pool size; 0 = one per CPU (capped)
    n_shards: int = 0  # shard workers; 0 = one per CPU (capped at n_nodes)
    shard_partition: str = "contiguous"  # row->shard map: contiguous/balanced
    train_batch: int = 0  # rows per blocked training op (0=all, -1=per-row)
    arena_dtype: str = "float64"  # flat-arena storage dtype
    # Local training (Table 2 columns).
    learning_rate: float = 0.01
    momentum: float = 0.9
    weight_decay: float = 5e-4
    local_epochs: int = 3
    batch_size: int = 32
    # Early-overfitting mitigations (Section 5 recommendations).
    label_smoothing: float = 0.0
    lr_decay: float = 1.0
    # Differential privacy (RQ7). ``dp_epsilon`` of None disables DP.
    dp_epsilon: float | None = None
    dp_delta: float = 1e-5
    dp_clip_norm: float = 1.0
    # Canary auditing (RQ3). 0 disables.
    n_canaries: int = 0
    # Evaluation.
    max_global_test: int = 512
    max_attack_samples: int = 256
    eval_batch: int = 0  # node models per blocked eval op (0=all, -1=per-node loop)
    keep_node_records: bool = False  # retain per-node evaluations
    seed: int = 0

    def with_overrides(self, **kwargs) -> "StudyConfig":
        return replace(self, **kwargs)

    @property
    def architecture(self) -> str:
        if self.dataset not in _DATASET_MODELS:
            raise ValueError(f"unknown dataset {self.dataset!r}")
        return _DATASET_MODELS[self.dataset]

    @property
    def num_classes(self) -> int:
        return _DATASET_CLASSES[self.dataset]


class VulnerabilityStudy:
    """Builds and runs the full pipeline described by a StudyConfig."""

    def __init__(self, config: StudyConfig):
        self.config = config
        cfg = config
        # Data ---------------------------------------------------------
        dataset_kwargs = {}
        if cfg.architecture != "mlp":
            dataset_kwargs["image_size"] = cfg.image_size
        else:
            dataset_kwargs["num_features"] = cfg.num_features
        self.base_train, self.global_test = make_dataset(
            cfg.dataset, cfg.n_train, cfg.n_test, seed=cfg.seed, **dataset_kwargs
        )
        data_rng = np.random.default_rng(cfg.seed + 1)
        self.splits = make_node_splits(
            self.base_train,
            cfg.n_nodes,
            train_per_node=cfg.train_per_node,
            test_per_node=cfg.test_per_node,
            beta=cfg.beta,
            seed=cfg.seed + 2,
        )
        self.canaries = None
        if cfg.n_canaries > 0:
            self.canaries = make_canaries(
                self.base_train, cfg.n_canaries, cfg.n_nodes, data_rng
            )
            self.splits = inject_canaries(self.splits, self.canaries)
        # Model ---------------------------------------------------------
        # Kept as a picklable builder too: process-pool executor workers
        # construct their own workspace Module from it.
        self.model_builder = partial(
            build_model,
            cfg.architecture,
            in_channels=_DATASET_CHANNELS.get(cfg.dataset, 3),
            image_size=cfg.image_size,
            in_features=cfg.num_features,
            num_classes=cfg.num_classes,
            width=cfg.model_width,
            hidden=cfg.mlp_hidden,
            seed=cfg.seed,
        )
        self.model = self.model_builder()
        self.initial_state = get_state(self.model)
        # Protocol / simulator -------------------------------------------
        trainer = LocalTrainer(
            self.model,
            TrainerConfig(
                learning_rate=cfg.learning_rate,
                momentum=cfg.momentum,
                weight_decay=cfg.weight_decay,
                local_epochs=cfg.local_epochs,
                batch_size=cfg.batch_size,
                label_smoothing=cfg.label_smoothing,
                lr_decay=cfg.lr_decay,
                dp=None,
            ),
        )
        self.protocol = make_protocol(cfg.protocol, trainer)
        self.simulator = make_simulator(
            SimulatorConfig(
                n_nodes=cfg.n_nodes,
                view_size=cfg.view_size,
                dynamic=cfg.dynamic,
                sampler=cfg.sampler,
                ticks_per_round=cfg.ticks_per_round,
                drop_prob=cfg.drop_prob,
                failure_prob=cfg.failure_prob,
                delay_ticks=cfg.delay_ticks,
                delay_jitter=cfg.delay_jitter,
                engine=cfg.engine,
                executor=cfg.executor,
                n_workers=cfg.n_workers,
                n_shards=cfg.n_shards,
                shard_partition=cfg.shard_partition,
                train_batch=cfg.train_batch,
                arena_dtype=cfg.arena_dtype,
                seed=cfg.seed + 3,
            ),
            self.protocol,
            self.splits,
            self.initial_state,
            model_builder=self.model_builder,
        )
        # DP: calibrated against the exact wake schedule, enforced with
        # a per-node update cap so the budget is a hard guarantee.
        self._dp_q = 0.0
        self._sigma = 0.0
        if cfg.dp_epsilon is not None:
            self._install_dp()
        self.observer = OmniscientObserver(
            self.model,
            self.global_test,
            canaries=self.canaries,
            canary_base=self.base_train if self.canaries else None,
            max_global_test=cfg.max_global_test,
            max_attack_samples=cfg.max_attack_samples,
            seed=cfg.seed + 4,
            keep_node_records=cfg.keep_node_records,
            eval_batch=cfg.eval_batch,
        )
        if cfg.dp_epsilon is not None:
            self.observer.set_epsilon_fn(self._epsilon_at_round)

    # -- DP plumbing ----------------------------------------------------

    def _steps_per_update(self) -> int:
        """DP-SGD steps in one local update of the largest node."""
        cfg = self.config
        sizes = [max(1, s.train.indices.size) for s in self.splits]
        return max(
            cfg.local_epochs * math.ceil(n / cfg.batch_size) for n in sizes
        )

    def _install_dp(self) -> None:
        """Calibrate sigma against the planned run and cap updates.

        The wake schedule is already fixed, so the maximum number of
        wake-ups per node over the horizon is exact; the per-node
        update cap makes it an upper bound on local updates for both
        protocols (Base Gossip trains on receptions, which the cap also
        covers), turning the calibrated budget into a hard guarantee.
        """
        cfg = self.config
        assert cfg.dp_epsilon is not None
        horizon = cfg.rounds * cfg.ticks_per_round
        max_wakes = max(
            self.simulator.schedule.count_wakes(i, horizon)
            for i in range(cfg.n_nodes)
        )
        planned_updates = max(1, max_wakes)
        local_n = max(1, min(s.train.indices.size for s in self.splits))
        q = min(1.0, cfg.batch_size / local_n)
        total_steps = planned_updates * self._steps_per_update()
        sigma = calibrate_sigma(cfg.dp_epsilon, cfg.dp_delta, q, total_steps)
        dp_config = DPSGDConfig(
            clip_norm=cfg.dp_clip_norm,
            noise_multiplier=sigma,
            target_epsilon=cfg.dp_epsilon,
            target_delta=cfg.dp_delta,
        )
        trainer = self.protocol.trainer
        trainer.config = replace(trainer.config, dp=dp_config)
        self.protocol.max_updates_per_node = planned_updates
        self._dp_q = q
        self._sigma = sigma

    def _epsilon_at_round(self, round_index: int) -> float:
        """Epsilon spent by the busiest node up to ``round_index``."""
        updates = max(n.updates_performed for n in self.simulator.nodes)
        accountant = RDPAccountant()
        accountant.step(self._dp_q, self._sigma, updates * self._steps_per_update())
        return accountant.get_epsilon(self.config.dp_delta)

    # -- execution --------------------------------------------------------

    def run(self) -> RunResult:
        try:
            self.simulator.run(self.config.rounds, round_callback=self.observer)
        finally:
            self.simulator.close()
        result = RunResult(
            config_name=self.config.name,
            rounds=self.observer.records,
            metadata={
                "dataset": self.config.dataset,
                "protocol": self.config.protocol,
                "dynamic": self.config.dynamic,
                "sampler": self.simulator.config.sampler_name,
                "view_size": self.config.view_size,
                "beta": self.config.beta,
                "dp_epsilon": self.config.dp_epsilon,
                "noise_multiplier": self._sigma,
                "n_nodes": self.config.n_nodes,
                "engine": self.config.engine,
                "executor": self.config.executor,
                "n_workers": self.config.n_workers,
                "n_shards": self.config.n_shards,
                "shard_partition": self.config.shard_partition,
                "train_batch": self.config.train_batch,
                "eval_batch": self.config.eval_batch,
                "messages_dropped": self.simulator.messages_dropped,
                "wakes_skipped": self.simulator.wakes_skipped,
                "messages_undelivered": self.simulator.messages_undelivered,
            },
        )
        return result


def run_study(config: StudyConfig) -> RunResult:
    """Convenience wrapper: build and run in one call."""
    return VulnerabilityStudy(config).run()
