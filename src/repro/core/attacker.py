"""The omniscient observer of Section 2.6.

"At regular time intervals [the attacker] recovers the current models
of all nodes and performs A_MPE on each one of them, targeting each
data sample of each node."

The observer snapshots every node model at each round boundary, runs
the MPE attack per node (members = the node's local training set,
non-members = its local test set), and aggregates Section 3.2 metrics
into a :class:`~repro.metrics.records.RoundRecord`. When a canary set
is present it additionally runs the targeted canary attack of RQ3.

Observation runs on the **row-batch path** by default: node models are
read as one ``(n_nodes, dim)`` matrix (``simulator.state_matrix()`` —
the live arena under the flat engine, a one-shot pack under the legacy
dict engine) and scored in blocked numpy ops by a
:class:`~repro.metrics.evaluation.BatchedEvaluator`, in the matrix
dtype. When the simulator runs a sharded executor, observation rides
the same shard workers: each scores its own arena rows in place
(evaluation + MPE scoring never cross a pipe) and the parent merges the
per-row results into reports. The legacy per-node loop (reload each
state into the workspace model) is kept for architectures without a
batched forward and for reference comparisons (``eval_batch=-1``); all
paths consume the observer RNG in the same order, so they agree up to
float-associativity tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.data.canary import CanarySet
from repro.data.datasets import Dataset
from repro.gossip.simulator import GossipSimulator
from repro.metrics.evaluation import (
    BatchedEvaluator,
    ModelEvaluation,
    evaluate_model,
    predict_proba,
)
from repro.metrics.records import RoundRecord
from repro.nn.batched import supports_batched_forward
from repro.nn.flat import StateLayout
from repro.nn.layers import Module
from repro.nn.serialize import set_state
from repro.privacy.mia import (
    build_attack_data,
    mia_reports_batched,
    mpe_scores,
    tpr_at_fpr,
)
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["OmniscientObserver"]


@dataclass
class _AttackPlan:
    """One node's pre-drawn observation inputs.

    Drawn node by node in the exact RNG order of the per-node loop
    (train subsample, test subsample, then the balancing draws that
    ``build_attack_data`` would make), so the batched, sharded and
    per-node paths see identical attack sets. The subsample *index*
    arrays (``None`` = whole split) are kept alongside the materialized
    arrays: the sharded observer ships only the indices, since workers
    hold the full attack arrays from ``observe_init``.
    """

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    balance_train: np.ndarray | None
    balance_test: np.ndarray | None
    train_idx: np.ndarray | None = None
    test_idx: np.ndarray | None = None


class OmniscientObserver:
    """Evaluates every node's model after each communication round.

    ``eval_batch`` bounds how many node models are scored per blocked
    kernel (0 = all at once; -1 forces the legacy per-node loop).
    """

    def __init__(
        self,
        model: Module,
        global_test: Dataset,
        canaries: CanarySet | None = None,
        canary_base: Dataset | None = None,
        max_global_test: int = 512,
        max_attack_samples: int = 256,
        seed: int = 0,
        keep_node_records: bool = False,
        eval_batch: int = 0,
        telemetry: Telemetry | None = None,
    ):
        if canaries is not None and canary_base is None:
            raise ValueError("canary evaluation needs the base training split")
        if eval_batch < -1:
            raise ValueError("eval_batch must be >= -1")
        self.model = model
        self.canaries = canaries
        self.canary_base = canary_base
        self.rng = np.random.default_rng(seed)
        self.max_attack_samples = max_attack_samples
        self.eval_batch = eval_batch
        self.records: list[RoundRecord] = []
        # Optional per-node evaluations (round -> list[ModelEvaluation]),
        # for studying vulnerability vs graph position or data share.
        self.keep_node_records = keep_node_records
        self.node_records: list[list[ModelEvaluation]] = []
        # Fixed global-test subsample: the same for every node and
        # round, so series are comparable across time.
        n = len(global_test)
        take = min(max_global_test, n)
        idx = self.rng.choice(n, size=take, replace=False)
        self.x_global = global_test.x[idx]
        self.y_global = global_test.y[idx]
        self._epsilon_fn = None
        self._batched = eval_batch >= 0 and supports_batched_forward(model)
        self._layout: StateLayout | None = None
        self._evaluator: BatchedEvaluator | None = None
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel = self.telemetry if self.telemetry.enabled else None
        if self._tel is not None:
            self._observe_ms = self.telemetry.registry.histogram(
                "repro_engine_phase_ms",
                "Per-round wall-clock of each round-loop phase",
                labels=("phase",),
            ).child(phase="observe")

    def set_epsilon_fn(self, fn) -> None:
        """Register a callable round_index -> epsilon for DP runs."""
        self._epsilon_fn = fn

    def capture_state(self) -> dict:
        """Mutable observation state for checkpoint/resume: the RNG
        stream (the attack-subsample draws consume it every round) and
        the records accumulated so far. The fixed global-test subsample
        is construction state and rebuilds deterministically."""
        return {
            "rng": self.rng.bit_generator.state,
            "records": list(self.records),
            "node_records": [list(evals) for evals in self.node_records],
        }

    def restore_state(self, state: dict) -> None:
        self.rng.bit_generator.state = state["rng"]
        self.records = list(state["records"])
        self.node_records = [list(evals) for evals in state["node_records"]]

    # -- per-round hook (signature matches GossipSimulator.run) --------

    def __call__(self, round_index: int, simulator: GossipSimulator) -> None:
        tel = self._tel
        if tel is None:
            self._observe(round_index, simulator)
            return
        with tel.tracer.span("observer.observe", round=round_index):
            start = perf_counter()
            self._observe(round_index, simulator)
            self._observe_ms.observe((perf_counter() - start) * 1000.0)

    def _observe(self, round_index: int, simulator: GossipSimulator) -> None:
        # One state-matrix read serves evaluation, canary attack and
        # spread (under the dict engine each read re-packs every node).
        params = simulator.state_matrix(self._get_layout())
        if self._batched:
            sharded = self._sharded_executor(simulator)
            if sharded is not None:
                evaluations = self._evaluate_all_sharded(simulator, sharded)
            else:
                evaluations = self._evaluate_all_batched(simulator, params)
        else:
            evaluations = [
                self._evaluate_node(simulator, node_id)
                for node_id in range(simulator.config.n_nodes)
            ]
        if self.keep_node_records:
            self.node_records.append(evaluations)
        canary_tpr = (
            self._canary_attack(simulator, params) if self.canaries else None
        )
        epsilon = self._epsilon_fn(round_index) if self._epsilon_fn else None
        self.records.append(
            RoundRecord.from_evaluations(
                round_index=round_index,
                evaluations=evaluations,
                messages_sent=simulator.messages_sent,
                canary_tpr_at_1_fpr=canary_tpr,
                epsilon=epsilon,
                model_spread=self._model_spread(simulator, params),
            )
        )

    def _model_spread(
        self, simulator: GossipSimulator, params: np.ndarray | None = None
    ) -> float:
        """Mean L2 distance of node models to the average model — the
        consensus distance of Section 4 measured on real training.
        Reads the state matrix (the arena, under the flat engine)
        instead of flattening one dict state per node."""
        if params is None:
            params = simulator.state_matrix(self._get_layout())
        center = params.mean(axis=0)
        return float(np.linalg.norm(params - center, axis=1).mean())

    # -- internals ------------------------------------------------------

    def _get_layout(self) -> StateLayout | None:
        if not self._batched:
            return None
        if self._layout is None:
            self._layout = StateLayout.from_model(self.model)
        return self._layout

    @staticmethod
    def _sharded_executor(simulator: GossipSimulator):
        """The simulator's live sharded executor, if observation can
        ride on it (flat engine, executor="sharded"); None otherwise."""
        getter = getattr(simulator, "executor", None)
        if getter is None:
            return None
        executor = getter()
        return executor if hasattr(executor, "observe") else None

    def _get_evaluator(self) -> BatchedEvaluator:
        if self._evaluator is None:
            self._evaluator = BatchedEvaluator(
                self.model,
                layout=self._get_layout(),
                eval_batch=max(self.eval_batch, 0),
            )
        return self._evaluator

    def _subsample(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if x.shape[0] <= self.max_attack_samples:
            return x, y
        idx = self.rng.choice(x.shape[0], size=self.max_attack_samples, replace=False)
        return x[idx], y[idx]

    def _subsample_idx(self, n: int) -> np.ndarray | None:
        """Index form of :meth:`_subsample` (same RNG consumption)."""
        if n <= self.max_attack_samples:
            return None
        return self.rng.choice(n, size=self.max_attack_samples, replace=False)

    def _draw_plan(self, node) -> _AttackPlan:
        """Pre-draw one node's attack inputs (RNG-order compatible)."""
        tr_idx = self._subsample_idx(node.train_x.shape[0])
        te_idx = self._subsample_idx(node.test_x.shape[0])
        if tr_idx is None:
            x_tr, y_tr = node.train_x, node.train_y
        else:
            x_tr, y_tr = node.train_x[tr_idx], node.train_y[tr_idx]
        if te_idx is None:
            x_te, y_te = node.test_x, node.test_y
        else:
            x_te, y_te = node.test_x[te_idx], node.test_y[te_idx]
        m = min(x_tr.shape[0], x_te.shape[0])
        if m == 0:
            raise ValueError("need at least one member and one non-member score")
        balance_tr = (
            self.rng.choice(x_tr.shape[0], size=m, replace=False)
            if x_tr.shape[0] > m
            else None
        )
        balance_te = (
            self.rng.choice(x_te.shape[0], size=m, replace=False)
            if x_te.shape[0] > m
            else None
        )
        return _AttackPlan(
            x_tr, y_tr, x_te, y_te, balance_tr, balance_te, tr_idx, te_idx
        )

    def _evaluate_all_batched(
        self, simulator: GossipSimulator, params: np.ndarray
    ) -> list[ModelEvaluation]:
        """Score every node's arena row in blocked ops (no reloads)."""
        evaluator = self._get_evaluator()
        plans = [self._draw_plan(node) for node in simulator.nodes]
        global_acc = evaluator.accuracy_rows(params, self.x_global, self.y_global)
        # Train and test attack sets of all nodes in ONE row-batch call
        # (each node's row appears twice via the rows indirection).
        obs = evaluator.attack_observations(
            params,
            [p.x_train for p in plans] + [p.x_test for p in plans],
            [p.y_train for p in plans] + [p.y_test for p in plans],
            rows=list(range(len(plans))) * 2,
        )
        train_obs, test_obs = obs[: len(plans)], obs[len(plans) :]
        return self._finalize_evaluations(
            plans,
            member_raw=[o[0] for o in train_obs],
            nonmember_raw=[o[0] for o in test_obs],
            global_acc=[float(a) for a in global_acc],
            train_acc=[o[1] for o in train_obs],
            test_acc=[o[1] for o in test_obs],
        )

    def _evaluate_all_sharded(
        self, simulator: GossipSimulator, executor
    ) -> list[ModelEvaluation]:
        """Score every node on its own shard worker; merge reports here.

        The plans are drawn in node order before anything is shipped,
        so the observer RNG advances exactly as on the batched path;
        workers receive only the subsample index arrays and return raw
        score vectors and accuracies for their own arena rows.
        """
        plans = [self._draw_plan(node) for node in simulator.nodes]
        if not getattr(executor, "_observe_ready", False):
            executor.observe_init(
                self.x_global,
                self.y_global,
                {
                    node_id: (
                        node.train_x,
                        node.train_y,
                        node.test_x,
                        node.test_y,
                    )
                    for node_id, node in enumerate(simulator.nodes)
                },
                eval_batch=max(self.eval_batch, 0),
            )
        raw = executor.observe(
            {
                node_id: (plan.train_idx, plan.test_idx)
                for node_id, plan in enumerate(plans)
            }
        )
        ordered = [raw[node_id] for node_id in range(len(plans))]
        return self._finalize_evaluations(
            plans,
            member_raw=[r[0] for r in ordered],
            nonmember_raw=[r[1] for r in ordered],
            global_acc=[r[4] for r in ordered],
            train_acc=[r[2] for r in ordered],
            test_acc=[r[3] for r in ordered],
        )

    def _finalize_evaluations(
        self,
        plans: list[_AttackPlan],
        member_raw: list[np.ndarray],
        nonmember_raw: list[np.ndarray],
        global_acc: list[float],
        train_acc: list[float],
        test_acc: list[float],
    ) -> list[ModelEvaluation]:
        """Balance raw scores, batch the MIA reports, build evaluations."""
        members: list[np.ndarray] = []
        nonmembers: list[np.ndarray] = []
        groups: dict[int, list[int]] = {}
        for node_id, plan in enumerate(plans):
            member_scores = member_raw[node_id]
            nonmember_scores = nonmember_raw[node_id]
            if plan.balance_train is not None:
                member_scores = member_scores[plan.balance_train]
            if plan.balance_test is not None:
                nonmember_scores = nonmember_scores[plan.balance_test]
            members.append(member_scores)
            nonmembers.append(nonmember_scores)
            groups.setdefault(member_scores.size, []).append(node_id)
        # One vectorized report sweep per balanced-size group (usually
        # one group: every node subsamples to the same cap).
        reports = [None] * len(plans)
        for node_ids in groups.values():
            for node_id, report in zip(
                node_ids,
                mia_reports_batched(
                    np.stack([members[i] for i in node_ids]),
                    np.stack([nonmembers[i] for i in node_ids]),
                ),
            ):
                reports[node_id] = report
        return [
            ModelEvaluation(
                node_id=node_id,
                global_test_accuracy=global_acc[node_id],
                local_train_accuracy=train_acc[node_id],
                local_test_accuracy=test_acc[node_id],
                mia_accuracy=report.accuracy,
                mia_tpr_at_1_fpr=report.tpr_at_1_fpr,
                mia_auc=report.auc,
            )
            for node_id, report in enumerate(reports)
        ]

    def _evaluate_node(
        self, simulator: GossipSimulator, node_id: int
    ) -> ModelEvaluation:
        node = simulator.nodes[node_id]
        set_state(self.model, node.state)
        x_tr, y_tr = self._subsample(node.train_x, node.train_y)
        x_te, y_te = self._subsample(node.test_x, node.test_y)
        return evaluate_model(
            self.model,
            node_id,
            self.x_global,
            self.y_global,
            x_tr,
            y_tr,
            x_te,
            y_te,
            rng=self.rng,
        )

    def _canary_attack(
        self, simulator: GossipSimulator, params: np.ndarray | None = None
    ) -> float:
        """Targeted entropy attack on the known canary set (RQ3).

        Member canaries are scored against the model of the node that
        trained on them; held-out canaries against the model of their
        assigned node. Scores are pooled into one ROC. On the batched
        path, all (node, canary-set) pairs are scored as one row-batch
        over the state matrix.
        """
        assert self.canaries is not None and self.canary_base is not None
        if self._batched:
            if params is None:
                params = simulator.state_matrix(self._get_layout())
            return self._canary_attack_batched(simulator, params)
        member_scores: list[np.ndarray] = []
        holdout_scores: list[np.ndarray] = []
        for node_id in range(simulator.config.n_nodes):
            members = self.canaries.members_for_node(node_id)
            holdouts = self.canaries.holdouts_for_node(node_id)
            if members.size == 0 and holdouts.size == 0:
                continue
            set_state(self.model, simulator.nodes[node_id].state)
            for indices, bucket in ((members, member_scores), (holdouts, holdout_scores)):
                if indices.size == 0:
                    continue
                probs = predict_proba(self.model, self.canary_base.x[indices])
                labels = self.canary_base.y[indices]
                bucket.append(mpe_scores(probs, labels))
        return self._pool_canary_scores(member_scores, holdout_scores)

    def _canary_attack_batched(
        self, simulator: GossipSimulator, params: np.ndarray
    ) -> float:
        rows: list[int] = []
        xs: list[np.ndarray] = []
        ys: list[np.ndarray] = []
        buckets: list[int] = []  # 0 = member, 1 = holdout
        for node_id in range(simulator.config.n_nodes):
            for bucket, indices in enumerate(
                (
                    self.canaries.members_for_node(node_id),
                    self.canaries.holdouts_for_node(node_id),
                )
            ):
                if indices.size == 0:
                    continue
                rows.append(node_id)
                xs.append(self.canary_base.x[indices])
                ys.append(self.canary_base.y[indices])
                buckets.append(bucket)
        if not rows:
            return 0.0
        observations = self._get_evaluator().attack_observations(
            params, xs, ys, rows=rows
        )
        member_scores = [o[0] for o, b in zip(observations, buckets) if b == 0]
        holdout_scores = [o[0] for o, b in zip(observations, buckets) if b == 1]
        return self._pool_canary_scores(member_scores, holdout_scores)

    @staticmethod
    def _pool_canary_scores(
        member_scores: list[np.ndarray], holdout_scores: list[np.ndarray]
    ) -> float:
        if not member_scores or not holdout_scores:
            return 0.0
        data = build_attack_data(
            np.concatenate(member_scores),
            np.concatenate(holdout_scores),
            balance=False,
        )
        return tpr_at_fpr(data, 0.01)
