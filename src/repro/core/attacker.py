"""The omniscient observer of Section 2.6.

"At regular time intervals [the attacker] recovers the current models
of all nodes and performs A_MPE on each one of them, targeting each
data sample of each node."

The observer snapshots every node model at each round boundary, runs
the MPE attack per node (members = the node's local training set,
non-members = its local test set), and aggregates Section 3.2 metrics
into a :class:`~repro.metrics.records.RoundRecord`. When a canary set
is present it additionally runs the targeted canary attack of RQ3.
"""

from __future__ import annotations

import numpy as np

from repro.data.canary import CanarySet
from repro.data.datasets import Dataset
from repro.gossip.simulator import GossipSimulator
from repro.metrics.evaluation import ModelEvaluation, evaluate_model, predict_proba
from repro.metrics.records import RoundRecord
from repro.nn.layers import Module
from repro.nn.serialize import set_state
from repro.privacy.mia import build_attack_data, mpe_scores, tpr_at_fpr

__all__ = ["OmniscientObserver"]


class OmniscientObserver:
    """Evaluates every node's model after each communication round."""

    def __init__(
        self,
        model: Module,
        global_test: Dataset,
        canaries: CanarySet | None = None,
        canary_base: Dataset | None = None,
        max_global_test: int = 512,
        max_attack_samples: int = 256,
        seed: int = 0,
        keep_node_records: bool = False,
    ):
        if canaries is not None and canary_base is None:
            raise ValueError("canary evaluation needs the base training split")
        self.model = model
        self.canaries = canaries
        self.canary_base = canary_base
        self.rng = np.random.default_rng(seed)
        self.max_attack_samples = max_attack_samples
        self.records: list[RoundRecord] = []
        # Optional per-node evaluations (round -> list[ModelEvaluation]),
        # for studying vulnerability vs graph position or data share.
        self.keep_node_records = keep_node_records
        self.node_records: list[list[ModelEvaluation]] = []
        # Fixed global-test subsample: the same for every node and
        # round, so series are comparable across time.
        n = len(global_test)
        take = min(max_global_test, n)
        idx = self.rng.choice(n, size=take, replace=False)
        self.x_global = global_test.x[idx]
        self.y_global = global_test.y[idx]
        self._epsilon_fn = None

    def set_epsilon_fn(self, fn) -> None:
        """Register a callable round_index -> epsilon for DP runs."""
        self._epsilon_fn = fn

    # -- per-round hook (signature matches GossipSimulator.run) --------

    def __call__(self, round_index: int, simulator: GossipSimulator) -> None:
        evaluations = [
            self._evaluate_node(simulator, node_id)
            for node_id in range(simulator.config.n_nodes)
        ]
        if self.keep_node_records:
            self.node_records.append(evaluations)
        canary_tpr = self._canary_attack(simulator) if self.canaries else None
        epsilon = self._epsilon_fn(round_index) if self._epsilon_fn else None
        self.records.append(
            RoundRecord.from_evaluations(
                round_index=round_index,
                evaluations=evaluations,
                messages_sent=simulator.messages_sent,
                canary_tpr_at_1_fpr=canary_tpr,
                epsilon=epsilon,
                model_spread=self._model_spread(simulator),
            )
        )

    @staticmethod
    def _model_spread(simulator: GossipSimulator) -> float:
        """Mean L2 distance of node models to the average model — the
        consensus distance of Section 4 measured on real training."""
        from repro.nn.serialize import state_to_vector

        vectors = np.stack(
            [state_to_vector(node.state) for node in simulator.nodes]
        )
        center = vectors.mean(axis=0)
        return float(np.linalg.norm(vectors - center, axis=1).mean())

    # -- internals ------------------------------------------------------

    def _subsample(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if x.shape[0] <= self.max_attack_samples:
            return x, y
        idx = self.rng.choice(x.shape[0], size=self.max_attack_samples, replace=False)
        return x[idx], y[idx]

    def _evaluate_node(
        self, simulator: GossipSimulator, node_id: int
    ) -> ModelEvaluation:
        node = simulator.nodes[node_id]
        set_state(self.model, node.state)
        x_tr, y_tr = self._subsample(node.train_x, node.train_y)
        x_te, y_te = self._subsample(node.test_x, node.test_y)
        return evaluate_model(
            self.model,
            node_id,
            self.x_global,
            self.y_global,
            x_tr,
            y_tr,
            x_te,
            y_te,
            rng=self.rng,
        )

    def _canary_attack(self, simulator: GossipSimulator) -> float:
        """Targeted entropy attack on the known canary set (RQ3).

        Member canaries are scored against the model of the node that
        trained on them; held-out canaries against the model of their
        assigned node. Scores are pooled into one ROC.
        """
        assert self.canaries is not None and self.canary_base is not None
        member_scores: list[np.ndarray] = []
        holdout_scores: list[np.ndarray] = []
        for node_id in range(simulator.config.n_nodes):
            members = self.canaries.members_for_node(node_id)
            holdouts = self.canaries.holdouts_for_node(node_id)
            if members.size == 0 and holdouts.size == 0:
                continue
            set_state(self.model, simulator.nodes[node_id].state)
            for indices, bucket in ((members, member_scores), (holdouts, holdout_scores)):
                if indices.size == 0:
                    continue
                probs = predict_proba(self.model, self.canary_base.x[indices])
                labels = self.canary_base.y[indices]
                bucket.append(mpe_scores(probs, labels))
        if not member_scores or not holdout_scores:
            return 0.0
        data = build_attack_data(
            np.concatenate(member_scores),
            np.concatenate(holdout_scores),
            balance=False,
        )
        return tpr_at_fpr(data, 0.01)
