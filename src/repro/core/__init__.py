"""High-level study API — the paper's primary contribution.

:class:`~repro.core.study.Study` wires datasets, partitioning,
topology, protocol, training and the omniscient MIA observer into one
reproducible *session* — build, stream rounds, checkpoint/resume —
returning per-round records of every Section 3.2 metric.
:func:`~repro.core.study.run_study` is the one-call wrapper;
:mod:`repro.core.config` holds the grouped configuration layer.
"""

from repro.core.attacker import OmniscientObserver
from repro.core.config import (
    DataConfig,
    ExecutionConfig,
    ModelConfig,
    PrivacyConfig,
    TopologyConfig,
    config_hash,
)
from repro.core.study import Study, StudyConfig, VulnerabilityStudy, run_study

__all__ = [
    "OmniscientObserver",
    "DataConfig",
    "ModelConfig",
    "TopologyConfig",
    "ExecutionConfig",
    "PrivacyConfig",
    "config_hash",
    "Study",
    "StudyConfig",
    "VulnerabilityStudy",
    "run_study",
]
