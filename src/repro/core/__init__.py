"""High-level study API — the paper's primary contribution.

:class:`~repro.core.study.VulnerabilityStudy` wires datasets,
partitioning, topology, protocol, training and the omniscient MIA
observer into a single reproducible run, returning per-round records of
every Section 3.2 metric.
"""

from repro.core.attacker import OmniscientObserver
from repro.core.study import StudyConfig, VulnerabilityStudy, run_study

__all__ = [
    "OmniscientObserver",
    "StudyConfig",
    "VulnerabilityStudy",
    "run_study",
]
