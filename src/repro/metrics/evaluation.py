"""Model evaluation: accuracy, probabilities, generalization error.

Implements the metrics of Section 3.2: top-1 accuracy on the global
test set (Equation 5) and the generalization error as local-train minus
local-test accuracy (Equation 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Module

__all__ = [
    "predict_proba",
    "accuracy",
    "generalization_error",
    "ModelEvaluation",
    "evaluate_model",
]


def predict_proba(
    model: Module, x: np.ndarray, batch_size: int = 256
) -> np.ndarray:
    """Softmax probabilities in eval mode, batched to bound memory."""
    was_training = model.training
    model.eval()
    try:
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            logits = model.forward(x[start : start + batch_size])
            outputs.append(F.softmax(logits, axis=1))
        return np.concatenate(outputs) if outputs else np.empty((0, 0))
    finally:
        if was_training:
            model.train()


def accuracy(
    model: Module, x: np.ndarray, y: np.ndarray, batch_size: int = 256
) -> float:
    """Top-1 accuracy (Equation 5)."""
    if x.shape[0] == 0:
        raise ValueError("cannot compute accuracy on an empty set")
    probs = predict_proba(model, x, batch_size)
    return float((probs.argmax(axis=1) == np.asarray(y)).mean())


def generalization_error(
    model: Module,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
) -> float:
    """Local train minus local test accuracy (Equation 8)."""
    return accuracy(model, x_train, y_train) - accuracy(model, x_test, y_test)


@dataclass
class ModelEvaluation:
    """All Section 3.2 metrics for one node's model at one round."""

    node_id: int
    global_test_accuracy: float
    local_train_accuracy: float
    local_test_accuracy: float
    mia_accuracy: float
    mia_tpr_at_1_fpr: float
    mia_auc: float

    @property
    def generalization_error(self) -> float:
        return self.local_train_accuracy - self.local_test_accuracy


def evaluate_model(
    model: Module,
    node_id: int,
    x_global_test: np.ndarray,
    y_global_test: np.ndarray,
    x_local_train: np.ndarray,
    y_local_train: np.ndarray,
    x_local_test: np.ndarray,
    y_local_test: np.ndarray,
    rng: np.random.Generator | None = None,
) -> ModelEvaluation:
    """Evaluate utility and MIA vulnerability of one node's model.

    The attack set is built from the node's local train (members) and
    local test (non-members) MPE scores, balanced as in the paper.
    """
    from repro.privacy.mia import build_attack_data, mia_report, mpe_scores

    probs_train = predict_proba(model, x_local_train)
    probs_test = predict_proba(model, x_local_test)
    member_scores = mpe_scores(probs_train, y_local_train)
    nonmember_scores = mpe_scores(probs_test, y_local_test)
    data = build_attack_data(member_scores, nonmember_scores, rng=rng)
    report = mia_report(data)
    probs_global = predict_proba(model, x_global_test)
    return ModelEvaluation(
        node_id=node_id,
        global_test_accuracy=float(
            (probs_global.argmax(axis=1) == y_global_test).mean()
        ),
        local_train_accuracy=float(
            (probs_train.argmax(axis=1) == y_local_train).mean()
        ),
        local_test_accuracy=float((probs_test.argmax(axis=1) == y_local_test).mean()),
        mia_accuracy=report.accuracy,
        mia_tpr_at_1_fpr=report.tpr_at_1_fpr,
        mia_auc=report.auc,
    )
