"""Model evaluation: accuracy, probabilities, generalization error.

Implements the metrics of Section 3.2: top-1 accuracy on the global
test set (Equation 5) and the generalization error as local-train minus
local-test accuracy (Equation 8).

Two evaluation paths share these formulas:

* the **per-model path** (:func:`predict_proba`, :func:`accuracy`,
  :func:`evaluate_model`) loads one model into a workspace
  :class:`~repro.nn.layers.Module` and scores it — the reference
  implementation, and the fallback for architectures without a batched
  forward;
* the **row-batch path** (:class:`BatchedEvaluator`) scores a
  ``(B, dim)`` block of flat parameter vectors (arena rows, addressed
  by a :class:`~repro.nn.flat.StateLayout`) in blocked numpy ops
  without touching a workspace model.

Dtype contract: both paths keep the math in the model's parameter
dtype — inputs are cast to it, so float32 states are scored in float32
end to end instead of being promoted to float64. Probabilities come
back in that dtype; metric scalars are Python floats.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import functional as F
from repro.nn.batched import batched_forward, supports_batched_forward
from repro.nn.flat import StateLayout
from repro.nn.layers import Module

__all__ = [
    "predict_proba",
    "accuracy",
    "generalization_error",
    "ModelEvaluation",
    "evaluate_model",
    "BatchedEvaluator",
]


def _model_dtype(model: Module) -> np.dtype:
    """The dtype evaluation math should run in (first parameter's)."""
    for param in model.parameters():
        return param.data.dtype
    return np.dtype(np.float64)


def predict_proba(
    model: Module, x: np.ndarray, batch_size: int = 256
) -> np.ndarray:
    """Softmax probabilities in eval mode, batched to bound memory.

    Inputs are cast to the model's parameter dtype so a float32 model
    is scored in float32 (the arena-dtype contract) rather than letting
    float64 eval data promote every activation.
    """
    was_training = model.training
    model.eval()
    x = np.asarray(x, dtype=_model_dtype(model))
    try:
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            logits = model.forward(x[start : start + batch_size])
            outputs.append(F.softmax(logits, axis=1))
        return np.concatenate(outputs) if outputs else np.empty((0, 0))
    finally:
        if was_training:
            model.train()


def accuracy(
    model: Module, x: np.ndarray, y: np.ndarray, batch_size: int = 256
) -> float:
    """Top-1 accuracy (Equation 5)."""
    if x.shape[0] == 0:
        raise ValueError("cannot compute accuracy on an empty set")
    probs = predict_proba(model, x, batch_size)
    return float((probs.argmax(axis=1) == np.asarray(y)).mean())


def generalization_error(
    model: Module,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
) -> float:
    """Local train minus local test accuracy (Equation 8)."""
    return accuracy(model, x_train, y_train) - accuracy(model, x_test, y_test)


@dataclass
class ModelEvaluation:
    """All Section 3.2 metrics for one node's model at one round."""

    node_id: int
    global_test_accuracy: float
    local_train_accuracy: float
    local_test_accuracy: float
    mia_accuracy: float
    mia_tpr_at_1_fpr: float
    mia_auc: float

    @property
    def generalization_error(self) -> float:
        return self.local_train_accuracy - self.local_test_accuracy


def evaluate_model(
    model: Module,
    node_id: int,
    x_global_test: np.ndarray,
    y_global_test: np.ndarray,
    x_local_train: np.ndarray,
    y_local_train: np.ndarray,
    x_local_test: np.ndarray,
    y_local_test: np.ndarray,
    rng: np.random.Generator | None = None,
) -> ModelEvaluation:
    """Evaluate utility and MIA vulnerability of one node's model.

    The attack set is built from the node's local train (members) and
    local test (non-members) MPE scores, balanced as in the paper.
    """
    from repro.privacy.mia import build_attack_data, mia_report, mpe_scores

    probs_train = predict_proba(model, x_local_train)
    probs_test = predict_proba(model, x_local_test)
    member_scores = mpe_scores(probs_train, y_local_train)
    nonmember_scores = mpe_scores(probs_test, y_local_test)
    data = build_attack_data(member_scores, nonmember_scores, rng=rng)
    report = mia_report(data)
    probs_global = predict_proba(model, x_global_test)
    return ModelEvaluation(
        node_id=node_id,
        global_test_accuracy=float(
            (probs_global.argmax(axis=1) == y_global_test).mean()
        ),
        local_train_accuracy=float(
            (probs_train.argmax(axis=1) == y_local_train).mean()
        ),
        local_test_accuracy=float((probs_test.argmax(axis=1) == y_local_test).mean()),
        mia_accuracy=report.accuracy,
        mia_tpr_at_1_fpr=report.tpr_at_1_fpr,
        mia_auc=report.auc,
    )


class BatchedEvaluator:
    """Scores many flat parameter vectors against eval data at once.

    ``params`` arguments are ``(B, dim)`` blocks whose rows follow the
    evaluator's :class:`~repro.nn.flat.StateLayout` — arena rows under
    the flat engine, packed dict states under the legacy one. Work is
    blocked along both axes to bound memory: at most ``eval_batch``
    model rows (0 = all at once) and ``batch_size`` samples per kernel.

    All math runs in the dtype of the ``params`` block (the arena
    dtype); metric outputs are float64/Python floats as everywhere
    else. Results match the per-model path within dtype tolerance —
    the ops are algebraically identical but associate differently.
    """

    def __init__(
        self,
        model: Module,
        layout: StateLayout | None = None,
        eval_batch: int = 0,
        batch_size: int = 256,
    ):
        if eval_batch < 0:
            raise ValueError("eval_batch must be >= 0 (0 = all rows at once)")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if not supports_batched_forward(model):
            raise ValueError(
                f"model {type(model).__name__} contains layers without a "
                "batched forward; use the per-model path instead"
            )
        self.model = model
        self.layout = layout if layout is not None else StateLayout.from_model(model)
        self.eval_batch = eval_batch
        self.batch_size = batch_size

    # -- internals ----------------------------------------------------

    def _row_blocks(self, n_rows: int):
        step = self.eval_batch or n_rows
        for start in range(0, n_rows, step):
            yield start, min(start + step, n_rows)

    def _shared_map(self, params: np.ndarray, x: np.ndarray, fn) -> np.ndarray:
        """Apply ``fn`` to blocked shared-input logits; stitch to (B, N, ...).

        Blocks cover at most ``eval_batch`` parameter rows and
        ``batch_size`` samples at a time; single-block results are
        returned without a concatenate copy.
        """

        def concat(blocks, axis):
            return blocks[0] if len(blocks) == 1 else np.concatenate(blocks, axis)

        row_blocks = []
        for lo, hi in self._row_blocks(params.shape[0]):
            chunks = [
                fn(
                    batched_forward(
                        self.model,
                        self.layout,
                        params[lo:hi],
                        x[start : start + self.batch_size],
                        shared=True,
                    ),
                    start,
                )
                for start in range(0, x.shape[0], self.batch_size)
            ]
            row_blocks.append(concat(chunks, 1))
        return concat(row_blocks, 0)

    def _proba_shared(self, params: np.ndarray, x: np.ndarray) -> np.ndarray:
        """(B, N, C) softmax probabilities on one shared input set."""
        return self._shared_map(
            params, x, lambda logits, _: F.softmax(logits, axis=-1)
        )

    def _grouped_proba_blocks(
        self,
        params: np.ndarray,
        xs: list[np.ndarray],
        rows: list[int] | None = None,
    ):
        """Yield ``(input_indices, probs (b, N, C))`` blocks, one input per row.

        ``rows`` maps each input set to its parameter row (defaults to
        ``i -> i``; repeats are allowed, so one call can score several
        input sets against the same model). Inputs are grouped by shape
        so same-sized attack sets (the common case: every node
        subsamples to the same cap) run as one ``(B, N, ...)`` batched
        forward; ragged leftovers form their own groups. Each group is
        further split into ``eval_batch`` row blocks.
        """
        if rows is None:
            if len(xs) != params.shape[0]:
                raise ValueError("need exactly one input set per parameter row")
            rows = list(range(len(xs)))
        elif len(rows) != len(xs):
            raise ValueError("rows must map every input set to a parameter row")
        groups: dict[tuple, list[int]] = {}
        for i, x in enumerate(xs):
            groups.setdefault(x.shape, []).append(i)
        for indices in groups.values():
            block = params[np.asarray([rows[i] for i in indices], dtype=np.intp)]
            stacked = np.stack([xs[i] for i in indices])
            n_samples = stacked.shape[1]
            for lo, hi in self._row_blocks(block.shape[0]):
                chunks = [
                    F.softmax(
                        batched_forward(
                            self.model,
                            self.layout,
                            block[lo:hi],
                            stacked[lo:hi, start : start + self.batch_size],
                            shared=False,
                        ),
                        axis=-1,
                    )
                    for start in range(0, n_samples, self.batch_size)
                ]
                yield indices[lo:hi], (
                    chunks[0]
                    if len(chunks) == 1
                    else np.concatenate(chunks, axis=1)
                )

    # -- public API ---------------------------------------------------

    def predict_proba_rows(self, params: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Softmax probabilities of every row on shared ``x``: (B, N, C)."""
        x = np.asarray(x)
        if x.shape[0] == 0:
            # Mirror predict_proba's empty-input contract.
            return np.empty((params.shape[0], 0, 0))
        return self._proba_shared(params, x)

    def accuracy_rows(
        self, params: np.ndarray, x: np.ndarray, y: np.ndarray
    ) -> np.ndarray:
        """Top-1 accuracy of every row on one shared labeled set: (B,).

        Predictions come from logit argmax directly — softmax is
        monotone per row, so this matches the probability-path argmax
        while skipping the exp/normalize work.
        """
        x = np.asarray(x)
        y = np.asarray(y)
        if x.shape[0] == 0:
            raise ValueError("cannot compute accuracy on an empty set")
        hits = self._shared_map(
            params,
            x,
            lambda logits, start: logits.argmax(axis=-1)
            == y[None, start : start + logits.shape[1]],
        )
        return hits.mean(axis=-1)

    def attack_observations(
        self,
        params: np.ndarray,
        xs: list[np.ndarray],
        ys: list[np.ndarray],
        rows: list[int] | None = None,
    ) -> list[tuple[np.ndarray, float]]:
        """Per-set ``(mpe_scores, accuracy)`` on one labeled set per entry.

        This is the privacy-attack observation primitive: each entry
        names a victim model (``rows[i]``, defaulting to ``i``) and its
        attack samples ``(xs[i], ys[i])``; repeated rows let one call
        cover several attack sets per model. The forward passes and the
        MPE scoring both run batched
        (:func:`repro.privacy.mia.mpe_scores_batched`); nothing is
        materialized per node beyond its own score vector.
        """
        from repro.privacy.mia import mpe_scores_batched

        xs = [np.asarray(x) for x in xs]
        ys = [np.asarray(y) for y in ys]
        out: list[tuple[np.ndarray, float] | None] = [None] * len(xs)
        for indices, probs in self._grouped_proba_blocks(params, xs, rows):
            labels = np.stack([ys[i] for i in indices])
            scores = mpe_scores_batched(probs, labels)
            hits = probs.argmax(axis=-1) == labels
            accs = hits.mean(axis=-1) if labels.shape[1] else np.zeros(len(indices))
            for j, i in enumerate(indices):
                out[i] = (scores[j], float(accs[j]))
        return out  # type: ignore[return-value]
