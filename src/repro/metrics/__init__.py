"""Evaluation metrics and per-round record containers (Section 3.2)."""

from repro.metrics.evaluation import (
    accuracy,
    predict_proba,
    generalization_error,
    evaluate_model,
    BatchedEvaluator,
    ModelEvaluation,
)
from repro.metrics.records import RoundRecord, RunResult

__all__ = [
    "accuracy",
    "predict_proba",
    "generalization_error",
    "evaluate_model",
    "BatchedEvaluator",
    "ModelEvaluation",
    "RoundRecord",
    "RunResult",
]
