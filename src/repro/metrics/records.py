"""Per-round records and run-level aggregation.

"At the end of each round of communication, we record measurements on
the model of each node and subsequently report the mean value
aggregated across the nodes" (Section 3.2). :class:`RoundRecord` holds
those node-mean values; :class:`RunResult` collects the whole run and
exposes the series the figures plot.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields

import numpy as np

from repro.metrics.evaluation import ModelEvaluation

__all__ = ["RoundRecord", "RunResult"]


@dataclass
class RoundRecord:
    """Node-averaged metrics at the end of one communication round."""

    round_index: int
    global_test_accuracy: float
    local_train_accuracy: float
    local_test_accuracy: float
    mia_accuracy: float
    mia_tpr_at_1_fpr: float
    mia_auc: float
    max_mia_tpr_at_1_fpr: float = 0.0
    canary_tpr_at_1_fpr: float | None = None
    messages_sent: int = 0
    epsilon: float | None = None
    # Mean L2 distance of node models to their average — the empirical
    # counterpart of Section 4's consensus distance (Eq. 11), letting
    # runs correlate mixing quality with MIA vulnerability directly.
    model_spread: float = 0.0

    @property
    def generalization_error(self) -> float:
        return self.local_train_accuracy - self.local_test_accuracy

    def to_dict(self) -> dict:
        """JSON-ready dict of all fields (``from_dict`` inverts)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "RoundRecord":
        """Build from :meth:`to_dict` output, rejecting unknown keys
        with the valid field names (schema drift surfaces as a clear
        error, not a dataclass ``TypeError``)."""
        valid = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - valid)
        if unknown:
            raise ValueError(
                f"unknown RoundRecord field(s): {', '.join(unknown)}; "
                f"valid fields are: {', '.join(sorted(valid))}"
            )
        return cls(**payload)

    def to_json(self) -> str:
        """Single-line, sorted-keys JSON — the service's SSE frame
        format. Floats survive via repr round-tripping, so the frame a
        client streams is bit-identical to a local record's output."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "RoundRecord":
        """Inverse of :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"not a serialized RoundRecord: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError("not a serialized RoundRecord")
        return cls.from_dict(payload)

    @classmethod
    def from_evaluations(
        cls,
        round_index: int,
        evaluations: list[ModelEvaluation],
        messages_sent: int = 0,
        canary_tpr_at_1_fpr: float | None = None,
        epsilon: float | None = None,
        model_spread: float = 0.0,
    ) -> "RoundRecord":
        if not evaluations:
            raise ValueError("need at least one node evaluation")
        return cls(
            round_index=round_index,
            global_test_accuracy=float(
                np.mean([e.global_test_accuracy for e in evaluations])
            ),
            local_train_accuracy=float(
                np.mean([e.local_train_accuracy for e in evaluations])
            ),
            local_test_accuracy=float(
                np.mean([e.local_test_accuracy for e in evaluations])
            ),
            mia_accuracy=float(np.mean([e.mia_accuracy for e in evaluations])),
            mia_tpr_at_1_fpr=float(
                np.mean([e.mia_tpr_at_1_fpr for e in evaluations])
            ),
            mia_auc=float(np.mean([e.mia_auc for e in evaluations])),
            max_mia_tpr_at_1_fpr=float(
                np.max([e.mia_tpr_at_1_fpr for e in evaluations])
            ),
            messages_sent=messages_sent,
            canary_tpr_at_1_fpr=canary_tpr_at_1_fpr,
            epsilon=epsilon,
            model_spread=model_spread,
        )


@dataclass
class RunResult:
    """All rounds of one experiment, plus run-level metadata."""

    config_name: str
    rounds: list[RoundRecord] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def append(self, record: RoundRecord) -> None:
        self.rounds.append(record)

    def series(self, attr: str) -> np.ndarray:
        """Extract one metric as a numpy series over rounds."""
        values = [getattr(r, attr) for r in self.rounds]
        return np.array(
            [np.nan if v is None else v for v in values], dtype=np.float64
        )

    @property
    def max_test_accuracy(self) -> float:
        return float(self.series("global_test_accuracy").max())

    @property
    def max_mia_accuracy(self) -> float:
        return float(self.series("mia_accuracy").max())

    @property
    def max_mia_tpr(self) -> float:
        return float(self.series("mia_tpr_at_1_fpr").max())

    @property
    def total_messages(self) -> int:
        return int(sum(r.messages_sent for r in self.rounds))

    def to_dict(self) -> dict:
        """JSON-ready dict: config name, metadata and per-round rows."""
        return {
            "config_name": self.config_name,
            "metadata": self.metadata,
            "rounds": [record.to_dict() for record in self.rounds],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunResult":
        if (
            not isinstance(payload, dict)
            or "rounds" not in payload
            or "config_name" not in payload
        ):
            raise ValueError("not a serialized RunResult")
        return cls(
            config_name=payload["config_name"],
            rounds=[RoundRecord.from_dict(r) for r in payload["rounds"]],
            metadata=payload.get("metadata", {}),
        )

    def to_json(self, indent: int | None = 2) -> str:
        """Lossless JSON text (sorted keys, so output is stable)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        """Inverse of :meth:`to_json` (round-trips bit-exactly: floats
        survive JSON via repr round-tripping)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"not a serialized RunResult: {exc}") from exc
        return cls.from_dict(payload)

    def summary(self) -> dict:
        """Headline numbers used by the benchmark harness tables."""
        return {
            "config": self.config_name,
            "rounds": len(self.rounds),
            "max_test_accuracy": self.max_test_accuracy,
            "max_mia_accuracy": self.max_mia_accuracy,
            "max_mia_tpr_at_1_fpr": self.max_mia_tpr,
            "final_generalization_error": (
                self.rounds[-1].generalization_error if self.rounds else float("nan")
            ),
            "total_messages": self.total_messages,
        }
