"""DP-SGD primitives: per-sample clipping and Gaussian noising.

The paper enforces node-level DP "by clipping local gradients and
adding Gaussian noise with an adequate variance to the clipped gradient
at each step" (Section 3.9), with Opacus's DP-SGD and RDP accounting.
This module provides the mechanism; :mod:`repro.privacy.accountant`
provides the accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "DPSGDConfig",
    "clip_per_sample",
    "noisy_gradient",
    "clip_block",
    "noisy_gradient_block",
]

GradList = list[np.ndarray]
Segments = list[tuple[int, int]]


@dataclass(frozen=True)
class DPSGDConfig:
    """Configuration of the Gaussian mechanism applied to gradients.

    Attributes
    ----------
    clip_norm:
        L2 bound C applied to each per-sample gradient.
    noise_multiplier:
        sigma; the noise added to the *sum* of clipped gradients has
        standard deviation ``sigma * clip_norm`` per coordinate.
    target_epsilon / target_delta:
        Desired guarantee; when ``noise_multiplier`` is None the
        accountant calibrates sigma from these.
    """

    clip_norm: float = 1.0
    noise_multiplier: float | None = 1.0
    target_epsilon: float | None = None
    target_delta: float = 1e-5

    def __post_init__(self) -> None:
        if self.clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        if self.noise_multiplier is not None and self.noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")
        if self.noise_multiplier is None and self.target_epsilon is None:
            raise ValueError("provide noise_multiplier or target_epsilon")


def _global_norm(grads: GradList) -> float:
    """L2 norm of a gradient expressed as a list of arrays."""
    return float(np.sqrt(sum(float(np.sum(g * g)) for g in grads)))


def clip_per_sample(grads: GradList, clip_norm: float) -> tuple[GradList, float]:
    """Scale one sample's gradient so its global L2 norm is <= clip_norm.

    Returns the clipped gradient and the pre-clip norm (useful for
    diagnostics and tests).
    """
    norm = _global_norm(grads)
    scale = min(1.0, clip_norm / max(norm, 1e-12))
    return [g * scale for g in grads], norm


def noisy_gradient(
    summed_clipped: GradList,
    n_samples: int,
    config: DPSGDConfig,
    rng: np.random.Generator,
) -> GradList:
    """Add Gaussian noise to a sum of clipped per-sample gradients and
    average.

    The mechanism is ``(sum_i clip(g_i) + N(0, (sigma C)^2 I)) / B``,
    matching DP-SGD/Opacus.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    sigma = config.noise_multiplier
    if sigma is None:
        raise ValueError("noise_multiplier not resolved; calibrate first")
    std = sigma * config.clip_norm
    out: GradList = []
    for g in summed_clipped:
        noise = rng.normal(0.0, std, size=g.shape) if std > 0 else 0.0
        out.append((g + noise) / n_samples)
    return out


# ---------------------------------------------------------------------------
# Block-level counterparts (vectorized DP-SGD fast path)
#
# A (R, dim) block holds one flat per-sample gradient per row, laid out
# by a StateLayout. ``segments`` lists the [offset, offset+size) column
# range of every *parameter* in ``model.named_parameters()`` order —
# the order the serial path iterates — so the sequential float64 norm
# fold and the per-row noise draws reproduce the serial arithmetic (and
# RNG consumption) bit for bit. Buffer columns are never touched.
# ---------------------------------------------------------------------------


def clip_block(
    grads: np.ndarray, segments: Segments, clip_norm: float
) -> np.ndarray:
    """Clip every row of a per-sample gradient block in place.

    The per-row global norm accumulates one float64 per-parameter sum
    at a time, in segment order — the same left fold as the Python
    ``sum()`` in :func:`clip_per_sample` — and the scale is applied in
    the block dtype, matching the serial ``g * scale``. Returns the
    pre-clip norms as a float64 ``(R,)`` array.
    """
    total = np.zeros(grads.shape[0], dtype=np.float64)
    for start, stop in segments:
        seg = grads[:, start:stop]
        total = total + np.sum(seg * seg, axis=1).astype(np.float64)
    norms = np.sqrt(total)
    scale = np.minimum(1.0, clip_norm / np.maximum(norms, 1e-12))
    scale = scale.astype(grads.dtype, copy=False)[:, None]
    for start, stop in segments:
        seg = grads[:, start:stop]
        np.multiply(seg, scale, out=seg)
    return norms


def noisy_gradient_block(
    summed_clipped: np.ndarray,
    n_samples: int,
    config: DPSGDConfig,
    rngs: list[np.random.Generator],
    segments: Segments,
) -> np.ndarray:
    """Blocked :func:`noisy_gradient`: noise + average a (B, dim) block.

    ``summed_clipped[b]`` is row b's sum of clipped per-sample
    gradients and ``rngs[b]`` its task generator; each row draws its
    noise parameter by parameter in segment order, consuming the
    generator exactly as the serial loop does. Returns a new block
    (float64 when noise was added, promoting like ``g + noise``).
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    sigma = config.noise_multiplier
    if sigma is None:
        raise ValueError("noise_multiplier not resolved; calibrate first")
    if len(rngs) != summed_clipped.shape[0]:
        raise ValueError("need one generator per block row")
    std = sigma * config.clip_norm
    if std == 0:
        # Mirror the serial dtype semantics: with no noise the average
        # stays in the gradient dtype instead of promoting to float64.
        return summed_clipped / n_samples
    out = summed_clipped.astype(np.float64, copy=True)
    for b, rng in enumerate(rngs):
        for start, stop in segments:
            out[b, start:stop] += rng.normal(0.0, std, size=stop - start)
    out /= n_samples
    return out
