"""DP-SGD primitives: per-sample clipping and Gaussian noising.

The paper enforces node-level DP "by clipping local gradients and
adding Gaussian noise with an adequate variance to the clipped gradient
at each step" (Section 3.9), with Opacus's DP-SGD and RDP accounting.
This module provides the mechanism; :mod:`repro.privacy.accountant`
provides the accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DPSGDConfig", "clip_per_sample", "noisy_gradient"]

GradList = list[np.ndarray]


@dataclass(frozen=True)
class DPSGDConfig:
    """Configuration of the Gaussian mechanism applied to gradients.

    Attributes
    ----------
    clip_norm:
        L2 bound C applied to each per-sample gradient.
    noise_multiplier:
        sigma; the noise added to the *sum* of clipped gradients has
        standard deviation ``sigma * clip_norm`` per coordinate.
    target_epsilon / target_delta:
        Desired guarantee; when ``noise_multiplier`` is None the
        accountant calibrates sigma from these.
    """

    clip_norm: float = 1.0
    noise_multiplier: float | None = 1.0
    target_epsilon: float | None = None
    target_delta: float = 1e-5

    def __post_init__(self) -> None:
        if self.clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        if self.noise_multiplier is not None and self.noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")
        if self.noise_multiplier is None and self.target_epsilon is None:
            raise ValueError("provide noise_multiplier or target_epsilon")


def _global_norm(grads: GradList) -> float:
    """L2 norm of a gradient expressed as a list of arrays."""
    return float(np.sqrt(sum(float(np.sum(g * g)) for g in grads)))


def clip_per_sample(grads: GradList, clip_norm: float) -> tuple[GradList, float]:
    """Scale one sample's gradient so its global L2 norm is <= clip_norm.

    Returns the clipped gradient and the pre-clip norm (useful for
    diagnostics and tests).
    """
    norm = _global_norm(grads)
    scale = min(1.0, clip_norm / max(norm, 1e-12))
    return [g * scale for g in grads], norm


def noisy_gradient(
    summed_clipped: GradList,
    n_samples: int,
    config: DPSGDConfig,
    rng: np.random.Generator,
) -> GradList:
    """Add Gaussian noise to a sum of clipped per-sample gradients and
    average.

    The mechanism is ``(sum_i clip(g_i) + N(0, (sigma C)^2 I)) / B``,
    matching DP-SGD/Opacus.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    sigma = config.noise_multiplier
    if sigma is None:
        raise ValueError("noise_multiplier not resolved; calibrate first")
    std = sigma * config.clip_norm
    out: GradList = []
    for g in summed_clipped:
        noise = rng.normal(0.0, std, size=g.shape) if std > 0 else 0.0
        out.append((g + noise) / n_samples)
    return out
