"""Renyi Differential Privacy accounting for DP-SGD.

Implements the RDP of the subsampled Gaussian mechanism (Mironov,
Talwar & Zhang, 2019 — the accountant behind Opacus), composition over
steps (the composition rule of RDP cited as [57] in the paper), and the
improved RDP->(eps, delta) conversion of Balle et al. (2020).
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

__all__ = [
    "DEFAULT_ALPHAS",
    "rdp_subsampled_gaussian",
    "rdp_to_epsilon",
    "RDPAccountant",
    "calibrate_sigma",
]

# Standard Opacus grid: a dense low range plus a sparse tail.
DEFAULT_ALPHAS: tuple[float, ...] = tuple(
    [1.0 + x / 10.0 for x in range(1, 100)] + list(range(11, 64)) + [128, 256, 512]
)


def _log_comb(n: int, k: int) -> float:
    return float(
        special.gammaln(n + 1) - special.gammaln(k + 1) - special.gammaln(n - k + 1)
    )


def _rdp_gaussian(alpha: float, sigma: float) -> float:
    """RDP of the (un-subsampled) Gaussian mechanism: alpha / (2 sigma^2)."""
    return alpha / (2.0 * sigma**2)


def _rdp_subsampled_int(alpha: int, q: float, sigma: float) -> float:
    """RDP at integer order via the binomial expansion (Mironov et al. eq. 3)."""
    log_terms = []
    for j in range(alpha + 1):
        log_coef = (
            _log_comb(alpha, j)
            + j * math.log(q)
            + (alpha - j) * math.log1p(-q)
        )
        log_terms.append(log_coef + (j * j - j) / (2.0 * sigma**2))
    log_sum = special.logsumexp(log_terms)
    return float(log_sum) / (alpha - 1)


def rdp_subsampled_gaussian(
    q: float, sigma: float, alphas: tuple[float, ...] = DEFAULT_ALPHAS
) -> np.ndarray:
    """Per-step RDP of the sampled Gaussian mechanism at each order.

    Fractional orders are bounded by linear interpolation between the
    neighboring integer orders (RDP is convex in alpha), which is the
    standard practical treatment.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"sampling rate must be in [0, 1], got {q}")
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    out = np.empty(len(alphas))
    for i, alpha in enumerate(alphas):
        if alpha <= 1.0:
            raise ValueError("RDP orders must be > 1")
        if q == 1.0:
            out[i] = _rdp_gaussian(alpha, sigma)
        elif q == 0.0:
            out[i] = 0.0
        elif float(alpha).is_integer():
            out[i] = _rdp_subsampled_int(int(alpha), q, sigma)
        else:
            lo, hi = int(math.floor(alpha)), int(math.ceil(alpha))
            if lo < 2:
                # Order in (1, 2): bound by the value at 2.
                out[i] = _rdp_subsampled_int(2, q, sigma)
            else:
                r_lo = _rdp_subsampled_int(lo, q, sigma)
                r_hi = _rdp_subsampled_int(hi, q, sigma)
                frac = alpha - lo
                out[i] = (1 - frac) * r_lo + frac * r_hi
    return out


def rdp_to_epsilon(
    rdp: np.ndarray, delta: float, alphas: tuple[float, ...] = DEFAULT_ALPHAS
) -> tuple[float, float]:
    """Convert accumulated RDP to (epsilon, best_alpha) for a delta.

    Uses the conversion of Balle et al. (2020):
    ``eps = rdp + log((alpha-1)/alpha) - (log delta + log alpha)/(alpha-1)``.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    rdp = np.asarray(rdp, dtype=np.float64)
    alphas_arr = np.asarray(alphas, dtype=np.float64)
    if rdp.shape != alphas_arr.shape:
        raise ValueError("rdp and alphas must align")
    eps = (
        rdp
        + np.log((alphas_arr - 1) / alphas_arr)
        - (math.log(delta) + np.log(alphas_arr)) / (alphas_arr - 1)
    )
    eps = np.maximum(eps, 0.0)
    best = int(np.argmin(eps))
    return float(eps[best]), float(alphas_arr[best])


class RDPAccountant:
    """Track cumulative RDP over heterogeneous DP-SGD steps."""

    def __init__(self, alphas: tuple[float, ...] = DEFAULT_ALPHAS):
        self.alphas = alphas
        self._rdp = np.zeros(len(alphas))
        self.history: list[tuple[float, float, int]] = []

    def step(self, q: float, sigma: float, steps: int = 1) -> None:
        """Record ``steps`` applications of the mechanism (q, sigma)."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        if steps == 0:
            return
        self._rdp = self._rdp + steps * rdp_subsampled_gaussian(q, sigma, self.alphas)
        self.history.append((q, sigma, steps))

    def get_epsilon(self, delta: float) -> float:
        eps, _ = rdp_to_epsilon(self._rdp, delta, self.alphas)
        return eps

    def get_epsilon_and_alpha(self, delta: float) -> tuple[float, float]:
        return rdp_to_epsilon(self._rdp, delta, self.alphas)


def calibrate_sigma(
    target_epsilon: float,
    delta: float,
    q: float,
    steps: int,
    sigma_min: float = 0.1,
    sigma_max: float = 200.0,
    tol: float = 1e-3,
) -> float:
    """Binary-search the noise multiplier achieving ``target_epsilon``.

    Mirrors Opacus's ``get_noise_multiplier``: epsilon decreases
    monotonically in sigma, so bisection converges.
    """
    if target_epsilon <= 0:
        raise ValueError("target_epsilon must be positive")

    def eps_for(sigma: float) -> float:
        acct = RDPAccountant()
        acct.step(q, sigma, steps)
        return acct.get_epsilon(delta)

    if eps_for(sigma_max) > target_epsilon:
        raise ValueError(
            f"even sigma={sigma_max} cannot achieve epsilon={target_epsilon}"
        )
    lo, hi = sigma_min, sigma_max
    while hi - lo > tol:
        mid = (lo + hi) / 2
        if eps_for(mid) > target_epsilon:
            lo = mid
        else:
            hi = mid
    return hi
