"""Privacy attacks and defenses.

* :mod:`repro.privacy.mia` — the Modified Prediction Entropy attack
  (Song & Mittal, USENIX Security 2021) used throughout the paper,
  plus the attack-accuracy / TPR@1%FPR metrics of Section 3.2.
* :mod:`repro.privacy.dp` — DP-SGD (per-sample clipping + Gaussian
  noise), replacing Opacus.
* :mod:`repro.privacy.accountant` — RDP accounting for the subsampled
  Gaussian mechanism and noise calibration for a target (eps, delta).
"""

from repro.privacy.mia import (
    mpe_scores,
    mpe_scores_batched,
    prediction_entropy,
    AttackData,
    build_attack_data,
    mia_accuracy,
    roc_curve,
    tpr_at_fpr,
    mia_report,
    mia_reports_batched,
    MIAResult,
)
from repro.privacy.attacks import (
    ATTACKS,
    ThresholdAttack,
    compare_attacks,
    confidence_scores,
    entropy_scores,
    loss_scores,
    run_attack,
)
from repro.privacy.dp import (
    DPSGDConfig,
    clip_block,
    clip_per_sample,
    noisy_gradient,
    noisy_gradient_block,
)
from repro.privacy.shadow import (
    ShadowAttackConfig,
    ShadowModelAttack,
    membership_features,
)
from repro.privacy.accountant import (
    RDPAccountant,
    rdp_subsampled_gaussian,
    rdp_to_epsilon,
    calibrate_sigma,
    DEFAULT_ALPHAS,
)

__all__ = [
    "mpe_scores",
    "mpe_scores_batched",
    "prediction_entropy",
    "AttackData",
    "build_attack_data",
    "mia_accuracy",
    "roc_curve",
    "tpr_at_fpr",
    "mia_report",
    "mia_reports_batched",
    "MIAResult",
    "ATTACKS",
    "ThresholdAttack",
    "compare_attacks",
    "confidence_scores",
    "entropy_scores",
    "loss_scores",
    "run_attack",
    "ShadowAttackConfig",
    "ShadowModelAttack",
    "membership_features",
    "DPSGDConfig",
    "clip_block",
    "clip_per_sample",
    "noisy_gradient",
    "noisy_gradient_block",
    "RDPAccountant",
    "rdp_subsampled_gaussian",
    "rdp_to_epsilon",
    "calibrate_sigma",
    "DEFAULT_ALPHAS",
]
