"""Shadow-model membership inference (Shokri et al., 2017).

Section 2.5 of the paper contrasts its cheap threshold attack against
"expensive approaches that train ML models to predict membership such
as neural shadow models". This module implements that baseline so the
trade-off can be measured:

1. The attacker trains ``n_shadows`` shadow models on data drawn from
   the same distribution as the victim's (here: disjoint splits of an
   attacker-owned dataset).
2. For each shadow model it computes per-sample feature vectors on its
   own member and non-member data — features are the scores of the
   threshold attacks (MPE, entropy, confidence, loss), which are known
   to carry the membership signal.
3. A small MLP (built with :mod:`repro.nn`) is trained to classify
   member vs non-member from these features.
4. The trained attack model is applied to the victim's outputs.

The attack needs no access to the victim's training data — only to its
prediction API and to same-distribution data, matching Shokri et al.'s
threat model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import Module
from repro.nn.loss import CrossEntropyLoss
from repro.nn.models import build_mlp
from repro.nn.optim import SGD
from repro.nn.serialize import get_state, set_state
from repro.privacy.attacks import (
    confidence_scores,
    entropy_scores,
    loss_scores,
)
from repro.privacy.mia import build_attack_data, mia_report, MIAResult, mpe_scores

__all__ = ["ShadowAttackConfig", "ShadowModelAttack", "membership_features"]


def membership_features(probs: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-sample feature vector for the membership classifier.

    Stacks the four threshold-attack scores; each is individually
    predictive, and the learned classifier can weigh them jointly.
    """
    return np.stack(
        [
            mpe_scores(probs, labels),
            entropy_scores(probs, labels),
            confidence_scores(probs, labels),
            loss_scores(probs, labels),
        ],
        axis=1,
    )


@dataclass(frozen=True)
class ShadowAttackConfig:
    """Attacker-side training configuration."""

    n_shadows: int = 4
    shadow_epochs: int = 30
    shadow_lr: float = 0.1
    attack_epochs: int = 60
    attack_lr: float = 0.05
    attack_hidden: tuple[int, ...] = (16,)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_shadows < 1:
            raise ValueError("need at least one shadow model")
        if self.shadow_epochs < 1 or self.attack_epochs < 1:
            raise ValueError("epoch counts must be positive")


class ShadowModelAttack:
    """Train shadow models, then a membership classifier on their
    outputs, and attack victim models."""

    def __init__(
        self,
        target_template: Module,
        x_attacker: np.ndarray,
        y_attacker: np.ndarray,
        config: ShadowAttackConfig | None = None,
    ):
        """``target_template`` is a model with the victim's
        architecture (shadow models share it, per Shokri et al.);
        ``x_attacker/y_attacker`` is attacker-owned data from the same
        distribution as the victim's."""
        self.template = target_template
        self.template_state = get_state(target_template)
        self.x = np.asarray(x_attacker, dtype=np.float64)
        self.y = np.asarray(y_attacker, dtype=np.int64)
        self.config = config or ShadowAttackConfig()
        if self.x.shape[0] < 4 * self.config.n_shadows:
            raise ValueError(
                "attacker data too small for the requested shadow count"
            )
        self.attack_model: Module | None = None
        self._feature_mean: np.ndarray | None = None
        self._feature_std: np.ndarray | None = None

    # -- shadow training -------------------------------------------------

    def _train_shadow(
        self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Fit the shared template on one shadow split (in place)."""
        set_state(self.template, self.template_state)
        self.template.train()
        loss_fn = CrossEntropyLoss()
        optimizer = SGD(
            self.template.parameters(), lr=self.config.shadow_lr, momentum=0.9
        )
        for _ in range(self.config.shadow_epochs):
            order = rng.permutation(x.shape[0])
            for start in range(0, x.shape[0], 32):
                batch = order[start : start + 32]
                optimizer.zero_grad()
                loss_fn(self.template.forward(x[batch]), y[batch])
                self.template.backward(loss_fn.backward())
                optimizer.step()

    def _shadow_features(self) -> tuple[np.ndarray, np.ndarray]:
        """Train all shadows; return (features, membership labels)."""
        rng = np.random.default_rng(self.config.seed)
        n = self.x.shape[0]
        order = rng.permutation(n)
        splits = np.array_split(order, self.config.n_shadows * 2)
        features, labels = [], []
        for s in range(self.config.n_shadows):
            member_idx = splits[2 * s]
            nonmember_idx = splits[2 * s + 1]
            self._train_shadow(self.x[member_idx], self.y[member_idx], rng)
            self.template.eval()
            for idx, is_member in ((member_idx, 1), (nonmember_idx, 0)):
                probs = self._predict(self.x[idx])
                features.append(membership_features(probs, self.y[idx]))
                labels.append(np.full(idx.shape[0], is_member, dtype=np.int64))
        return np.concatenate(features), np.concatenate(labels)

    def _predict(self, x: np.ndarray) -> np.ndarray:
        from repro.metrics.evaluation import predict_proba

        return predict_proba(self.template, x)

    # -- attack-model training ---------------------------------------------

    def fit(self) -> "ShadowModelAttack":
        """Train the membership classifier from shadow outputs."""
        features, labels = self._shadow_features()
        self._feature_mean = features.mean(axis=0)
        self._feature_std = features.std(axis=0) + 1e-9
        features = (features - self._feature_mean) / self._feature_std
        rng = np.random.default_rng(self.config.seed + 1)
        self.attack_model = build_mlp(
            features.shape[1], 2, hidden=self.config.attack_hidden, rng=rng
        )
        loss_fn = CrossEntropyLoss()
        optimizer = SGD(
            self.attack_model.parameters(), lr=self.config.attack_lr, momentum=0.9
        )
        for _ in range(self.config.attack_epochs):
            order = rng.permutation(features.shape[0])
            for start in range(0, features.shape[0], 64):
                batch = order[start : start + 64]
                optimizer.zero_grad()
                loss_fn(self.attack_model.forward(features[batch]), labels[batch])
                self.attack_model.backward(loss_fn.backward())
                optimizer.step()
        return self

    # -- inference --------------------------------------------------------

    def membership_scores(
        self, probs: np.ndarray, labels: np.ndarray
    ) -> np.ndarray:
        """Low score = member, matching the threshold-attack convention."""
        if self.attack_model is None:
            raise RuntimeError("call fit() before scoring")
        features = membership_features(probs, labels)
        features = (features - self._feature_mean) / self._feature_std
        from repro.nn import functional as F

        logits = self.attack_model.forward(features)
        member_prob = F.softmax(logits, axis=1)[:, 1]
        return 1.0 - member_prob

    def attack(
        self,
        member_probs: np.ndarray,
        member_labels: np.ndarray,
        nonmember_probs: np.ndarray,
        nonmember_labels: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> MIAResult:
        """Full evaluation against one victim's outputs."""
        data = build_attack_data(
            self.membership_scores(member_probs, member_labels),
            self.membership_scores(nonmember_probs, nonmember_labels),
            rng=rng,
        )
        return mia_report(data)
