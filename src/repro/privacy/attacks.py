"""Additional threshold-based membership inference attacks.

The paper uses the Modified Prediction Entropy attack but cites the
family of information-theoretic estimators it belongs to — prediction
entropy and prediction confidence (Salem et al. [67], Song & Mittal
[70]) — and loss-threshold attacks (Yeom et al. [82]). These variants
share the same structure: a scalar score per sample where members are
expected to score LOW, attacked with the optimal threshold. They are
provided for ablations (``benchmarks/test_ablation_attacks.py``)
comparing attack strength under identical training runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.privacy.mia import (
    AttackData,
    build_attack_data,
    mia_report,
    MIAResult,
    mpe_scores,
    prediction_entropy,
)

__all__ = [
    "entropy_scores",
    "confidence_scores",
    "loss_scores",
    "ThresholdAttack",
    "ATTACKS",
    "run_attack",
    "compare_attacks",
]

_EPS = 1e-12


def entropy_scores(probs: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Plain prediction-entropy score (label-independent).

    Members are expected to have low-entropy (confident) predictions.
    Weaker than MPE because a confidently WRONG prediction also scores
    low.
    """
    probs = np.asarray(probs, dtype=np.float64)
    if probs.ndim != 2:
        raise ValueError(f"probs must be (N, C), got {probs.shape}")
    return prediction_entropy(probs)


def confidence_scores(probs: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Negative confidence in the true label.

    Members are expected to assign high probability to their true
    label, i.e. to score low under ``-P(y)``.
    """
    probs = np.asarray(probs, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if probs.ndim != 2 or labels.shape != (probs.shape[0],):
        raise ValueError("probs must be (N, C) with matching labels")
    return -probs[np.arange(probs.shape[0]), labels]


def loss_scores(probs: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Cross-entropy loss of each sample (Yeom et al. attack).

    Members are expected to have low loss.
    """
    probs = np.asarray(probs, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if probs.ndim != 2 or labels.shape != (probs.shape[0],):
        raise ValueError("probs must be (N, C) with matching labels")
    p_true = np.clip(probs[np.arange(probs.shape[0]), labels], _EPS, 1.0)
    return -np.log(p_true)


ScoreFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class ThresholdAttack:
    """A named low-score-means-member threshold attack."""

    name: str
    score_fn: ScoreFn

    def scores(self, probs: np.ndarray, labels: np.ndarray) -> np.ndarray:
        return self.score_fn(probs, labels)

    def attack_data(
        self,
        member_probs: np.ndarray,
        member_labels: np.ndarray,
        nonmember_probs: np.ndarray,
        nonmember_labels: np.ndarray,
        rng: np.random.Generator | None = None,
    ) -> AttackData:
        return build_attack_data(
            self.scores(member_probs, member_labels),
            self.scores(nonmember_probs, nonmember_labels),
            rng=rng,
        )


ATTACKS: dict[str, ThresholdAttack] = {
    "mpe": ThresholdAttack("mpe", mpe_scores),
    "entropy": ThresholdAttack("entropy", entropy_scores),
    "confidence": ThresholdAttack("confidence", confidence_scores),
    "loss": ThresholdAttack("loss", loss_scores),
}


def run_attack(
    name: str,
    member_probs: np.ndarray,
    member_labels: np.ndarray,
    nonmember_probs: np.ndarray,
    nonmember_labels: np.ndarray,
    rng: np.random.Generator | None = None,
) -> MIAResult:
    """Run one named attack and return its full report."""
    if name not in ATTACKS:
        raise ValueError(f"unknown attack {name!r}; choose from {sorted(ATTACKS)}")
    data = ATTACKS[name].attack_data(
        member_probs, member_labels, nonmember_probs, nonmember_labels, rng=rng
    )
    return mia_report(data)


def compare_attacks(
    member_probs: np.ndarray,
    member_labels: np.ndarray,
    nonmember_probs: np.ndarray,
    nonmember_labels: np.ndarray,
    rng: np.random.Generator | None = None,
) -> dict[str, MIAResult]:
    """Evaluate every registered attack on the same victim outputs."""
    rng = rng if rng is not None else np.random.default_rng(0)
    return {
        name: run_attack(
            name,
            member_probs,
            member_labels,
            nonmember_probs,
            nonmember_labels,
            rng=rng,
        )
        for name in ATTACKS
    }
