"""Membership inference via Modified Prediction Entropy (MPE).

Implements Section 2.5 of the paper:

* the MPE measure (Equation 3),
* the thresholding attack ``A_MPE`` (Equation 4) with the
  accuracy-maximizing threshold of Section 3.2 — an upper bound on the
  worst-case threshold attacker,
* MIA accuracy (Equation 6) and TPR@1%FPR (Equation 7) computed from
  the ROC curve over MPE scores (lower score means "member").

Layout/dtype contract: scoring accepts probability matrices of shape
``(N, C)`` (one victim model, :func:`mpe_scores`) or blocks of shape
``(B, N, C)`` (one row per victim model, :func:`mpe_scores_batched`,
fed by the row-batch evaluation path over arena rows). Probabilities
may arrive in float32 or float64 — scores are always computed and
returned in float64 so threshold sweeps and ROC integration are stable
regardless of the arena dtype.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "prediction_entropy",
    "mpe_scores",
    "mpe_scores_batched",
    "AttackData",
    "build_attack_data",
    "mia_accuracy",
    "roc_curve",
    "tpr_at_fpr",
    "MIAResult",
    "mia_report",
    "mia_reports_batched",
]

_EPS = 1e-12


def prediction_entropy(probs: np.ndarray) -> np.ndarray:
    """Shannon entropy of each row of a probability matrix (N, C)."""
    p = np.clip(probs, _EPS, 1.0)
    return -(p * np.log(p)).sum(axis=1)


def mpe_scores(probs: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Modified Prediction Entropy of Equation (3), vectorized.

    ``M(P, y) = -(1 - P(y)) log P(y) - sum_{y' != y} P(y') log(1 - P(y'))``

    Low scores indicate confident, correct predictions — the signature
    of training members.
    """
    probs = np.asarray(probs, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if probs.ndim != 2:
        raise ValueError(f"probs must be (N, C), got {probs.shape}")
    n, c = probs.shape
    if labels.shape != (n,):
        raise ValueError("labels must be 1-D and match probs")
    if labels.size and (labels.min() < 0 or labels.max() >= c):
        raise ValueError("labels out of range")
    p = np.clip(probs, _EPS, 1.0 - _EPS)
    rows = np.arange(n)
    p_true = p[rows, labels]
    term_true = -(1.0 - p_true) * np.log(p_true)
    # Full sum over classes of -P(y') log(1 - P(y')), then remove the
    # true-class contribution.
    all_terms = -(p * np.log(1.0 - p))
    term_rest = all_terms.sum(axis=1) - all_terms[rows, labels]
    return term_true + term_rest


def mpe_scores_batched(probs: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Equation (3) for a block of victim models at once.

    ``probs`` is ``(B, N, C)`` — one probability matrix per attacked
    model row — and ``labels`` is ``(B, N)`` (or ``(N,)``, broadcast to
    every model). Returns ``(B, N)`` MPE scores in float64. This is the
    scoring half of the row-batch attack-observation path: one
    vectorized pass replaces B per-node :func:`mpe_scores` calls.
    """
    probs = np.asarray(probs, dtype=np.float64)
    if probs.ndim != 3:
        raise ValueError(f"probs must be (B, N, C), got {probs.shape}")
    b, n, c = probs.shape
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape == (n,):
        labels = np.broadcast_to(labels, (b, n))
    if labels.shape != (b, n):
        raise ValueError("labels must be (B, N) or (N,) and match probs")
    if labels.size and (labels.min() < 0 or labels.max() >= c):
        raise ValueError("labels out of range")
    p = np.clip(probs, _EPS, 1.0 - _EPS)
    rows_b = np.arange(b)[:, None]
    rows_n = np.arange(n)[None, :]
    p_true = p[rows_b, rows_n, labels]
    term_true = -(1.0 - p_true) * np.log(p_true)
    all_terms = -(p * np.log(1.0 - p))
    term_rest = all_terms.sum(axis=2) - all_terms[rows_b, rows_n, labels]
    return term_true + term_rest


@dataclass
class AttackData:
    """Scores and membership labels for one attacked model.

    ``scores`` are MPE values; ``membership`` is 1 for members and 0
    for non-members (the paper samples both equally from the victim's
    local train and test sets).
    """

    scores: np.ndarray
    membership: np.ndarray

    def __post_init__(self) -> None:
        self.scores = np.asarray(self.scores, dtype=np.float64)
        self.membership = np.asarray(self.membership, dtype=np.int64)
        if self.scores.shape != self.membership.shape:
            raise ValueError("scores and membership must have the same shape")
        if self.membership.size and not set(np.unique(self.membership)) <= {0, 1}:
            raise ValueError("membership labels must be 0/1")

    def __len__(self) -> int:
        return self.scores.shape[0]


def build_attack_data(
    member_scores: np.ndarray,
    nonmember_scores: np.ndarray,
    balance: bool = True,
    rng: np.random.Generator | None = None,
) -> AttackData:
    """Assemble an attack set from member and non-member MPE scores.

    When ``balance`` is set, the larger side is subsampled so the
    baseline accuracy is 0.5 — the paper's convention.
    """
    member_scores = np.asarray(member_scores, dtype=np.float64)
    nonmember_scores = np.asarray(nonmember_scores, dtype=np.float64)
    if balance:
        rng = rng if rng is not None else np.random.default_rng(0)
        m = min(member_scores.size, nonmember_scores.size)
        if m == 0:
            raise ValueError("need at least one member and one non-member score")
        if member_scores.size > m:
            member_scores = rng.choice(member_scores, size=m, replace=False)
        if nonmember_scores.size > m:
            nonmember_scores = rng.choice(nonmember_scores, size=m, replace=False)
    scores = np.concatenate([member_scores, nonmember_scores])
    membership = np.concatenate(
        [np.ones(member_scores.size, dtype=np.int64),
         np.zeros(nonmember_scores.size, dtype=np.int64)]
    )
    return AttackData(scores=scores, membership=membership)


def _valid_cuts(sorted_scores: np.ndarray) -> np.ndarray:
    """Prefix lengths realizable by a scalar <=-threshold.

    A cut after position t is only achievable when the score strictly
    increases there (ties cannot be split by any threshold). Endpoints
    0 and n are always realizable.
    """
    n = sorted_scores.shape[0]
    boundaries = np.flatnonzero(np.diff(sorted_scores) > 0) + 1
    return np.concatenate([[0], boundaries, [n]])


def _threshold_sweep(
    data: AttackData,
) -> tuple[np.ndarray, np.ndarray, int, int]:
    """Tie-aware threshold sweep shared by every single-model metric.

    Sorts the scores once and returns ``(tp, fp, n_members,
    n_nonmembers)`` evaluated at every *realizable* cut: a threshold
    after cut t classifies the t lowest scores as members, and cuts
    inside a tie run are excluded (no scalar threshold realizes them).
    """
    if len(data) == 0:
        raise ValueError("empty attack data")
    order = np.argsort(data.scores, kind="stable")
    sorted_members = data.membership[order]
    sorted_scores = data.scores[order]
    n_members = int(sorted_members.sum())
    cuts = _valid_cuts(sorted_scores)
    tp = np.concatenate([[0], np.cumsum(sorted_members)])[cuts]
    fp = cuts - tp
    return tp, fp, n_members, len(data) - n_members


def mia_accuracy(data: AttackData) -> float:
    """Attack accuracy at the accuracy-maximizing threshold (Eq. 6).

    The attack predicts "member" when the MPE score is <= threshold;
    the threshold is chosen to maximize accuracy over the attack set,
    as the paper's worst-case attacker does.
    """
    tp, fp, _, n_nonmembers = _threshold_sweep(data)
    # correct(t) = members in prefix + non-members in suffix.
    correct = tp + (n_nonmembers - fp)
    return float(correct.max() / len(data))


def roc_curve(data: AttackData) -> tuple[np.ndarray, np.ndarray]:
    """ROC curve (FPR, TPR) sweeping the MPE threshold.

    Lower scores indicate members, so the sweep classifies the ``t``
    lowest-scoring samples as members for ``t = 0..n``.
    """
    tp, fp, n_members, n_nonmembers = _threshold_sweep(data)
    if n_members == 0 or n_nonmembers == 0:
        raise ValueError("attack data needs both members and non-members")
    return fp / n_nonmembers, tp / n_members


def tpr_at_fpr(data: AttackData, max_fpr: float = 0.01) -> float:
    """TPR at the largest ROC point with FPR <= ``max_fpr`` (Eq. 7)."""
    fpr, tpr = roc_curve(data)
    ok = fpr <= max_fpr + 1e-12
    return float(tpr[ok].max()) if ok.any() else 0.0


@dataclass
class MIAResult:
    """Summary of one MIA evaluation against one model."""

    accuracy: float
    tpr_at_1_fpr: float
    auc: float
    n_members: int
    n_nonmembers: int


def mia_report(data: AttackData) -> MIAResult:
    """Compute accuracy, TPR@1%FPR and AUC in one pass.

    All three metrics derive from the same sorted sweep, so the scores
    are sorted once and shared instead of re-sorted per metric (this
    sits on the per-round observation hot path, once per node).
    """
    tp, fp, n_members, n_nonmembers = _threshold_sweep(data)
    if n_members == 0 or n_nonmembers == 0:
        raise ValueError("attack data needs both members and non-members")
    fpr, tpr = fp / n_nonmembers, tp / n_members
    auc = float(np.trapezoid(tpr, fpr))
    ok = fpr <= 0.01 + 1e-12
    correct = tp + (n_nonmembers - fp)
    return MIAResult(
        accuracy=float(correct.max() / len(data)),
        tpr_at_1_fpr=float(tpr[ok].max()) if ok.any() else 0.0,
        auc=auc,
        n_members=n_members,
        n_nonmembers=n_nonmembers,
    )


def mia_reports_batched(
    member_scores: np.ndarray, nonmember_scores: np.ndarray
) -> list[MIAResult]:
    """One :func:`mia_report` per row, computed as one vectorized sweep.

    ``member_scores`` is ``(B, m)`` and ``nonmember_scores`` ``(B, k)``
    — row ``b`` is one attacked model's already-balanced attack set.
    Exactly equivalent to B per-row reports, including tie handling:
    cuts that no scalar threshold can realize (inside a tie run) are
    masked from the accuracy/TPR maxima, and for the AUC each masked
    ROC point is forward-filled to the previous realizable one, which
    collapses it to a zero-width trapezoid — the integral over valid
    points only. This is the reporting half of the row-batch
    attack-observation path (B per-node sorts become one).
    """
    member_scores = np.asarray(member_scores, dtype=np.float64)
    nonmember_scores = np.asarray(nonmember_scores, dtype=np.float64)
    if member_scores.ndim != 2 or nonmember_scores.ndim != 2:
        raise ValueError("score blocks must be 2-D (one row per model)")
    if member_scores.shape[0] != nonmember_scores.shape[0]:
        raise ValueError("score blocks must have one row per model each")
    b, m = member_scores.shape
    k = nonmember_scores.shape[1]
    if m == 0 or k == 0:
        raise ValueError("attack data needs both members and non-members")
    n = m + k
    scores = np.concatenate([member_scores, nonmember_scores], axis=1)
    membership = np.zeros((b, n), dtype=np.int64)
    membership[:, :m] = 1
    order = np.argsort(scores, axis=1, kind="stable")
    sorted_members = np.take_along_axis(membership, order, axis=1)
    sorted_scores = np.take_along_axis(scores, order, axis=1)
    # Prefix counts at every cut t = 0..n: (B, n+1).
    tp = np.zeros((b, n + 1))
    np.cumsum(sorted_members, axis=1, out=tp[:, 1:])
    fp = np.arange(n + 1)[None, :] - tp
    valid = np.ones((b, n + 1), dtype=bool)
    valid[:, 1:n] = np.diff(sorted_scores, axis=1) > 0
    fpr, tpr = fp / k, tp / m
    correct = np.where(valid, tp + (k - fp), -1.0)
    ok = valid & (fpr <= 0.01 + 1e-12)
    tpr_at_1 = np.where(ok, tpr, -1.0).max(axis=1)
    # Forward-fill masked points (ROC curves are monotone, so a running
    # max reproduces "previous valid point"), then integrate.
    fpr_ff = np.maximum.accumulate(np.where(valid, fpr, -np.inf), axis=1)
    tpr_ff = np.maximum.accumulate(np.where(valid, tpr, -np.inf), axis=1)
    auc = np.trapezoid(tpr_ff, fpr_ff, axis=1)
    accuracy = correct.max(axis=1) / n
    return [
        MIAResult(
            accuracy=float(accuracy[i]),
            tpr_at_1_fpr=float(max(tpr_at_1[i], 0.0)),
            auc=float(auc[i]),
            n_members=m,
            n_nonmembers=k,
        )
        for i in range(b)
    ]
