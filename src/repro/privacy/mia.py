"""Membership inference via Modified Prediction Entropy (MPE).

Implements Section 2.5 of the paper:

* the MPE measure (Equation 3),
* the thresholding attack ``A_MPE`` (Equation 4) with the
  accuracy-maximizing threshold of Section 3.2 — an upper bound on the
  worst-case threshold attacker,
* MIA accuracy (Equation 6) and TPR@1%FPR (Equation 7) computed from
  the ROC curve over MPE scores (lower score means "member").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "prediction_entropy",
    "mpe_scores",
    "AttackData",
    "build_attack_data",
    "mia_accuracy",
    "roc_curve",
    "tpr_at_fpr",
    "MIAResult",
    "mia_report",
]

_EPS = 1e-12


def prediction_entropy(probs: np.ndarray) -> np.ndarray:
    """Shannon entropy of each row of a probability matrix (N, C)."""
    p = np.clip(probs, _EPS, 1.0)
    return -(p * np.log(p)).sum(axis=1)


def mpe_scores(probs: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Modified Prediction Entropy of Equation (3), vectorized.

    ``M(P, y) = -(1 - P(y)) log P(y) - sum_{y' != y} P(y') log(1 - P(y'))``

    Low scores indicate confident, correct predictions — the signature
    of training members.
    """
    probs = np.asarray(probs, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if probs.ndim != 2:
        raise ValueError(f"probs must be (N, C), got {probs.shape}")
    n, c = probs.shape
    if labels.shape != (n,):
        raise ValueError("labels must be 1-D and match probs")
    if labels.size and (labels.min() < 0 or labels.max() >= c):
        raise ValueError("labels out of range")
    p = np.clip(probs, _EPS, 1.0 - _EPS)
    rows = np.arange(n)
    p_true = p[rows, labels]
    term_true = -(1.0 - p_true) * np.log(p_true)
    # Full sum over classes of -P(y') log(1 - P(y')), then remove the
    # true-class contribution.
    all_terms = -(p * np.log(1.0 - p))
    term_rest = all_terms.sum(axis=1) - all_terms[rows, labels]
    return term_true + term_rest


@dataclass
class AttackData:
    """Scores and membership labels for one attacked model.

    ``scores`` are MPE values; ``membership`` is 1 for members and 0
    for non-members (the paper samples both equally from the victim's
    local train and test sets).
    """

    scores: np.ndarray
    membership: np.ndarray

    def __post_init__(self) -> None:
        self.scores = np.asarray(self.scores, dtype=np.float64)
        self.membership = np.asarray(self.membership, dtype=np.int64)
        if self.scores.shape != self.membership.shape:
            raise ValueError("scores and membership must have the same shape")
        if self.membership.size and not set(np.unique(self.membership)) <= {0, 1}:
            raise ValueError("membership labels must be 0/1")

    def __len__(self) -> int:
        return self.scores.shape[0]


def build_attack_data(
    member_scores: np.ndarray,
    nonmember_scores: np.ndarray,
    balance: bool = True,
    rng: np.random.Generator | None = None,
) -> AttackData:
    """Assemble an attack set from member and non-member MPE scores.

    When ``balance`` is set, the larger side is subsampled so the
    baseline accuracy is 0.5 — the paper's convention.
    """
    member_scores = np.asarray(member_scores, dtype=np.float64)
    nonmember_scores = np.asarray(nonmember_scores, dtype=np.float64)
    if balance:
        rng = rng if rng is not None else np.random.default_rng(0)
        m = min(member_scores.size, nonmember_scores.size)
        if m == 0:
            raise ValueError("need at least one member and one non-member score")
        if member_scores.size > m:
            member_scores = rng.choice(member_scores, size=m, replace=False)
        if nonmember_scores.size > m:
            nonmember_scores = rng.choice(nonmember_scores, size=m, replace=False)
    scores = np.concatenate([member_scores, nonmember_scores])
    membership = np.concatenate(
        [np.ones(member_scores.size, dtype=np.int64),
         np.zeros(nonmember_scores.size, dtype=np.int64)]
    )
    return AttackData(scores=scores, membership=membership)


def _valid_cuts(sorted_scores: np.ndarray) -> np.ndarray:
    """Prefix lengths realizable by a scalar <=-threshold.

    A cut after position t is only achievable when the score strictly
    increases there (ties cannot be split by any threshold). Endpoints
    0 and n are always realizable.
    """
    n = sorted_scores.shape[0]
    boundaries = np.flatnonzero(np.diff(sorted_scores) > 0) + 1
    return np.concatenate([[0], boundaries, [n]])


def mia_accuracy(data: AttackData) -> float:
    """Attack accuracy at the accuracy-maximizing threshold (Eq. 6).

    The attack predicts "member" when the MPE score is <= threshold;
    the threshold is chosen to maximize accuracy over the attack set,
    as the paper's worst-case attacker does.
    """
    if len(data) == 0:
        raise ValueError("empty attack data")
    order = np.argsort(data.scores, kind="stable")
    sorted_members = data.membership[order]
    sorted_scores = data.scores[order]
    n = len(data)
    n_members = int(sorted_members.sum())
    # Threshold between positions t-1 and t classifies the first t
    # points as members. correct(t) = members in prefix + non-members
    # in suffix; only tie-respecting cuts are allowed.
    members_in_prefix = np.concatenate([[0], np.cumsum(sorted_members)])
    t = _valid_cuts(sorted_scores)
    prefix_members = members_in_prefix[t]
    nonmembers_in_suffix = (n - n_members) - (t - prefix_members)
    correct = prefix_members + nonmembers_in_suffix
    return float(correct.max() / n)


def roc_curve(data: AttackData) -> tuple[np.ndarray, np.ndarray]:
    """ROC curve (FPR, TPR) sweeping the MPE threshold.

    Lower scores indicate members, so the sweep classifies the ``t``
    lowest-scoring samples as members for ``t = 0..n``.
    """
    if len(data) == 0:
        raise ValueError("empty attack data")
    order = np.argsort(data.scores, kind="stable")
    sorted_members = data.membership[order]
    sorted_scores = data.scores[order]
    n_members = int(sorted_members.sum())
    n_nonmembers = len(data) - n_members
    if n_members == 0 or n_nonmembers == 0:
        raise ValueError("attack data needs both members and non-members")
    cuts = _valid_cuts(sorted_scores)
    tp = np.concatenate([[0], np.cumsum(sorted_members)])[cuts]
    fp = cuts - tp
    return fp / n_nonmembers, tp / n_members


def tpr_at_fpr(data: AttackData, max_fpr: float = 0.01) -> float:
    """TPR at the largest ROC point with FPR <= ``max_fpr`` (Eq. 7)."""
    fpr, tpr = roc_curve(data)
    ok = fpr <= max_fpr + 1e-12
    return float(tpr[ok].max()) if ok.any() else 0.0


@dataclass
class MIAResult:
    """Summary of one MIA evaluation against one model."""

    accuracy: float
    tpr_at_1_fpr: float
    auc: float
    n_members: int
    n_nonmembers: int


def mia_report(data: AttackData) -> MIAResult:
    """Compute accuracy, TPR@1%FPR and AUC in one pass."""
    fpr, tpr = roc_curve(data)
    auc = float(np.trapezoid(tpr, fpr))
    return MIAResult(
        accuracy=mia_accuracy(data),
        tpr_at_1_fpr=tpr_at_fpr(data, 0.01),
        auc=auc,
        n_members=int(data.membership.sum()),
        n_nonmembers=int((1 - data.membership).sum()),
    )
