"""Neural-network layers with explicit forward/backward passes.

Every layer is a :class:`Module`. ``forward`` caches whatever the
corresponding ``backward`` needs; ``backward`` accumulates parameter
gradients into :class:`~repro.nn.tensor.Parameter` objects and returns
the gradient with respect to the layer input so callers can chain
layers without a tape.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.nn import functional as F
from repro.nn import init as init_mod
from repro.nn.tensor import Parameter

__all__ = [
    "Module",
    "Dense",
    "ReLU",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "BatchNorm2d",
    "Flatten",
    "Dropout",
    "Sequential",
    "Residual",
    "Identity",
    "mask_stream_rng",
    "stream_dropout_layers",
]

_U64 = (1 << 64) - 1


def mask_stream_rng(
    seed: int, node: int, session: int, step: int, layer_index: int
) -> np.random.Generator:
    """Counter-based generator for one dropout layer at one train step.

    The stream is a pure function of ``(seed, node, session, step,
    layer_index)``: the same key always yields the same masks, no matter
    which executor draws them, in which order the nodes are processed,
    or whether the run was checkpointed and resumed in between.
    """
    entropy = (
        int(seed) & _U64,
        int(node) & _U64,
        int(session) & _U64,
        int(step) & _U64,
        int(layer_index) & _U64,
    )
    return np.random.Generator(np.random.Philox(np.random.SeedSequence(entropy)))


def stream_dropout_layers(model: "Module") -> list["Dropout"]:
    """Active stream-mode dropout layers of ``model``, in modules() order.

    The position in this list is the ``layer_index`` of the layer's mask
    stream key.
    """
    return [
        m
        for m in model.modules()
        if isinstance(m, Dropout) and m.mode == "stream" and m.p > 0.0
    ]


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._buffers: dict[str, np.ndarray] = {}
        self._children: dict[str, "Module"] = {}
        self.training = True

    # -- registration -------------------------------------------------

    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        param.name = name
        self._parameters[name] = param
        return param

    def register_buffer(
        self, name: str, value: np.ndarray, dtype: np.dtype | str = np.float64
    ) -> np.ndarray:
        self._buffers[name] = np.asarray(value, dtype=dtype)
        return self._buffers[name]

    def register_child(self, name: str, child: "Module") -> "Module":
        self._children[name] = child
        return child

    # -- traversal ----------------------------------------------------

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its children."""
        return [p for _, p in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for child_name, child in self._children.items():
            yield from child.named_parameters(prefix + child_name + ".")

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for child_name, child in self._children.items():
            yield from child.named_buffers(prefix + child_name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._children.values():
            yield from child.modules()

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Replace a buffer found by its qualified ``name``.

        Floating dtypes are preserved (float32 states must round-trip
        unwidened); anything else is promoted to float64 as before.
        """
        parts = name.split(".")
        module: Module = self
        for part in parts[:-1]:
            module = module._children[part]
        if parts[-1] not in module._buffers:
            raise KeyError(f"no buffer named {name!r}")
        arr = np.asarray(value)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        module._buffers[parts[-1]] = arr

    def get_buffer(self, name: str) -> np.ndarray:
        parts = name.split(".")
        module: Module = self
        for part in parts[:-1]:
            module = module._children[part]
        return module._buffers[parts[-1]]

    # -- train / eval -------------------------------------------------

    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def astype(self, dtype: np.dtype | str) -> "Module":
        """Cast every parameter and buffer of the module tree in place."""
        for _, param in self.named_parameters():
            param.astype(dtype)
        for name, buf in self.named_buffers():
            self.set_buffer(name, buf.astype(dtype, copy=False))
        return self

    # -- interface ----------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Identity(Module):
    """Pass-through layer (the shortcut branch of residual blocks)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


class Dense(Module):
    """Fully connected layer ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(
            "weight", Parameter(init_mod.kaiming_normal((in_features, out_features), rng))
        )
        self.bias: Parameter | None = None
        if bias:
            self.bias = self.register_parameter(
                "bias", Parameter(np.zeros(out_features))
            )
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected (N, {self.in_features}), got {x.shape}"
            )
        self._x = x
        out = x @ self.weight.data
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        self.weight.accumulate(self._x.T @ grad_out)
        if self.bias is not None:
            self.bias.accumulate(grad_out.sum(axis=0))
        return grad_out @ self.weight.data.T


class ReLU(Module):
    """Rectified linear activation."""

    def __init__(self) -> None:
        super().__init__()
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return F.relu(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        return grad_out * F.relu_grad(self._x)


class Conv2d(Module):
    """2-D convolution implemented with im2col.

    Input and output are ``(N, C, H, W)``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        weight = init_mod.kaiming_normal(
            (out_channels, in_channels, kernel_size, kernel_size), rng
        )
        self.weight = self.register_parameter("weight", Parameter(weight))
        self.bias: Parameter | None = None
        if bias:
            self.bias = self.register_parameter(
                "bias", Parameter(np.zeros(out_channels))
            )
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        cols, out_h, out_w = F.im2col(x, self.kernel_size, self.stride, self.padding)
        self._cols = cols
        self._x_shape = x.shape
        n = x.shape[0]
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        out = np.einsum("ok,nkp->nop", w_mat, cols)
        if self.bias is not None:
            out = out + self.bias.data[None, :, None]
        return out.reshape(n, self.out_channels, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, _, out_h, out_w = grad_out.shape
        grad_flat = grad_out.reshape(n, self.out_channels, out_h * out_w)
        # dW = sum_n dY_n . cols_n^T
        grad_w = np.einsum("nop,nkp->ok", grad_flat, self._cols)
        self.weight.accumulate(grad_w.reshape(self.weight.data.shape))
        if self.bias is not None:
            self.bias.accumulate(grad_flat.sum(axis=(0, 2)))
        w_mat = self.weight.data.reshape(self.out_channels, -1)
        grad_cols = np.einsum("ok,nop->nkp", w_mat, grad_flat)
        return F.col2im(
            grad_cols, self._x_shape, self.kernel_size, self.stride, self.padding
        )


class MaxPool2d(Module):
    """Max pooling with ``kernel == stride`` (non-overlapping windows)."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size
        self._mask: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel_size
        if h % k or w % k:
            raise ValueError(
                f"MaxPool2d requires H and W divisible by {k}, got {x.shape}"
            )
        out_h, out_w = h // k, w // k
        windows = x.reshape(n, c, out_h, k, out_w, k)
        out = windows.max(axis=(3, 5))
        self._mask = windows == out[:, :, :, None, :, None]
        self._x_shape = x.shape
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        k = self.kernel_size
        # Ties route the gradient to every maximal element; dividing by the
        # tie count keeps the operator a true adjoint. Counts are cast to
        # the gradient dtype — an int64 divisor would promote a float32
        # backward pass to float64.
        counts = self._mask.sum(axis=(3, 5), keepdims=True).astype(
            grad_out.dtype
        )
        expanded = (
            grad_out[:, :, :, None, :, None] * self._mask / counts
        )
        return expanded.reshape(n, c, h, w)


class AvgPool2d(Module):
    """Average pooling with ``kernel == stride`` (non-overlapping)."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel_size
        if h % k or w % k:
            raise ValueError(
                f"AvgPool2d requires H and W divisible by {k}, got {x.shape}"
            )
        self._x_shape = x.shape
        return x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        k = self.kernel_size
        scale = 1.0 / (k * k)
        expanded = np.broadcast_to(
            grad_out[:, :, :, None, :, None] * scale,
            (n, c, h // k, k, w // k, k),
        )
        return expanded.reshape(n, c, h, w).copy()


class LeakyReLU(Module):
    """Leaky rectified linear unit: x if x > 0 else slope * x."""

    def __init__(self, slope: float = 0.01):
        super().__init__()
        if slope < 0:
            raise ValueError("slope must be non-negative")
        self.slope = slope
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return np.where(x > 0, x, self.slope * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        return grad_out * np.where(self._x > 0, 1.0, self.slope)


class Sigmoid(Module):
    """Logistic activation."""

    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Numerically stable piecewise evaluation, in the input's
        # floating dtype (float32 activations stay float32).
        x = np.asarray(x)
        if not np.issubdtype(x.dtype, np.floating):
            x = x.astype(np.float64)
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._out * (1.0 - self._out)


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._out**2)


class GlobalAvgPool2d(Module):
    """Average over the spatial dimensions: (N, C, H, W) -> (N, C)."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        scale = 1.0 / (h * w)
        return np.broadcast_to(
            grad_out[:, :, None, None] * scale, (n, c, h, w)
        ).copy()


class BatchNorm2d(Module):
    """Batch normalization over the channel dimension of (N, C, H, W).

    Running statistics are stored as buffers so they travel with the
    model state during gossip averaging.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = self.register_parameter("gamma", Parameter(np.ones(num_features)))
        self.beta = self.register_parameter("beta", Parameter(np.zeros(num_features)))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ValueError(
                f"BatchNorm2d expected (N, {self.num_features}, H, W), got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self._buffers["running_mean"] = (
                (1 - self.momentum) * self._buffers["running_mean"]
                + self.momentum * mean
            )
            self._buffers["running_var"] = (
                (1 - self.momentum) * self._buffers["running_var"]
                + self.momentum * var
            )
        else:
            mean = self._buffers["running_mean"]
            var = self._buffers["running_var"]
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = (x_hat, inv_std, x.shape)
        return (
            self.gamma.data[None, :, None, None] * x_hat
            + self.beta.data[None, :, None, None]
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std, shape = self._cache
        n, c, h, w = shape
        m = n * h * w
        self.gamma.accumulate((grad_out * x_hat).sum(axis=(0, 2, 3)))
        self.beta.accumulate(grad_out.sum(axis=(0, 2, 3)))
        g = grad_out * self.gamma.data[None, :, None, None]
        if not self.training:
            return g * inv_std[None, :, None, None]
        sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
        sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        return (
            inv_std[None, :, None, None]
            * (g - sum_g / m - x_hat * sum_gx / m)
        )


class Flatten(Module):
    """Reshape (N, ...) to (N, features)."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._x_shape)


class Dropout(Module):
    """Inverted dropout; identity when not training.

    Masks come from one of two sources, selected by ``mode``:

    * ``"stream"`` (default): a counter-based generator keyed by
      ``(stream_seed, node, session, step, layer_index)`` and installed
      by the trainer before every optimizer step via
      :meth:`set_mask_rng` (see :func:`mask_stream_rng`). Because the
      stream is a pure function of the key, masks are identical across
      serial, batched and sharded execution and survive
      checkpoint/resume — which is what makes ``p > 0`` batchable.
    * ``"legacy"``: the sequential generator passed at construction
      (shared across layers at build time). Kept so pre-stream
      checkpoints replay bit-identically; legacy masks depend on global
      draw order, so this mode is excluded from the batched fast path.
    """

    def __init__(
        self,
        p: float = 0.5,
        rng: np.random.Generator | None = None,
        mode: str = "stream",
        stream_seed: int = 0,
    ):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        if mode not in ("stream", "legacy"):
            raise ValueError(f"dropout mode must be 'stream' or 'legacy', got {mode!r}")
        self.p = p
        self.mode = mode
        self.stream_seed = int(stream_seed)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._stream_rng: np.random.Generator | None = None
        self._mask: np.ndarray | None = None

    def set_mask_rng(self, rng: np.random.Generator | None) -> None:
        """Install the per-step stream generator (stream mode only).

        The generator persists across every forward within the step, so
        DP-SGD's per-sample microbatch forwards consume consecutive
        draws from the same stream — exactly matching one blocked
        ``(n_samples, ...)`` draw.
        """
        self._stream_rng = rng

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        if self.mode == "stream":
            rng = self._stream_rng
            if rng is None:
                raise RuntimeError(
                    "stream-mode Dropout used without a mask stream; call "
                    "set_mask_rng() (see mask_stream_rng) before training"
                )
        else:
            rng = self.rng
        keep = 1.0 - self.p
        mask = (rng.random(x.shape) < keep) / keep
        if np.issubdtype(x.dtype, np.floating):
            # Keep float32 activations float32 (a float64 mask would
            # silently promote the rest of the forward pass).
            mask = mask.astype(x.dtype, copy=False)
        self._mask = mask
        return x * mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Sequential(Module):
    """Chain of layers executed in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(self.layers):
            self.register_child(str(i), layer)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterable[Module]:
        return iter(self.layers)


class Residual(Module):
    """Residual block: ``y = relu(body(x) + shortcut(x))``."""

    def __init__(self, body: Module, shortcut: Module | None = None):
        super().__init__()
        self.body = self.register_child("body", body)
        self.shortcut = self.register_child("shortcut", shortcut or Identity())
        self._pre_relu: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.body.forward(x) + self.shortcut.forward(x)
        self._pre_relu = out
        return F.relu(out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._pre_relu is None:
            raise RuntimeError("backward called before forward")
        grad = grad_out * F.relu_grad(self._pre_relu)
        return self.body.backward(grad) + self.shortcut.backward(grad)
