"""Model families from Table 2 of the paper.

* a light CNN (used for CIFAR-10 and FashionMNIST, ~124k parameters at
  paper scale),
* ResNet-8 (CIFAR-100, ~1.2M parameters at paper scale),
* a 4-layer fully connected MLP following Nasr et al. (Purchase100).

Widths are configurable so the same architectures run at a CPU-friendly
scale; parameter counts quoted in the paper are reached with the
default ``width`` values and paper-size inputs.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    MaxPool2d,
    Module,
    ReLU,
    Residual,
    Sequential,
)

__all__ = ["build_cnn", "build_resnet8", "build_mlp", "build_model"]


def build_cnn(
    in_channels: int = 3,
    image_size: int = 32,
    num_classes: int = 10,
    width: int = 16,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """Light CNN: two conv/pool stages followed by two dense layers.

    With ``in_channels=3, image_size=32, width=16`` this is close to the
    124k-parameter CNN of Table 2.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    if image_size % 4:
        raise ValueError("image_size must be divisible by 4 (two 2x2 pools)")
    feat = (image_size // 4) ** 2 * (2 * width)
    return Sequential(
        Conv2d(in_channels, width, kernel_size=3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Conv2d(width, 2 * width, kernel_size=3, padding=1, rng=rng),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Dense(feat, 4 * width, rng=rng),
        ReLU(),
        Dense(4 * width, num_classes, rng=rng),
    )


def _res_block(
    in_channels: int,
    out_channels: int,
    stride: int,
    rng: np.random.Generator,
) -> Residual:
    """Two 3x3 convolutions with batch norm; 1x1 shortcut on reshaping."""
    body = Sequential(
        Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng),
        BatchNorm2d(out_channels),
        ReLU(),
        Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rng),
        BatchNorm2d(out_channels),
    )
    if stride != 1 or in_channels != out_channels:
        shortcut: Module = Sequential(
            Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
            BatchNorm2d(out_channels),
        )
    else:
        shortcut = Identity()
    return Residual(body, shortcut)


def build_resnet8(
    in_channels: int = 3,
    num_classes: int = 100,
    width: int = 16,
    rng: np.random.Generator | None = None,
) -> Sequential:
    """ResNet-8: stem conv + three residual blocks + linear head.

    8 weighted layers: 1 stem + 3 blocks x 2 convs + 1 dense.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    w1, w2, w3 = width, 2 * width, 4 * width
    return Sequential(
        Conv2d(in_channels, w1, 3, stride=1, padding=1, bias=False, rng=rng),
        BatchNorm2d(w1),
        ReLU(),
        _res_block(w1, w1, stride=1, rng=rng),
        _res_block(w1, w2, stride=2, rng=rng),
        _res_block(w2, w3, stride=2, rng=rng),
        GlobalAvgPool2d(),
        Dense(w3, num_classes, rng=rng),
    )


def build_mlp(
    in_features: int = 600,
    num_classes: int = 100,
    hidden: tuple[int, ...] = (1024, 512, 256),
    dropout: float = 0.0,
    rng: np.random.Generator | None = None,
    dropout_mode: str = "stream",
    stream_seed: int = 0,
) -> Sequential:
    """4-layer fully connected network following Nasr et al. [58].

    Defaults reproduce the ~1.3M-parameter Purchase100 MLP of Table 2.
    Dropout layers default to counter-based mask streams (batchable and
    reproducible per ``(node, session, step)``); ``dropout_mode=
    "legacy"`` restores the stateful per-layer generator draws of
    earlier revisions.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    layers: list[Module] = []
    prev = in_features
    for size in hidden:
        layers.append(Dense(prev, size, rng=rng))
        layers.append(ReLU())
        if dropout > 0:
            layers.append(
                Dropout(
                    dropout,
                    rng=rng,
                    mode=dropout_mode,
                    stream_seed=stream_seed,
                )
            )
        prev = size
    layers.append(Dense(prev, num_classes, rng=rng))
    return Sequential(*layers)


def build_model(
    architecture: str,
    *,
    in_channels: int = 3,
    image_size: int = 32,
    in_features: int = 600,
    num_classes: int = 10,
    width: int = 16,
    hidden: tuple[int, ...] = (1024, 512, 256),
    seed: int = 0,
    dropout: float = 0.0,
    dropout_mode: str = "stream",
) -> Sequential:
    """Factory keyed by architecture name (``cnn``/``resnet8``/``mlp``).

    Used by experiment configs so runs are fully described by plain
    data. All nodes calling this with the same ``seed`` obtain the same
    initial model, matching the paper's shared-initialization setup.
    ``dropout`` currently applies to the MLP only (the paper's conv
    models use BatchNorm, not dropout); mask streams are seeded from
    ``seed`` so the same config always draws the same masks.
    """
    rng = np.random.default_rng(seed)
    if architecture == "cnn":
        if dropout > 0:
            raise ValueError("dropout is only supported for the mlp")
        return build_cnn(in_channels, image_size, num_classes, width, rng)
    if architecture == "resnet8":
        if dropout > 0:
            raise ValueError("dropout is only supported for the mlp")
        return build_resnet8(in_channels, num_classes, width, rng)
    if architecture == "mlp":
        return build_mlp(
            in_features,
            num_classes,
            hidden,
            dropout=dropout,
            rng=rng,
            dropout_mode=dropout_mode,
            stream_seed=seed,
        )
    raise ValueError(f"unknown architecture {architecture!r}")
