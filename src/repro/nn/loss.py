"""Loss functions returning (value, input-gradient) pairs.

Dtype contract: all losses compute in the prediction's floating dtype —
float32 logits produce float32 gradients (no silent float64 promotion),
so float32 arenas train in float32 end to end.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F

__all__ = ["CrossEntropyLoss", "MSELoss", "batched_cross_entropy_grad"]


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels.

    ``forward`` returns the mean loss; ``backward`` returns the gradient
    with respect to the logits (already divided by the batch size, so it
    composes directly with ``Module.backward``).
    """

    def __init__(self, label_smoothing: float = 0.0):
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = label_smoothing
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, C), got {logits.shape}")
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape[0] != logits.shape[0]:
            raise ValueError("batch size mismatch between logits and labels")
        num_classes = logits.shape[1]
        log_probs = F.log_softmax(logits, axis=1)
        targets = F.one_hot(labels, num_classes, dtype=log_probs.dtype)
        if self.label_smoothing > 0.0:
            eps = self.label_smoothing
            targets = (1.0 - eps) * targets + eps / num_classes
        self._probs = np.exp(log_probs)
        self._targets = targets
        return float(-(targets * log_probs).sum(axis=1).mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        n = self._probs.shape[0]
        return (self._probs - self._targets) / n

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


class MSELoss:
    """Mean squared error over arbitrary-shape predictions."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred = np.asarray(pred)
        target = np.asarray(target)
        if pred.shape != target.shape:
            raise ValueError(
                f"shape mismatch: pred {pred.shape} vs target {target.shape}"
            )
        # Promote only non-float inputs; float32 pairs stay float32.
        if not np.issubdtype(np.result_type(pred, target), np.floating):
            pred = pred.astype(np.float64)
        self._diff = pred - target
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> float:
        return self.forward(pred, target)


def batched_cross_entropy_grad(
    logits: np.ndarray,
    labels: np.ndarray,
    label_smoothing: float = 0.0,
    with_losses: bool = True,
) -> tuple[np.ndarray | None, np.ndarray]:
    """Per-row mean losses ``(B,)`` and logits gradient ``(B, N, C)``.

    The blocked counterpart of :class:`CrossEntropyLoss` for B models at
    once: row ``b`` of the result is exactly what the scalar loss would
    compute on ``(logits[b], labels[b])`` — same math, same operand
    layout per slice, in the logits dtype. The gradient is already
    divided by the per-row batch size ``N``, composing directly with
    :meth:`~repro.nn.batched.BatchedModel.backward`. ``with_losses=False``
    skips the loss values (returns ``None`` in their place) — the
    training hot path only consumes the gradient.
    """
    logits = np.asarray(logits)
    if logits.ndim != 3:
        raise ValueError(f"logits must be (B, N, C), got {logits.shape}")
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != logits.shape[:2]:
        raise ValueError(
            f"labels must be {logits.shape[:2]}, got {labels.shape}"
        )
    if not 0.0 <= label_smoothing < 1.0:
        raise ValueError("label_smoothing must be in [0, 1)")
    num_classes = logits.shape[2]
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels out of range")
    log_probs = F.log_softmax(logits, axis=-1)
    targets = np.zeros(logits.shape, dtype=log_probs.dtype)
    np.put_along_axis(targets, labels[..., None], 1.0, axis=-1)
    if label_smoothing > 0.0:
        eps = label_smoothing
        targets = (1.0 - eps) * targets + eps / num_classes
    probs = np.exp(log_probs)
    losses = None
    if with_losses:
        losses = -(targets * log_probs).sum(axis=-1).mean(axis=-1)
    grad = (probs - targets) / logits.shape[1]
    return losses, grad
