"""Loss functions returning (value, input-gradient) pairs."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F

__all__ = ["CrossEntropyLoss", "MSELoss"]


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels.

    ``forward`` returns the mean loss; ``backward`` returns the gradient
    with respect to the logits (already divided by the batch size, so it
    composes directly with ``Module.backward``).
    """

    def __init__(self, label_smoothing: float = 0.0):
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = label_smoothing
        self._probs: np.ndarray | None = None
        self._targets: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, C), got {logits.shape}")
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape[0] != logits.shape[0]:
            raise ValueError("batch size mismatch between logits and labels")
        num_classes = logits.shape[1]
        log_probs = F.log_softmax(logits, axis=1)
        targets = F.one_hot(labels, num_classes)
        if self.label_smoothing > 0.0:
            eps = self.label_smoothing
            targets = (1.0 - eps) * targets + eps / num_classes
        self._probs = np.exp(log_probs)
        self._targets = targets
        return float(-(targets * log_probs).sum(axis=1).mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._targets is None:
            raise RuntimeError("backward called before forward")
        n = self._probs.shape[0]
        return (self._probs - self._targets) / n

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


class MSELoss:
    """Mean squared error over arbitrary-shape predictions."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, pred: np.ndarray, target: np.ndarray) -> float:
        pred = np.asarray(pred, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if pred.shape != target.shape:
            raise ValueError(
                f"shape mismatch: pred {pred.shape} vs target {target.shape}"
            )
        self._diff = pred - target
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> float:
        return self.forward(pred, target)
