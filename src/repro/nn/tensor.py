"""Parameter container with gradient bookkeeping.

The framework uses explicit backward passes rather than a tape-based
autograd: every layer computes its own input gradient and accumulates
parameter gradients into :class:`Parameter` objects.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A trainable array together with its accumulated gradient.

    Parameters
    ----------
    data:
        Initial value. Stored as ``float64`` by default for numerically
        stable gradient checks; pass ``dtype`` to keep a narrower type
        (the flat-state arena uses ``float32``-capable parameters).
    name:
        Human-readable identifier used in state dictionaries.
    requires_grad:
        When ``False`` the optimizer skips this parameter (used for
        frozen layers and batch-norm running statistics).
    dtype:
        Storage dtype for the value and its gradient.
    """

    __slots__ = ("data", "grad", "name", "requires_grad")

    def __init__(
        self,
        data: np.ndarray,
        name: str = "",
        requires_grad: bool = True,
        dtype: np.dtype | str = np.float64,
    ):
        self.data = np.asarray(data, dtype=dtype)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.requires_grad = requires_grad

    def astype(self, dtype: np.dtype | str) -> "Parameter":
        """Cast value and gradient in place; returns self for chaining."""
        self.data = self.data.astype(dtype, copy=False)
        self.grad = self.grad.astype(dtype, copy=False)
        return self

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero in place."""
        self.grad[...] = 0.0

    def accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` to the stored gradient (shape-checked)."""
        grad = np.asarray(grad)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"{self.name!r} shape {self.data.shape}"
            )
        self.grad += grad

    def copy(self) -> "Parameter":
        """Deep copy (data and gradient)."""
        out = Parameter(self.data.copy(), name=self.name, requires_grad=self.requires_grad)
        out.grad = self.grad.copy()
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"
