"""Flat-buffer state layout: map a model State onto one contiguous vector.

The gossip hot path treats models as elements of R^d (Section 4 of the
paper). The dict-``State`` representation walks a Python dict per node,
per message, per average; a :class:`StateLayout` computes the name ->
(offset, shape, dtype) mapping *once* per model so every node's state
can live as one row of a contiguous ``(n_nodes, dim)`` arena and gossip
aggregation becomes a single vectorized numpy op over rows (see
DESIGN.md, "Flat-state execution engine").

Entries are laid out in sorted-name order, matching
:func:`repro.nn.serialize.state_to_vector`, so flat vectors produced by
either path are interchangeable.

:class:`SharedArena` is the cross-process backing for such buffers: one
named POSIX shared-memory segment holding an ``(n_rows, dim)`` array
that a creator process owns and shard workers attach to by name, so
rows move between processes without being pickled (see DESIGN.md,
"Sharded execution").
"""

from __future__ import annotations

import weakref
from multiprocessing import shared_memory
from typing import NamedTuple

import numpy as np

from repro.nn.serialize import State, get_state
from repro.nn.layers import Module

__all__ = ["StateSlot", "StateLayout", "SharedArena"]


class StateSlot(NamedTuple):
    """Placement of one state entry inside the flat vector."""

    name: str
    offset: int
    size: int
    shape: tuple[int, ...]
    dtype: np.dtype


class StateLayout:
    """Immutable name -> slice mapping for one model architecture.

    Layout contract: slots are laid out in sorted-name order (the
    ``state_to_vector`` order), so flat vectors from either path are
    interchangeable. Dtype contract: a layout records each entry's
    template dtype but does not impose it — :meth:`pack` casts into the
    target vector's dtype and :meth:`unpack` views carry the vector's
    dtype (the arena dtype), while :meth:`unpack_copy` restores the
    template dtypes.

    Instances are plain data (picklable) so process-pool workers can
    rebuild views on their side of the fence.
    """

    def __init__(self, slots: list[StateSlot]):
        self.slots = list(slots)
        self.dim = sum(slot.size for slot in self.slots)
        self._by_name = {slot.name: slot for slot in self.slots}

    # -- construction -------------------------------------------------

    @classmethod
    def from_state(cls, template: State) -> "StateLayout":
        """Compute the layout of a state dict (sorted-name order)."""
        slots: list[StateSlot] = []
        offset = 0
        for name in sorted(template):
            arr = np.asarray(template[name])
            slots.append(
                StateSlot(name, offset, int(arr.size), arr.shape, arr.dtype)
            )
            offset += int(arr.size)
        return cls(slots)

    @classmethod
    def from_model(cls, model: Module) -> "StateLayout":
        """Compute the layout of a model's parameters and buffers."""
        return cls.from_state(get_state(model))

    # -- introspection ------------------------------------------------

    @property
    def names(self) -> list[str]:
        return [slot.name for slot in self.slots]

    def slot(self, name: str) -> StateSlot:
        return self._by_name[name]

    def __len__(self) -> int:
        return len(self.slots)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StateLayout):
            return NotImplemented
        return self.slots == other.slots

    def compatible_with(self, other: "StateLayout") -> bool:
        """True when both layouts address vectors identically.

        Compares names, offsets, sizes and shapes but not template
        dtypes — a float32 workspace and a float64 template describe
        the same slot addressing, and vectors are stored in the
        arena/target dtype anyway.
        """
        return [slot[:4] for slot in self.slots] == [
            slot[:4] for slot in other.slots
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StateLayout(entries={len(self.slots)}, dim={self.dim})"

    # -- pack / unpack ------------------------------------------------

    def check_state(self, state: State) -> None:
        """Raise if ``state`` does not match this layout."""
        if set(state) != set(self._by_name):
            missing = sorted(set(self._by_name) - set(state))
            extra = sorted(set(state) - set(self._by_name))
            raise KeyError(
                f"state does not match layout (missing={missing}, extra={extra})"
            )
        for slot in self.slots:
            if np.asarray(state[slot.name]).shape != slot.shape:
                raise ValueError(
                    f"shape mismatch for {slot.name!r}: "
                    f"{np.asarray(state[slot.name]).shape} vs {slot.shape}"
                )

    def pack(
        self,
        state: State,
        out: np.ndarray | None = None,
        dtype: np.dtype | str | None = None,
    ) -> np.ndarray:
        """Flatten ``state`` into one vector (allocating unless ``out``).

        ``dtype`` selects the vector dtype for a fresh allocation; when
        writing into ``out`` the values are cast to ``out.dtype``.
        """
        self.check_state(state)
        if out is None:
            out = np.empty(self.dim, dtype=dtype or np.float64)
        elif out.shape != (self.dim,):
            raise ValueError(f"out has shape {out.shape}, expected ({self.dim},)")
        for slot in self.slots:
            out[slot.offset : slot.offset + slot.size] = np.asarray(
                state[slot.name]
            ).ravel()
        return out

    def unpack(self, vector: np.ndarray) -> State:
        """Dict of *views* into ``vector`` — the State compatibility layer.

        Mutating a value in the returned dict mutates the vector (and
        vice versa); call sites that need ownership must copy, exactly
        as with :meth:`GossipNode.snapshot`. Views carry the vector's
        dtype, not the template's.
        """
        vector = np.ascontiguousarray(vector)
        if vector.shape != (self.dim,):
            raise ValueError(
                f"vector has shape {vector.shape}, expected ({self.dim},)"
            )
        return {
            slot.name: vector[slot.offset : slot.offset + slot.size].reshape(
                slot.shape
            )
            for slot in self.slots
        }

    def unpack_copy(self, vector: np.ndarray) -> State:
        """Like :meth:`unpack` but with owned arrays in the slot dtypes."""
        views = self.unpack(vector)
        return {
            slot.name: views[slot.name].astype(slot.dtype, copy=True)
            for slot in self.slots
        }

    def empty(self, dtype: np.dtype | str = np.float64) -> np.ndarray:
        """Zero-filled flat vector of this layout's dimension."""
        return np.zeros(self.dim, dtype=dtype)


def _release_segment(shm: shared_memory.SharedMemory, unlink: bool) -> None:
    """Detach (and, for the owner, unlink) one shared-memory segment.

    Used both for explicit :meth:`SharedArena.close` calls and as the
    ``weakref.finalize`` fallback that fires at garbage collection or
    interpreter exit, so a segment whose owner forgot to close — or
    crashed out of a run mid-exception — is still unlinked instead of
    leaking in ``/dev/shm`` (and instead of tripping the stdlib
    resource-tracker "leaked shared_memory objects" warning).
    """
    try:
        shm.close()
    except BufferError:  # pragma: no cover - live exports keep the map
        pass
    if unlink:
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class SharedArena:
    """An ``(n_rows, dim)`` float array in a named shared-memory segment.

    Lifecycle contract: the *creator* (``SharedArena(n_rows, dim)``)
    owns the segment — its :meth:`close` both detaches and unlinks.
    Workers :meth:`attach` by name and their :meth:`close` only
    detaches. Both directions are idempotent, and a
    ``weakref.finalize`` guard releases the segment at garbage
    collection or interpreter exit if :meth:`close` was never called,
    so an exception mid-run cannot leak ``/dev/shm`` segments.

    ``data`` is an ndarray view over the segment: writes made by any
    attached process are immediately visible to every other one —
    the zero-copy channel of the sharded executor.
    """

    def __init__(
        self,
        n_rows: int,
        dim: int,
        dtype: np.dtype | str = np.float64,
        *,
        name: str | None = None,
        create: bool = True,
    ):
        if n_rows <= 0 or dim <= 0:
            raise ValueError("n_rows and dim must be positive")
        self.shape = (int(n_rows), int(dim))
        self.dtype = np.dtype(dtype)
        nbytes = self.shape[0] * self.shape[1] * self.dtype.itemsize
        if create:
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=nbytes
            )
        else:
            if name is None:
                raise ValueError("attaching needs the segment name")
            # Note: Python < 3.13 registers even attachments with the
            # resource tracker. Shard workers share the owner's tracker
            # process (fork/spawn both inherit it), where registrations
            # of one name dedupe and the owner's unlink unregisters it
            # exactly once — so no per-attachment bookkeeping is needed.
            self._shm = shared_memory.SharedMemory(name=name, create=False)
            if self._shm.size < nbytes:
                size = self._shm.size
                self._shm.close()
                raise ValueError(
                    f"segment {name!r} holds {size} bytes, "
                    f"need {nbytes} for shape {self.shape} {self.dtype}"
                )
        self.owner = bool(create)
        self.data = np.ndarray(self.shape, dtype=self.dtype, buffer=self._shm.buf)
        self._finalizer = weakref.finalize(
            self, _release_segment, self._shm, self.owner
        )

    @classmethod
    def attach(
        cls,
        name: str,
        n_rows: int,
        dim: int,
        dtype: np.dtype | str = np.float64,
    ) -> "SharedArena":
        """Attach to an existing segment (worker side; never unlinks)."""
        return cls(n_rows, dim, dtype, name=name, create=False)

    @property
    def name(self) -> str:
        """Segment name other processes attach with."""
        return self._shm.name

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def close(self) -> None:
        """Release the segment (detach; owner also unlinks). Idempotent.

        ``data`` must no longer be used afterwards — callers that need
        the values past the segment's life copy them out first (see
        ``StateArena.release``).
        """
        if not self._finalizer.alive:
            return
        self._finalizer.detach()
        self.data = None  # drop our export so the mmap can unmap
        _release_segment(self._shm, self.owner)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "owner" if self.owner else "attached"
        return (
            f"SharedArena(name={self.name!r}, shape={self.shape}, "
            f"dtype={self.dtype}, {role})"
        )
