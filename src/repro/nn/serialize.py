"""Model-state flattening and averaging.

Gossip aggregation (Algorithms 1 and 2 of the paper) averages whole
models; these helpers turn a model into an ordered state dictionary or
a flat vector and back, so protocols can treat models as elements of
R^d exactly as Section 4's analysis does.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Module

__all__ = [
    "get_state",
    "set_state",
    "state_to_vector",
    "vector_to_state",
    "average_states",
    "normalize_weights",
    "num_parameters",
]

State = dict[str, np.ndarray]


def get_state(model: Module) -> State:
    """Snapshot parameters and buffers into a name -> array copy."""
    state: State = {}
    for name, param in model.named_parameters():
        state[name] = param.data.copy()
    for name, buf in model.named_buffers():
        state["buffer:" + name] = buf.copy()
    return state


def set_state(model: Module, state: State) -> None:
    """Load a state dictionary produced by :func:`get_state`."""
    param_names = set()
    for name, param in model.named_parameters():
        if name not in state:
            raise KeyError(f"state missing parameter {name!r}")
        if state[name].shape != param.data.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: "
                f"{state[name].shape} vs {param.data.shape}"
            )
        param.data = state[name].copy()
        # Keep the gradient buffer in the parameter's dtype: loading a
        # float32 state must not leave a float64 accumulator behind
        # (gradient math would silently promote).
        if param.grad.dtype != param.data.dtype:
            param.grad = np.zeros_like(param.data)
        param_names.add(name)
    for name, _ in model.named_buffers():
        key = "buffer:" + name
        if key not in state:
            raise KeyError(f"state missing buffer {name!r}")
        model.set_buffer(name, state[key].copy())
        param_names.add(key)
    extra = set(state) - param_names
    if extra:
        raise KeyError(f"state has unknown entries: {sorted(extra)}")


def state_to_vector(state: State) -> np.ndarray:
    """Concatenate all state entries (sorted by name) into one vector."""
    return np.concatenate([state[name].ravel() for name in sorted(state)])


def vector_to_state(vector: np.ndarray, template: State) -> State:
    """Inverse of :func:`state_to_vector` given a shape template.

    Each entry is cast back to the template entry's dtype, so float32
    states round-trip without being silently promoted to float64.
    """
    vector = np.asarray(vector)
    expected = sum(arr.size for arr in template.values())
    if vector.size != expected:
        raise ValueError(f"vector has {vector.size} entries, expected {expected}")
    out: State = {}
    offset = 0
    for name in sorted(template):
        arr = template[name]
        out[name] = (
            vector[offset : offset + arr.size]
            .reshape(arr.shape)
            .astype(arr.dtype, copy=True)
        )
        offset += arr.size
    return out


def normalize_weights(weights: list[float]) -> list[float]:
    """Validate and normalize averaging weights to sum to one.

    All-zero or sign-cancelling weights would silently divide the
    average into NaN/inf; refuse them instead. Shared by the dict
    path here and the flat arena so the rule cannot diverge.
    """
    total = float(sum(weights))
    # Exact-zero comparison on purpose: sign-cancelling totals ([1, -1],
    # [0.3, -0.3], ...) cancel to exactly 0.0 in IEEE arithmetic, while
    # legitimately tiny totals (e.g. [5e-9, 5e-9]) stay normalizable.
    if not np.isfinite(total) or total == 0.0:
        raise ValueError(
            f"weights must sum to a finite nonzero total, got {total!r}"
        )
    if np.isclose(total, 1.0):
        return list(weights)
    return [w / total for w in weights]


def average_states(states: list[State], weights: list[float] | None = None) -> State:
    """Weighted average of state dictionaries (uniform by default)."""
    if not states:
        raise ValueError("cannot average zero states")
    if weights is None:
        weights = [1.0 / len(states)] * len(states)
    if len(weights) != len(states):
        raise ValueError("weights and states must have equal length")
    weights = normalize_weights(weights)
    keys = set(states[0])
    for state in states[1:]:
        if set(state) != keys:
            raise KeyError("states have mismatched keys")
    out: State = {}
    # Sorted so the output State has a deterministic key order (set
    # iteration is hash-ordered, and downstream packing walks the dict).
    for name in sorted(keys):
        acc = np.zeros_like(states[0][name])
        for weight, state in zip(weights, states):
            acc += weight * state[name]
        out[name] = acc
    return out


def num_parameters(model: Module) -> int:
    """Total number of trainable scalars in the model."""
    return sum(p.size for p in model.parameters())
