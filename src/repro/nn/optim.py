"""Optimizers and learning-rate schedules.

Only SGD variants are needed: Table 2 of the paper trains every model
with SGD, momentum in {0, 0.9} and weight decay 5e-4.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Parameter

__all__ = ["SGD", "ConstantLR", "StepLR"]


class SGD:
    """Stochastic gradient descent with momentum and weight decay.

    The update matches PyTorch's convention: weight decay is added to
    the gradient, momentum buffers accumulate the decayed gradient, and
    (optionally) Nesterov lookahead is applied.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: dict[int, np.ndarray] = {}

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        for i, param in enumerate(self.params):
            if not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                buf = self._velocity.get(i)
                if buf is None:
                    buf = grad.copy()
                else:
                    buf = self.momentum * buf + grad
                self._velocity[i] = buf
                grad = grad + self.momentum * buf if self.nesterov else buf
            param.data -= self.lr * grad

    def reset_state(self) -> None:
        """Drop momentum buffers (used after a model is overwritten by
        gossip aggregation, where stale velocity is meaningless)."""
        self._velocity.clear()


class ConstantLR:
    """Schedule that keeps the learning rate fixed."""

    def __init__(self, optimizer: SGD):
        self.optimizer = optimizer

    def step(self) -> None:
        pass


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` calls."""

    def __init__(self, optimizer: SGD, step_size: int, gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._count = 0

    def step(self) -> None:
        self._count += 1
        if self._count % self.step_size == 0:
            self.optimizer.lr *= self.gamma
