"""Optimizers and learning-rate schedules.

Only SGD variants are needed: Table 2 of the paper trains every model
with SGD, momentum in {0, 0.9} and weight decay 5e-4.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Parameter

__all__ = ["SGD", "BatchedSGD", "ConstantLR", "StepLR"]


class SGD:
    """Stochastic gradient descent with momentum and weight decay.

    The update matches PyTorch's convention: weight decay is added to
    the gradient, momentum buffers accumulate the decayed gradient, and
    (optionally) Nesterov lookahead is applied.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: dict[int, np.ndarray] = {}

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        for i, param in enumerate(self.params):
            if not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                buf = self._velocity.get(i)
                if buf is None:
                    buf = grad.copy()
                else:
                    buf = self.momentum * buf + grad
                self._velocity[i] = buf
                grad = grad + self.momentum * buf if self.nesterov else buf
            param.data -= self.lr * grad

    def reset_state(self) -> None:
        """Drop momentum buffers (used after a model is overwritten by
        gossip aggregation, where stale velocity is meaningless)."""
        self._velocity.clear()


class BatchedSGD:
    """SGD over a ``(B, dim)`` parameter block, one model row each.

    Row ``r`` steps with its own learning rate ``lr[r]`` (the batched
    trainer passes ``learning_rate * lr_decay ** session`` per row);
    momentum and weight decay are shared hyperparameters. The update
    matches :class:`SGD` element for element — weight decay is added to
    the gradient and momentum buffers accumulate the decayed gradient —
    and runs in the block dtype (learning rates are cast to it, exactly
    as numpy casts :class:`SGD`'s scalar ``lr`` into float32 math).

    ``param_runs`` lists the ``[start, stop)`` column ranges holding
    trainable parameters (see
    :func:`~repro.nn.batched.parameter_column_runs`); other columns —
    e.g. BatchNorm running statistics — are never touched.
    """

    def __init__(
        self,
        param_runs: list[tuple[int, int]],
        lr: np.ndarray,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        lr = np.atleast_1d(np.asarray(lr, dtype=np.float64))
        if lr.ndim != 1 or lr.size == 0:
            raise ValueError("lr must be a (B,) vector of learning rates")
        if np.any(lr <= 0):
            raise ValueError(f"learning rates must be positive, got {lr}")
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        self.param_runs = [(int(a), int(b)) for a, b in param_runs]
        self.lr = lr[:, None]  # broadcasts over the column axis
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}
        self._scratch: dict[int, np.ndarray] = {}

    def step(self, params: np.ndarray, grads: np.ndarray) -> None:
        """Apply one update to ``params`` in place given ``grads``.

        The hot loop is allocation-free in steady state: temporaries
        live in per-run scratch buffers, and every in-place expression
        computes the same values in the same order as the per-parameter
        :class:`SGD` step (``grads`` itself is never written).
        """
        if params.shape != grads.shape or params.shape[0] != self.lr.shape[0]:
            raise ValueError(
                f"params {params.shape} / grads {grads.shape} must be "
                f"({self.lr.shape[0]}, dim) blocks"
            )
        lr = self.lr.astype(params.dtype, copy=False)
        for i, (start, stop) in enumerate(self.param_runs):
            grad = grads[:, start:stop]
            block = params[:, start:stop]
            scratch = self._scratch.get(i)
            if scratch is None or scratch.dtype != block.dtype:
                scratch = np.empty_like(block)
                self._scratch[i] = scratch
            if self.weight_decay:
                # grad + wd * param, computed as wd * param + grad:
                # IEEE addition commutes, so the values are identical.
                np.multiply(block, self.weight_decay, out=scratch)
                scratch += grad
                grad = scratch
            if self.momentum:
                buf = self._velocity.get(i)
                if buf is None:
                    buf = grad.copy()
                    self._velocity[i] = buf
                else:
                    buf *= self.momentum
                    buf += grad
                grad = buf
            np.multiply(grad, lr, out=scratch)
            block -= scratch

    def reset_state(self) -> None:
        """Drop momentum buffers (fresh velocity per local session)."""
        self._velocity.clear()


class ConstantLR:
    """Schedule that keeps the learning rate fixed."""

    def __init__(self, optimizer: SGD):
        self.optimizer = optimizer

    def step(self) -> None:
        pass


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` calls."""

    def __init__(self, optimizer: SGD, step_size: int, gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._count = 0

    def step(self) -> None:
        self._count += 1
        if self._count % self.step_size == 0:
            self.optimizer.lr *= self.gamma
