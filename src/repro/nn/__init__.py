"""Numpy deep-learning substrate.

This subpackage replaces PyTorch (used by the paper) with a from-scratch
layer framework: explicit forward/backward passes, SGD with momentum and
weight decay, Kaiming initialization, and the three model families from
Table 2 of the paper (light CNN, ResNet-8, 4-layer MLP).
"""

from repro.nn.tensor import Parameter
from repro.nn.layers import (
    Module,
    Dense,
    ReLU,
    Conv2d,
    MaxPool2d,
    AvgPool2d,
    LeakyReLU,
    Sigmoid,
    Tanh,
    GlobalAvgPool2d,
    BatchNorm2d,
    Flatten,
    Dropout,
    Sequential,
    Residual,
    Identity,
)
from repro.nn.loss import CrossEntropyLoss, MSELoss, batched_cross_entropy_grad
from repro.nn.optim import SGD, BatchedSGD, StepLR, ConstantLR
from repro.nn.models import build_cnn, build_resnet8, build_mlp, build_model
from repro.nn.batched import (
    BatchedModel,
    batched_forward,
    parameter_column_runs,
    supports_batched_backward,
    supports_batched_forward,
)
from repro.nn.flat import StateLayout
from repro.nn.serialize import (
    get_state,
    set_state,
    state_to_vector,
    vector_to_state,
    average_states,
    num_parameters,
)

__all__ = [
    "Parameter",
    "Module",
    "Dense",
    "ReLU",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "GlobalAvgPool2d",
    "BatchNorm2d",
    "Flatten",
    "Dropout",
    "Sequential",
    "Residual",
    "Identity",
    "CrossEntropyLoss",
    "MSELoss",
    "batched_cross_entropy_grad",
    "SGD",
    "BatchedSGD",
    "StepLR",
    "ConstantLR",
    "build_cnn",
    "build_resnet8",
    "build_mlp",
    "build_model",
    "BatchedModel",
    "batched_forward",
    "parameter_column_runs",
    "supports_batched_backward",
    "supports_batched_forward",
    "StateLayout",
    "get_state",
    "set_state",
    "state_to_vector",
    "vector_to_state",
    "average_states",
    "num_parameters",
]
