"""Stateless numerical helpers shared across layers and losses."""

from __future__ import annotations

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "one_hot",
    "relu",
    "relu_grad",
    "im2col",
    "col2im",
    "conv_output_size",
]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def one_hot(
    labels: np.ndarray, num_classes: int, dtype: np.dtype | str = np.float64
) -> np.ndarray:
    """Return the one-hot encoding of integer ``labels``.

    ``dtype`` selects the output dtype — the cross-entropy loss passes
    its logits dtype so float32 training stays float32 end to end.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
        raise ValueError("labels out of range for one_hot")
    out = np.zeros((labels.shape[0], num_classes), dtype=dtype)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def relu(x: np.ndarray) -> np.ndarray:
    """Elementwise max(x, 0)."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of ReLU evaluated at the pre-activation ``x``."""
    return (x > 0.0).astype(x.dtype)


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size: "
            f"size={size} kernel={kernel} stride={stride} padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Unfold image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.

    Returns
    -------
    cols, out_h, out_w:
        ``cols`` has shape ``(N, C * kernel * kernel, out_h * out_w)``.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    if padding > 0:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    # Strided sliding-window view: (N, C, kernel, kernel, out_h, out_w).
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kernel, kernel, out_h, out_w),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        writeable=False,
    )
    cols = windows.reshape(n, c * kernel * kernel, out_h * out_w)
    return np.ascontiguousarray(cols), out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold columns back into an image, summing overlapping patches.

    This is the adjoint of :func:`im2col` and is used in the convolution
    backward pass.
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols = cols.reshape(n, c, kernel, kernel, out_h, out_w)
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            padded[:, :, ky:y_max:stride, kx:x_max:stride] += cols[:, :, ky, kx, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded
