"""Batched multi-model forward (and train-mode forward/backward).

The observer's hot loop evaluates *every* node's model against the same
eval split each round. Reloading one dict-``State`` at a time into a
workspace :class:`~repro.nn.layers.Module` makes that O(n_nodes) Python
overhead per round; this module instead takes a ``(B, dim)`` block of
flat parameter vectors (rows of a
:class:`~repro.gossip.engine.StateArena`, addressed by a
:class:`~repro.nn.flat.StateLayout`) and pushes all B models through
the network together in blocked numpy ops.

Contracts:

* **Layout** — ``params[b]`` must follow ``layout`` (sorted-name slot
  order, the same order as ``state_to_vector``). Parameters and buffers
  are read as views into the block; nothing is copied into a model.
* **Dtype** — all math runs in ``params.dtype``. Inputs are cast to it
  on entry, so a float32 arena is scored in float32 end to end instead
  of being silently promoted to float64.
* **Eval mode only** — layers behave as in ``model.eval()``: BatchNorm
  uses each row's running statistics, Dropout is the identity. There is
  no backward pass.
* **Input sharing** — ``x`` is either one array shared by every model
  (``(N, ...)``, e.g. the global test set) or one array per model
  (``(B, N, ...)``, e.g. per-node attack sets). Shared inputs stay
  un-broadcast for as long as the network allows (e.g. a shared im2col
  is computed once for all B models).

Supported layers are the ones the Table-2 model families use (Dense,
Conv2d, BatchNorm2d, the poolings, the elementwise activations,
Flatten, Dropout, Sequential, Residual, Identity); use
:func:`supports_batched_forward` to test a model before relying on
:func:`batched_forward`.

**Training**: :class:`BatchedModel` is the train-mode counterpart —
a blocked forward that caches what the backward needs, and a blocked
backward that accumulates per-row parameter gradients into a
``(B, dim)`` gradient block laid out like the parameter block. Each
row's math reproduces the per-model :class:`~repro.nn.layers.Module`
pass operation for operation (BatchNorm runs in training mode and
updates each row's running statistics *inside* the parameter block),
so a float64 block trains bit-identically to the row-by-row workspace
path. Stream-mode Dropout (masks keyed by ``(node, session, step)``,
see :func:`~repro.nn.layers.mask_stream_rng`) batches: install each
row's per-step generators with :meth:`BatchedModel.set_mask_streams`
before the forward. Legacy-mode Dropout with ``p > 0`` has no batched
backward — its masks draw from the layer's own generator in per-task
order, which a lockstep block cannot reproduce; use
:func:`supports_batched_backward` to test, and fall back per row.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.flat import StateLayout
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    LeakyReLU,
    MaxPool2d,
    Module,
    ReLU,
    Residual,
    Sequential,
    Sigmoid,
    Tanh,
    stream_dropout_layers,
)

__all__ = [
    "batched_forward",
    "supports_batched_forward",
    "supports_batched_backward",
    "parameter_column_runs",
    "named_leaf_modules",
    "BatchedModel",
]

_LEAF_TYPES = (
    Dense,
    Conv2d,
    BatchNorm2d,
    MaxPool2d,
    AvgPool2d,
    GlobalAvgPool2d,
    ReLU,
    LeakyReLU,
    Sigmoid,
    Tanh,
    Flatten,
    Dropout,
    Identity,
)


def supports_batched_forward(model: Module) -> bool:
    """True when every module in the tree has a batched equivalent."""
    for module in model.modules():
        if isinstance(module, (Sequential, Residual)):
            continue
        if not isinstance(module, _LEAF_TYPES):
            return False
    return True


def supports_batched_backward(model: Module) -> bool:
    """True when every module has a batched train-mode forward AND backward.

    Legacy-mode Dropout with ``p > 0`` is excluded: its masks draw from
    the layer's own sequential generator in per-task order, which a
    lockstep block cannot reproduce. Stream-mode dropout batches fine —
    its masks are a pure function of ``(node, session, step)`` (see
    :func:`~repro.nn.layers.mask_stream_rng`), so the block draws each
    row's masks from that row's own stream. ``p == 0`` is the identity
    and always batches.
    """
    for module in model.modules():
        if isinstance(module, (Sequential, Residual)):
            continue
        if isinstance(module, Dropout):
            if module.p > 0.0 and module.mode != "stream":
                return False
            continue
        if not isinstance(module, _LEAF_TYPES):
            return False
    return True


def named_leaf_modules(model: Module):
    """Yield ``(prefix, module)`` leaf pairs in batched dispatch order.

    Prefixes match the cache keys of :class:`BatchedModel` and the
    qualified parameter/buffer names of the layout (e.g. a BatchNorm
    at prefix ``"1."`` owns ``buffer:1.running_mean``).
    """

    def walk(module: Module, prefix: str):
        if isinstance(module, Sequential):
            for i, layer in enumerate(module.layers):
                yield from walk(layer, f"{prefix}{i}.")
        elif isinstance(module, Residual):
            yield from walk(module.body, prefix + "body.")
            yield from walk(module.shortcut, prefix + "shortcut.")
        else:
            yield prefix, module

    yield from walk(model, "")


def parameter_column_runs(layout: StateLayout) -> list[tuple[int, int]]:
    """Merged ``[start, stop)`` column ranges of trainable slots.

    Buffer slots (names prefixed ``buffer:``, e.g. BatchNorm running
    statistics) are storage the optimizer must never step; every other
    slot is a parameter column. Adjacent parameter slots merge into one
    run so a block optimizer touches few large column slices.
    """
    runs: list[tuple[int, int]] = []
    for slot in layout.slots:
        if slot.name.startswith("buffer:"):
            continue
        start, stop = slot.offset, slot.offset + slot.size
        if runs and runs[-1][1] == start:
            runs[-1] = (runs[-1][0], stop)
        else:
            runs.append((start, stop))
    return runs


class _Block:
    """One (B, dim) parameter block addressed through a layout."""

    def __init__(self, layout: StateLayout, params: np.ndarray):
        if params.ndim != 2 or params.shape[1] != layout.dim:
            raise ValueError(
                f"params must be (B, {layout.dim}), got {params.shape}"
            )
        self.layout = layout
        self.params = params
        self.b = params.shape[0]
        self.dtype = params.dtype

    def get(self, name: str) -> np.ndarray:
        """(B,) + slot.shape view of one entry across all rows."""
        slot = self.layout.slot(name)
        view = self.params[:, slot.offset : slot.offset + slot.size]
        return view.reshape((self.b,) + slot.shape)


def batched_forward(
    model: Module,
    layout: StateLayout,
    params: np.ndarray,
    x: np.ndarray,
    shared: bool = True,
) -> np.ndarray:
    """Logits of B models on ``x`` as one ``(B, N, classes)`` array.

    ``params`` is a ``(B, dim)`` block of flat parameter vectors laid
    out by ``layout``; ``x`` is ``(N, ...)`` when ``shared`` (every
    model scores the same inputs) or ``(B, N, ...)`` otherwise.
    """
    block = _Block(layout, np.asarray(params))
    x = np.asarray(x, dtype=block.dtype)
    if not shared and x.shape[0] != block.b:
        raise ValueError(
            f"per-model input must have leading size {block.b}, got {x.shape}"
        )
    out, out_shared = _forward(model, "", block, x, shared)
    if out_shared:
        # No parameterized layer ran (degenerate but legal): replicate.
        out = np.broadcast_to(out, (block.b,) + out.shape)
    return out


def _forward(
    module: Module, prefix: str, block: _Block, x: np.ndarray, shared: bool
) -> tuple[np.ndarray, bool]:
    """Dispatch one module; returns (output, still-shared?)."""
    if isinstance(module, Sequential):
        for i, layer in enumerate(module.layers):
            x, shared = _forward(layer, f"{prefix}{i}.", block, x, shared)
        return x, shared
    if isinstance(module, Residual):
        body, body_shared = _forward(module.body, prefix + "body.", block, x, shared)
        cut, cut_shared = _forward(
            module.shortcut, prefix + "shortcut.", block, x, shared
        )
        # Broadcasting aligns a still-shared branch with a per-model one.
        return np.maximum(body + cut, 0.0), body_shared and cut_shared
    if isinstance(module, Dense):
        return _dense(module, prefix, block, x, shared), False
    if isinstance(module, Conv2d):
        return _conv2d(module, prefix, block, x, shared), False
    if isinstance(module, BatchNorm2d):
        return _batchnorm2d(module, prefix, block, x, shared), False
    if isinstance(module, MaxPool2d):
        return _maxpool(module.kernel_size, x), shared
    if isinstance(module, AvgPool2d):
        return _avgpool(module.kernel_size, x), shared
    if isinstance(module, GlobalAvgPool2d):
        return x.mean(axis=(-2, -1)), shared
    if isinstance(module, ReLU):
        return np.maximum(x, 0.0), shared
    if isinstance(module, LeakyReLU):
        return np.where(x > 0, x, module.slope * x), shared
    if isinstance(module, Sigmoid):
        return _sigmoid(x), shared
    if isinstance(module, Tanh):
        return np.tanh(x), shared
    if isinstance(module, Flatten):
        lead = x.shape[:1] if shared else x.shape[:2]
        return x.reshape(lead + (-1,)), shared
    if isinstance(module, (Dropout, Identity)):
        return x, shared
    raise NotImplementedError(
        f"no batched forward for {type(module).__name__}; "
        "check supports_batched_forward(model) first"
    )


def _dense(
    module: Dense, prefix: str, block: _Block, x: np.ndarray, shared: bool
) -> np.ndarray:
    weight = block.get(prefix + "weight")  # (B, in, out)
    if shared:
        # One GEMM for all models: fold B into the output columns, and
        # add the bias while the result is still (N, B*out) contiguous.
        b, i, o = weight.shape
        folded = weight.transpose(1, 0, 2).reshape(i, b * o)
        out = x @ folded
        if module.bias is not None:
            out += block.get(prefix + "bias").reshape(b * o)
        return out.reshape(x.shape[0], b, o).transpose(1, 0, 2)
    out = np.matmul(x, weight)  # batched GEMM (B, N, out)
    if module.bias is not None:
        out += block.get(prefix + "bias")[:, None, :]
    return out


def _conv2d(
    module: Conv2d, prefix: str, block: _Block, x: np.ndarray, shared: bool
) -> np.ndarray:
    w_mat = block.get(prefix + "weight").reshape(
        block.b, module.out_channels, -1
    )  # (B, O, K)
    if shared:
        cols, out_h, out_w = F.im2col(
            x, module.kernel_size, module.stride, module.padding
        )
        n, k, p = cols.shape
        # Shared patches are extracted ONCE; one GEMM covers all models,
        # and the bias lands while the result is still 2-D contiguous.
        folded = w_mat.reshape(block.b * module.out_channels, k)
        out = folded @ cols.transpose(1, 0, 2).reshape(k, n * p)
        if module.bias is not None:
            out += block.get(prefix + "bias").reshape(-1, 1)
        out = out.reshape(block.b, module.out_channels, n, p).transpose(0, 2, 1, 3)
        return out.reshape(out.shape[:3] + (out_h, out_w))
    else:
        b, n = x.shape[:2]
        cols, out_h, out_w = F.im2col(
            x.reshape((b * n,) + x.shape[2:]),
            module.kernel_size,
            module.stride,
            module.padding,
        )
        cols = cols.reshape(b, n, cols.shape[1], cols.shape[2])
        out = np.matmul(w_mat[:, None], cols)  # (B, N, O, P)
    if module.bias is not None:
        out += block.get(prefix + "bias")[:, None, :, None]
    return out.reshape(out.shape[:3] + (out_h, out_w))


def _batchnorm2d(
    module: BatchNorm2d, prefix: str, block: _Block, x: np.ndarray, shared: bool
) -> np.ndarray:
    gamma = block.get(prefix + "gamma")  # (B, C)
    beta = block.get(prefix + "beta")
    mean = block.get("buffer:" + prefix + "running_mean")
    var = block.get("buffer:" + prefix + "running_var")
    inv_std = 1.0 / np.sqrt(var + module.eps)
    # Each model normalizes with ITS OWN running statistics, so the
    # output is per-model even when the input is still shared.
    scale = (gamma * inv_std)[:, None, :, None, None]
    shift = (beta - gamma * inv_std * mean)[:, None, :, None, None]
    if shared:
        return x[None] * scale + shift
    return x * scale + shift


def _maxpool(kernel: int, x: np.ndarray) -> np.ndarray:
    h, w = x.shape[-2:]
    if h % kernel or w % kernel:
        raise ValueError(
            f"MaxPool2d requires H and W divisible by {kernel}, got {x.shape}"
        )
    lead = x.shape[:-2]
    windows = x.reshape(lead + (h // kernel, kernel, w // kernel, kernel))
    return windows.max(axis=(-3, -1))


def _avgpool(kernel: int, x: np.ndarray) -> np.ndarray:
    h, w = x.shape[-2:]
    if h % kernel or w % kernel:
        raise ValueError(
            f"AvgPool2d requires H and W divisible by {kernel}, got {x.shape}"
        )
    lead = x.shape[:-2]
    windows = x.reshape(lead + (h // kernel, kernel, w // kernel, kernel))
    return windows.mean(axis=(-3, -1))


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


# ---------------------------------------------------------------------------
# Train-mode forward/backward over a parameter block
# ---------------------------------------------------------------------------


class BatchedModel:
    """Blocked train-mode forward/backward for B models at once.

    ``forward`` runs row ``b``'s model on its own mini-batch ``x[b]``
    (inputs are always per-model in training — every node owns its
    split) and caches activations; ``backward`` backpropagates a
    ``(B, N, classes)`` logits gradient and accumulates per-row
    parameter gradients into a ``(B, dim)`` gradient block addressed by
    the same layout as the parameter block.

    Contracts (on top of the module-level layout/dtype contracts):

    * **Training semantics** — BatchNorm normalizes with each row's
      mini-batch statistics and updates that row's running buffers in
      place *inside* the parameter block, exactly as ``model.train()``
      would on the workspace module.
    * **Row-for-row parity** — every per-row slice computation uses the
      same primitive (and the same operand layout) as the corresponding
      ``Module.forward``/``backward``, so a float64 block reproduces the
      workspace path bit for bit. Conv contractions therefore run the
      serial einsum per row instead of one fused contraction — the win
      for conv models is the batched everything-else; dense models
      batch end to end.
    * **One forward at a time** — caches are keyed per layer and
      overwritten by the next ``forward``; call ``backward`` before the
      next step, with the forward's parameter block still alive.
    """

    def __init__(self, model: Module, layout: StateLayout):
        if not supports_batched_backward(model):
            raise ValueError(
                f"model {type(model).__name__} has no batched backward; "
                "check supports_batched_backward(model) first"
            )
        self.model = model
        self.layout = layout
        self._block: _Block | None = None
        self._cache: dict[str, object] = {}
        # Stream-mode dropout: per-layer lists of per-node generators,
        # installed by the trainer before each optimizer step.
        self._stream_layers = stream_dropout_layers(model)
        self._stream_index = {id(m): i for i, m in enumerate(self._stream_layers)}
        self._mask_streams: list[list[np.random.Generator]] | None = None
        self._mask_tile = 1
        # DP per-sample mode: when True, BatchNorm forwards record each
        # row's (mean, var) in ``bn_stats`` instead of updating the
        # (scratch, tiled) running buffers in place; the trainer folds
        # the stats into the real rows' buffers sequentially.
        self.collect_bn_stats = False
        self.bn_stats: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    def set_mask_streams(
        self,
        streams: list[list[np.random.Generator]] | None,
        tile: int = 1,
    ) -> None:
        """Install per-step dropout mask streams.

        ``streams[i][j]`` is the generator of stream-dropout layer ``i``
        (in :func:`~repro.nn.layers.stream_dropout_layers` order) for
        node row ``j``. With ``tile > 1`` (DP per-sample mode) each node
        row covers ``tile`` consecutive block rows and its generator
        yields one ``(tile, ...)`` draw — by the C-order fill of
        ``Generator.random``, bit-identical to the ``tile`` consecutive
        per-microbatch draws of the serial path.
        """
        if streams is not None and len(streams) != len(self._stream_layers):
            raise ValueError(
                f"need one stream list per stream-dropout layer "
                f"({len(self._stream_layers)}), got {len(streams)}"
            )
        self._mask_streams = streams
        self._mask_tile = int(tile)

    def forward(self, params: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Logits of row b's model on ``x[b]``: ``(B, N, ...) -> (B, N, C)``."""
        self._block = _Block(self.layout, np.asarray(params))
        x = np.asarray(x, dtype=self._block.dtype)
        if x.shape[0] != self._block.b:
            raise ValueError(
                f"input must have leading size {self._block.b}, got {x.shape}"
            )
        self._cache = {}
        self.bn_stats = {}
        return self._fwd(self.model, "", x)

    def backward(self, grad_out: np.ndarray, grads: np.ndarray) -> np.ndarray:
        """Backprop ``grad_out``, filling the ``(B, dim)`` gradient block.

        Every parameter slot is *written* exactly once per pass (no
        accumulation), so ``grads`` needs no zeroing between steps —
        pass an uninitialized buffer and reuse it. Buffer slots (e.g.
        BatchNorm running statistics) are left untouched. Returns the
        gradient with respect to the forward's input.
        """
        if self._block is None:
            raise RuntimeError("backward called before forward")
        gblock = _Block(self.layout, np.asarray(grads))
        if gblock.b != self._block.b:
            raise ValueError(
                f"grads must have {self._block.b} rows, got {gblock.b}"
            )
        return self._bwd(self.model, "", grad_out, gblock)

    # -- forward dispatch ---------------------------------------------

    def _fwd(self, module: Module, prefix: str, x: np.ndarray) -> np.ndarray:
        block = self._block
        if isinstance(module, Sequential):
            for i, layer in enumerate(module.layers):
                x = self._fwd(layer, f"{prefix}{i}.", x)
            return x
        if isinstance(module, Residual):
            out = self._fwd(module.body, prefix + "body.", x) + self._fwd(
                module.shortcut, prefix + "shortcut.", x
            )
            self._cache[prefix] = out
            return F.relu(out)
        if isinstance(module, Dense):
            self._cache[prefix] = x
            out = np.matmul(x, block.get(prefix + "weight"))
            if module.bias is not None:
                out = out + block.get(prefix + "bias")[:, None, :]
            return out
        if isinstance(module, Conv2d):
            return self._conv_fwd(module, prefix, x)
        if isinstance(module, BatchNorm2d):
            return self._batchnorm_fwd(module, prefix, x)
        if isinstance(module, MaxPool2d):
            b, n, c, h, w = x.shape
            k = module.kernel_size
            if h % k or w % k:
                raise ValueError(
                    f"MaxPool2d requires H and W divisible by {k}, got {x.shape}"
                )
            windows = x.reshape(b, n, c, h // k, k, w // k, k)
            out = windows.max(axis=(4, 6))
            self._cache[prefix] = (
                windows == out[:, :, :, :, None, :, None],
                x.shape,
            )
            return out
        if isinstance(module, AvgPool2d):
            b, n, c, h, w = x.shape
            k = module.kernel_size
            if h % k or w % k:
                raise ValueError(
                    f"AvgPool2d requires H and W divisible by {k}, got {x.shape}"
                )
            self._cache[prefix] = x.shape
            return x.reshape(b, n, c, h // k, k, w // k, k).mean(axis=(4, 6))
        if isinstance(module, GlobalAvgPool2d):
            self._cache[prefix] = x.shape
            return x.mean(axis=(3, 4))
        if isinstance(module, ReLU):
            self._cache[prefix] = x
            return F.relu(x)
        if isinstance(module, LeakyReLU):
            self._cache[prefix] = x
            return np.where(x > 0, x, module.slope * x)
        if isinstance(module, Sigmoid):
            out = _sigmoid(x)
            self._cache[prefix] = out
            return out
        if isinstance(module, Tanh):
            out = np.tanh(x)
            self._cache[prefix] = out
            return out
        if isinstance(module, Flatten):
            self._cache[prefix] = x.shape
            return x.reshape(x.shape[0], x.shape[1], -1)
        if isinstance(module, Dropout):
            return self._dropout_fwd(module, prefix, x)
        if isinstance(module, Identity):
            return x
        raise NotImplementedError(
            f"no batched train-mode forward for {type(module).__name__}"
        )

    def _dropout_fwd(
        self, module: Dropout, prefix: str, x: np.ndarray
    ) -> np.ndarray:
        if module.p == 0.0:
            return x
        # supports_batched_backward guarantees mode == "stream" here.
        if self._mask_streams is None:
            raise RuntimeError(
                "stream-mode Dropout in a batched forward without mask "
                "streams; call set_mask_streams() before each step"
            )
        streams = self._mask_streams[self._stream_index[id(module)]]
        tile = self._mask_tile
        if len(streams) * tile != x.shape[0]:
            raise ValueError(
                f"mask streams cover {len(streams)} x {tile} rows, "
                f"block has {x.shape[0]}"
            )
        keep = 1.0 - module.p
        # Draw in float64 per node stream, exactly like the serial
        # layer, then cast the finished mask to the block dtype.
        mask = np.empty(x.shape, dtype=np.float64)
        draw_shape = (tile,) + x.shape[1:]
        for j, rng in enumerate(streams):
            mask[j * tile : (j + 1) * tile] = (
                rng.random(draw_shape) < keep
            ) / keep
        mask = mask.astype(x.dtype, copy=False)
        self._cache[prefix] = mask
        return x * mask

    def _conv_fwd(self, module: Conv2d, prefix: str, x: np.ndarray) -> np.ndarray:
        block = self._block
        b, n = x.shape[:2]
        cols, out_h, out_w = F.im2col(
            x.reshape((b * n,) + x.shape[2:]),
            module.kernel_size,
            module.stride,
            module.padding,
        )
        cols = cols.reshape(b, n, cols.shape[1], cols.shape[2])
        self._cache[prefix] = (cols, x.shape, out_h, out_w)
        w_mat = block.get(prefix + "weight").reshape(
            b, module.out_channels, -1
        )
        out = np.empty(
            (b, n, module.out_channels, cols.shape[3]), dtype=block.dtype
        )
        # The serial einsum, one row at a time: same contraction order,
        # same operand layout, bit-identical slices.
        for i in range(b):
            np.einsum("ok,nkp->nop", w_mat[i], cols[i], out=out[i])
        if module.bias is not None:
            out = out + block.get(prefix + "bias")[:, None, :, None]
        return out.reshape(b, n, module.out_channels, out_h, out_w)

    def _batchnorm_fwd(
        self, module: BatchNorm2d, prefix: str, x: np.ndarray
    ) -> np.ndarray:
        block = self._block
        mean = x.mean(axis=(1, 3, 4))  # each row's own batch statistics
        var = x.var(axis=(1, 3, 4))
        if self.collect_bn_stats:
            # DP per-sample mode: the block rows are tiled scratch
            # copies; hand the stats to the trainer, which folds them
            # into the real rows' running buffers in microbatch order.
            self.bn_stats[prefix] = (mean, var)
        else:
            running_mean = block.get("buffer:" + prefix + "running_mean")
            running_var = block.get("buffer:" + prefix + "running_var")
            running_mean[...] = (
                (1 - module.momentum) * running_mean + module.momentum * mean
            )
            running_var[...] = (
                (1 - module.momentum) * running_var + module.momentum * var
            )
        inv_std = 1.0 / np.sqrt(var + module.eps)
        x_hat = (x - mean[:, None, :, None, None]) * inv_std[
            :, None, :, None, None
        ]
        self._cache[prefix] = (x_hat, inv_std, x.shape)
        gamma = block.get(prefix + "gamma")
        beta = block.get(prefix + "beta")
        return (
            gamma[:, None, :, None, None] * x_hat
            + beta[:, None, :, None, None]
        )

    # -- backward dispatch --------------------------------------------

    def _bwd(
        self, module: Module, prefix: str, grad: np.ndarray, gblock: _Block
    ) -> np.ndarray:
        block = self._block
        if isinstance(module, Sequential):
            for i in reversed(range(len(module.layers))):
                grad = self._bwd(
                    module.layers[i], f"{prefix}{i}.", grad, gblock
                )
            return grad
        if isinstance(module, Residual):
            pre_relu = self._cache[prefix]
            grad = grad * F.relu_grad(pre_relu)
            return self._bwd(
                module.body, prefix + "body.", grad, gblock
            ) + self._bwd(module.shortcut, prefix + "shortcut.", grad, gblock)
        if isinstance(module, Dense):
            x = self._cache[prefix]
            np.matmul(
                x.transpose(0, 2, 1), grad, out=gblock.get(prefix + "weight")
            )
            if module.bias is not None:
                np.sum(grad, axis=1, out=gblock.get(prefix + "bias"))
            return np.matmul(
                grad, block.get(prefix + "weight").transpose(0, 2, 1)
            )
        if isinstance(module, Conv2d):
            return self._conv_bwd(module, prefix, grad, gblock)
        if isinstance(module, BatchNorm2d):
            return self._batchnorm_bwd(module, prefix, grad, gblock)
        if isinstance(module, MaxPool2d):
            mask, x_shape = self._cache[prefix]
            # Cast like the serial layer: int64 counts would promote a
            # float32 backward pass to float64.
            counts = mask.sum(axis=(4, 6), keepdims=True).astype(grad.dtype)
            expanded = grad[:, :, :, :, None, :, None] * mask / counts
            return expanded.reshape(x_shape)
        if isinstance(module, AvgPool2d):
            x_shape = self._cache[prefix]
            b, n, c, h, w = x_shape
            k = module.kernel_size
            expanded = np.broadcast_to(
                grad[:, :, :, :, None, :, None] * (1.0 / (k * k)),
                (b, n, c, h // k, k, w // k, k),
            )
            return expanded.reshape(x_shape).copy()
        if isinstance(module, GlobalAvgPool2d):
            x_shape = self._cache[prefix]
            b, n, c, h, w = x_shape
            return np.broadcast_to(
                grad[:, :, :, None, None] * (1.0 / (h * w)), x_shape
            ).copy()
        if isinstance(module, ReLU):
            return grad * F.relu_grad(self._cache[prefix])
        if isinstance(module, LeakyReLU):
            x = self._cache[prefix]
            return grad * np.where(x > 0, 1.0, module.slope)
        if isinstance(module, Sigmoid):
            out = self._cache[prefix]
            return grad * out * (1.0 - out)
        if isinstance(module, Tanh):
            out = self._cache[prefix]
            return grad * (1.0 - out**2)
        if isinstance(module, Flatten):
            return grad.reshape(self._cache[prefix])
        if isinstance(module, Dropout):
            mask = self._cache.get(prefix)
            return grad if mask is None else grad * mask
        if isinstance(module, Identity):
            return grad
        raise NotImplementedError(
            f"no batched train-mode backward for {type(module).__name__}"
        )

    def _conv_bwd(
        self, module: Conv2d, prefix: str, grad: np.ndarray, gblock: _Block
    ) -> np.ndarray:
        block = self._block
        cols, x_shape, out_h, out_w = self._cache[prefix]
        b, n = grad.shape[:2]
        o = module.out_channels
        grad_flat = grad.reshape(b, n, o, out_h * out_w)
        w_mat = block.get(prefix + "weight").reshape(b, o, -1)
        gw = gblock.get(prefix + "weight").reshape(b, o, -1)
        k = cols.shape[2]
        grad_cols = np.empty((b, n, k, cols.shape[3]), dtype=grad.dtype)
        for i in range(b):
            np.einsum("nop,nkp->ok", grad_flat[i], cols[i], out=gw[i])
            np.einsum("ok,nop->nkp", w_mat[i], grad_flat[i], out=grad_cols[i])
        if module.bias is not None:
            np.sum(grad_flat, axis=(1, 3), out=gblock.get(prefix + "bias"))
        gx = F.col2im(
            grad_cols.reshape(b * n, k, -1),
            (b * n,) + x_shape[2:],
            module.kernel_size,
            module.stride,
            module.padding,
        )
        return gx.reshape(x_shape)

    def _batchnorm_bwd(
        self, module: BatchNorm2d, prefix: str, grad: np.ndarray, gblock: _Block
    ) -> np.ndarray:
        block = self._block
        x_hat, inv_std, x_shape = self._cache[prefix]
        _, n, _, h, w = x_shape
        m = n * h * w
        np.sum(grad * x_hat, axis=(1, 3, 4), out=gblock.get(prefix + "gamma"))
        np.sum(grad, axis=(1, 3, 4), out=gblock.get(prefix + "beta"))
        g = grad * block.get(prefix + "gamma")[:, None, :, None, None]
        sum_g = g.sum(axis=(1, 3, 4), keepdims=True)
        sum_gx = (g * x_hat).sum(axis=(1, 3, 4), keepdims=True)
        return inv_std[:, None, :, None, None] * (
            g - sum_g / m - x_hat * sum_gx / m
        )
