"""Batched eval-mode forward: score B parameter vectors in one pass.

The observer's hot loop evaluates *every* node's model against the same
eval split each round. Reloading one dict-``State`` at a time into a
workspace :class:`~repro.nn.layers.Module` makes that O(n_nodes) Python
overhead per round; this module instead takes a ``(B, dim)`` block of
flat parameter vectors (rows of a
:class:`~repro.gossip.engine.StateArena`, addressed by a
:class:`~repro.nn.flat.StateLayout`) and pushes all B models through
the network together in blocked numpy ops.

Contracts:

* **Layout** — ``params[b]`` must follow ``layout`` (sorted-name slot
  order, the same order as ``state_to_vector``). Parameters and buffers
  are read as views into the block; nothing is copied into a model.
* **Dtype** — all math runs in ``params.dtype``. Inputs are cast to it
  on entry, so a float32 arena is scored in float32 end to end instead
  of being silently promoted to float64.
* **Eval mode only** — layers behave as in ``model.eval()``: BatchNorm
  uses each row's running statistics, Dropout is the identity. There is
  no backward pass.
* **Input sharing** — ``x`` is either one array shared by every model
  (``(N, ...)``, e.g. the global test set) or one array per model
  (``(B, N, ...)``, e.g. per-node attack sets). Shared inputs stay
  un-broadcast for as long as the network allows (e.g. a shared im2col
  is computed once for all B models).

Supported layers are the ones the Table-2 model families use (Dense,
Conv2d, BatchNorm2d, the poolings, the elementwise activations,
Flatten, Dropout, Sequential, Residual, Identity); use
:func:`supports_batched_forward` to test a model before relying on
:func:`batched_forward`.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.flat import StateLayout
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    LeakyReLU,
    MaxPool2d,
    Module,
    ReLU,
    Residual,
    Sequential,
    Sigmoid,
    Tanh,
)

__all__ = ["batched_forward", "supports_batched_forward"]

_LEAF_TYPES = (
    Dense,
    Conv2d,
    BatchNorm2d,
    MaxPool2d,
    AvgPool2d,
    GlobalAvgPool2d,
    ReLU,
    LeakyReLU,
    Sigmoid,
    Tanh,
    Flatten,
    Dropout,
    Identity,
)


def supports_batched_forward(model: Module) -> bool:
    """True when every module in the tree has a batched equivalent."""
    for module in model.modules():
        if isinstance(module, (Sequential, Residual)):
            continue
        if not isinstance(module, _LEAF_TYPES):
            return False
    return True


class _Block:
    """One (B, dim) parameter block addressed through a layout."""

    def __init__(self, layout: StateLayout, params: np.ndarray):
        if params.ndim != 2 or params.shape[1] != layout.dim:
            raise ValueError(
                f"params must be (B, {layout.dim}), got {params.shape}"
            )
        self.layout = layout
        self.params = params
        self.b = params.shape[0]
        self.dtype = params.dtype

    def get(self, name: str) -> np.ndarray:
        """(B,) + slot.shape view of one entry across all rows."""
        slot = self.layout.slot(name)
        view = self.params[:, slot.offset : slot.offset + slot.size]
        return view.reshape((self.b,) + slot.shape)


def batched_forward(
    model: Module,
    layout: StateLayout,
    params: np.ndarray,
    x: np.ndarray,
    shared: bool = True,
) -> np.ndarray:
    """Logits of B models on ``x`` as one ``(B, N, classes)`` array.

    ``params`` is a ``(B, dim)`` block of flat parameter vectors laid
    out by ``layout``; ``x`` is ``(N, ...)`` when ``shared`` (every
    model scores the same inputs) or ``(B, N, ...)`` otherwise.
    """
    block = _Block(layout, np.asarray(params))
    x = np.asarray(x, dtype=block.dtype)
    if not shared and x.shape[0] != block.b:
        raise ValueError(
            f"per-model input must have leading size {block.b}, got {x.shape}"
        )
    out, out_shared = _forward(model, "", block, x, shared)
    if out_shared:
        # No parameterized layer ran (degenerate but legal): replicate.
        out = np.broadcast_to(out, (block.b,) + out.shape)
    return out


def _forward(
    module: Module, prefix: str, block: _Block, x: np.ndarray, shared: bool
) -> tuple[np.ndarray, bool]:
    """Dispatch one module; returns (output, still-shared?)."""
    if isinstance(module, Sequential):
        for i, layer in enumerate(module.layers):
            x, shared = _forward(layer, f"{prefix}{i}.", block, x, shared)
        return x, shared
    if isinstance(module, Residual):
        body, body_shared = _forward(module.body, prefix + "body.", block, x, shared)
        cut, cut_shared = _forward(
            module.shortcut, prefix + "shortcut.", block, x, shared
        )
        # Broadcasting aligns a still-shared branch with a per-model one.
        return np.maximum(body + cut, 0.0), body_shared and cut_shared
    if isinstance(module, Dense):
        return _dense(module, prefix, block, x, shared), False
    if isinstance(module, Conv2d):
        return _conv2d(module, prefix, block, x, shared), False
    if isinstance(module, BatchNorm2d):
        return _batchnorm2d(module, prefix, block, x, shared), False
    if isinstance(module, MaxPool2d):
        return _maxpool(module.kernel_size, x), shared
    if isinstance(module, AvgPool2d):
        return _avgpool(module.kernel_size, x), shared
    if isinstance(module, GlobalAvgPool2d):
        return x.mean(axis=(-2, -1)), shared
    if isinstance(module, ReLU):
        return np.maximum(x, 0.0), shared
    if isinstance(module, LeakyReLU):
        return np.where(x > 0, x, module.slope * x), shared
    if isinstance(module, Sigmoid):
        return _sigmoid(x), shared
    if isinstance(module, Tanh):
        return np.tanh(x), shared
    if isinstance(module, Flatten):
        lead = x.shape[:1] if shared else x.shape[:2]
        return x.reshape(lead + (-1,)), shared
    if isinstance(module, (Dropout, Identity)):
        return x, shared
    raise NotImplementedError(
        f"no batched forward for {type(module).__name__}; "
        "check supports_batched_forward(model) first"
    )


def _dense(
    module: Dense, prefix: str, block: _Block, x: np.ndarray, shared: bool
) -> np.ndarray:
    weight = block.get(prefix + "weight")  # (B, in, out)
    if shared:
        # One GEMM for all models: fold B into the output columns, and
        # add the bias while the result is still (N, B*out) contiguous.
        b, i, o = weight.shape
        folded = weight.transpose(1, 0, 2).reshape(i, b * o)
        out = x @ folded
        if module.bias is not None:
            out += block.get(prefix + "bias").reshape(b * o)
        return out.reshape(x.shape[0], b, o).transpose(1, 0, 2)
    out = np.matmul(x, weight)  # batched GEMM (B, N, out)
    if module.bias is not None:
        out += block.get(prefix + "bias")[:, None, :]
    return out


def _conv2d(
    module: Conv2d, prefix: str, block: _Block, x: np.ndarray, shared: bool
) -> np.ndarray:
    w_mat = block.get(prefix + "weight").reshape(
        block.b, module.out_channels, -1
    )  # (B, O, K)
    if shared:
        cols, out_h, out_w = F.im2col(
            x, module.kernel_size, module.stride, module.padding
        )
        n, k, p = cols.shape
        # Shared patches are extracted ONCE; one GEMM covers all models,
        # and the bias lands while the result is still 2-D contiguous.
        folded = w_mat.reshape(block.b * module.out_channels, k)
        out = folded @ cols.transpose(1, 0, 2).reshape(k, n * p)
        if module.bias is not None:
            out += block.get(prefix + "bias").reshape(-1, 1)
        out = out.reshape(block.b, module.out_channels, n, p).transpose(0, 2, 1, 3)
        return out.reshape(out.shape[:3] + (out_h, out_w))
    else:
        b, n = x.shape[:2]
        cols, out_h, out_w = F.im2col(
            x.reshape((b * n,) + x.shape[2:]),
            module.kernel_size,
            module.stride,
            module.padding,
        )
        cols = cols.reshape(b, n, cols.shape[1], cols.shape[2])
        out = np.matmul(w_mat[:, None], cols)  # (B, N, O, P)
    if module.bias is not None:
        out += block.get(prefix + "bias")[:, None, :, None]
    return out.reshape(out.shape[:3] + (out_h, out_w))


def _batchnorm2d(
    module: BatchNorm2d, prefix: str, block: _Block, x: np.ndarray, shared: bool
) -> np.ndarray:
    gamma = block.get(prefix + "gamma")  # (B, C)
    beta = block.get(prefix + "beta")
    mean = block.get("buffer:" + prefix + "running_mean")
    var = block.get("buffer:" + prefix + "running_var")
    inv_std = 1.0 / np.sqrt(var + module.eps)
    # Each model normalizes with ITS OWN running statistics, so the
    # output is per-model even when the input is still shared.
    scale = (gamma * inv_std)[:, None, :, None, None]
    shift = (beta - gamma * inv_std * mean)[:, None, :, None, None]
    if shared:
        return x[None] * scale + shift
    return x * scale + shift


def _maxpool(kernel: int, x: np.ndarray) -> np.ndarray:
    h, w = x.shape[-2:]
    if h % kernel or w % kernel:
        raise ValueError(
            f"MaxPool2d requires H and W divisible by {kernel}, got {x.shape}"
        )
    lead = x.shape[:-2]
    windows = x.reshape(lead + (h // kernel, kernel, w // kernel, kernel))
    return windows.max(axis=(-3, -1))


def _avgpool(kernel: int, x: np.ndarray) -> np.ndarray:
    h, w = x.shape[-2:]
    if h % kernel or w % kernel:
        raise ValueError(
            f"AvgPool2d requires H and W divisible by {kernel}, got {x.shape}"
        )
    lead = x.shape[:-2]
    windows = x.reshape(lead + (h // kernel, kernel, w // kernel, kernel))
    return windows.mean(axis=(-3, -1))


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out
