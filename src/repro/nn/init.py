"""Weight initialization schemes.

The paper initializes every node's model with the Kaiming normal
function (He et al., 2015); all nodes share the same initial model, so
initializers take an explicit ``rng`` to make that reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_normal",
    "xavier_uniform",
    "zeros",
]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional weights.

    Dense weights are ``(in, out)``; convolution weights are
    ``(out_channels, in_channels, k, k)``.
    """
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-normal initialization: N(0, sqrt(2 / fan_in))."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-uniform initialization: U(-b, b) with b = sqrt(6 / fan_in)."""
    fan_in, _ = _fan_in_out(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-normal initialization: N(0, sqrt(2 / (fan_in + fan_out)))."""
    fan_in, fan_out = _fan_in_out(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialization."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero array (bias initialization)."""
    return np.zeros(shape, dtype=np.float64)
