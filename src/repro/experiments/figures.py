"""Data-series generators for every figure in the paper.

Each ``figureN`` function runs the experiment grid behind the paper's
figure N and returns plain dict/array structures (no plotting — the
benchmark harness prints the series, and they are easy to plot from
any notebook). Figures accept a ``scale`` preset so the full grid runs
in seconds ("tiny"), minutes ("small") or at paper scale ("paper").
"""

from __future__ import annotations

import numpy as np

from repro.core.study import StudyConfig
from repro.experiments.configs import scaled_config
from repro.experiments.runner import run_experiment
from repro.graph.mixing import simulate_lambda2_decay
from repro.metrics.records import RunResult

__all__ = [
    "tradeoff_series",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "ALL_DATASETS",
]

ALL_DATASETS = ("cifar10", "cifar100", "fashion_mnist", "purchase100")


def tradeoff_series(result: RunResult) -> dict[str, np.ndarray]:
    """The (test accuracy, MIA accuracy, MIA TPR) trade-off series that
    Figures 2, 3 and 6 plot, one point per round."""
    return {
        "test_accuracy": result.series("global_test_accuracy"),
        "mia_accuracy": result.series("mia_accuracy"),
        "mia_tpr_at_1_fpr": result.series("mia_tpr_at_1_fpr"),
        "generalization_error": (
            result.series("local_train_accuracy")
            - result.series("local_test_accuracy")
        ),
    }


def figure2(
    scale: str = "tiny",
    datasets: tuple[str, ...] = ALL_DATASETS,
    view_size: int = 5,
    seed: int = 0,
) -> dict:
    """RQ1 — SAMO vs Base Gossip on a static 5-regular graph.

    Returns ``{dataset: {protocol: series}}`` with the trade-off series
    of each run.
    """
    out: dict = {"view_size": view_size, "datasets": {}}
    for dataset in datasets:
        per_protocol = {}
        for protocol in ("base_gossip", "samo"):
            config = scaled_config(
                dataset,
                scale,
                name=f"fig2-{dataset}-{protocol}",
                protocol=protocol,
                view_size=view_size,
                dynamic=False,
                seed=seed,
            )
            per_protocol[protocol] = tradeoff_series(run_experiment(config))
        out["datasets"][dataset] = per_protocol
    return out


def figure3(
    scale: str = "tiny",
    datasets: tuple[str, ...] = ALL_DATASETS,
    view_size: int = 2,
    seed: int = 0,
) -> dict:
    """RQ2 — static vs dynamic topology on a sparse 2-regular graph."""
    out: dict = {"view_size": view_size, "datasets": {}}
    for dataset in datasets:
        per_setting = {}
        for setting, dynamic in (("static", False), ("dynamic", True)):
            config = scaled_config(
                dataset,
                scale,
                name=f"fig3-{dataset}-{setting}",
                protocol="samo",
                view_size=view_size,
                dynamic=dynamic,
                seed=seed,
            )
            per_setting[setting] = tradeoff_series(run_experiment(config))
        out["datasets"][dataset] = per_setting
    return out


def figure4(
    scale: str = "tiny",
    datasets: tuple[str, ...] = ALL_DATASETS,
    view_size: int = 2,
    n_runs: int = 2,
    seed: int = 0,
) -> dict:
    """RQ3 — canary-based worst-case auditing, static vs dynamic.

    Returns, per dataset and setting, the per-round *maximum* canary
    TPR@1%FPR across ``n_runs`` runs with distinct canary sets (the
    paper uses 10 runs).
    """
    from repro.experiments.configs import SCALES

    n_canaries = SCALES[scale].n_canaries
    out: dict = {"view_size": view_size, "n_runs": n_runs, "datasets": {}}
    for dataset in datasets:
        per_setting: dict = {}
        for setting, dynamic in (("static", False), ("dynamic", True)):
            runs = []
            for run_id in range(n_runs):
                config = scaled_config(
                    dataset,
                    scale,
                    name=f"fig4-{dataset}-{setting}-r{run_id}",
                    protocol="samo",
                    view_size=view_size,
                    dynamic=dynamic,
                    n_canaries=n_canaries,
                    seed=seed + 1000 * run_id,
                )
                result = run_experiment(config)
                runs.append(result.series("canary_tpr_at_1_fpr"))
            stacked = np.vstack(runs)
            per_setting[setting] = {
                "max_canary_tpr": stacked.max(axis=0),
                "mean_canary_tpr": stacked.mean(axis=0),
                "runs": stacked,
            }
        out["datasets"][dataset] = per_setting
    return out


def figure5(
    scale: str = "tiny",
    dataset: str = "cifar10",
    view_sizes: tuple[int, ...] | None = None,
    seed: int = 0,
) -> dict:
    """RQ4 — impact of the view size, static vs dynamic, SAMO.

    Per (view size, setting): maximum average MIA accuracy and
    TPR@1%FPR, the accompanying maximum test accuracy, and the
    communication cost in models sent per node.
    """
    from repro.experiments.configs import SCALES

    if view_sizes is None:
        n_nodes = SCALES[scale].n_nodes
        view_sizes = tuple(k for k in (2, 5, 10, 25) if k < n_nodes)
    out: dict = {"dataset": dataset, "view_sizes": view_sizes, "settings": {}}
    for setting, dynamic in (("static", False), ("dynamic", True)):
        rows = []
        for k in view_sizes:
            config = scaled_config(
                dataset,
                scale,
                name=f"fig5-{dataset}-{setting}-k{k}",
                protocol="samo",
                view_size=k,
                dynamic=dynamic,
                seed=seed,
            )
            result = run_experiment(config)
            rows.append(
                {
                    "view_size": k,
                    "max_mia_accuracy": result.max_mia_accuracy,
                    "max_mia_tpr_at_1_fpr": result.max_mia_tpr,
                    "max_test_accuracy": result.max_test_accuracy,
                    "models_sent_per_node": result.total_messages
                    / config.n_nodes,
                }
            )
        out["settings"][setting] = rows
    return out


def figure6(
    scale: str = "tiny",
    dataset: str = "purchase100",
    betas: tuple[float | None, ...] = (None, 0.5, 0.1),
    view_size: int = 2,
    seed: int = 0,
) -> dict:
    """RQ5 — non-i.i.d. data (Dirichlet beta), static vs dynamic."""
    out: dict = {"dataset": dataset, "view_size": view_size, "series": {}}
    for beta in betas:
        label = "iid" if beta is None else f"beta={beta}"
        for setting, dynamic in (("static", False), ("dynamic", True)):
            config = scaled_config(
                dataset,
                scale,
                name=f"fig6-{label}-{setting}",
                protocol="samo",
                view_size=view_size,
                dynamic=dynamic,
                beta=beta,
                seed=seed,
            )
            out["series"][f"{label}-{setting}"] = tradeoff_series(
                run_experiment(config)
            )
    return out


def figure7(
    scale: str = "tiny",
    datasets: tuple[str, ...] = ALL_DATASETS,
    view_size: int = 2,
    seed: int = 0,
) -> dict:
    """RQ6 — MIA vulnerability vs generalization error scatter."""
    out: dict = {"view_size": view_size, "datasets": {}}
    for dataset in datasets:
        per_setting = {}
        for setting, dynamic in (("static", False), ("dynamic", True)):
            config = scaled_config(
                dataset,
                scale,
                name=f"fig7-{dataset}-{setting}",
                protocol="samo",
                view_size=view_size,
                dynamic=dynamic,
                seed=seed,
            )
            series = tradeoff_series(run_experiment(config))
            per_setting[setting] = {
                "generalization_error": series["generalization_error"],
                "mia_accuracy": series["mia_accuracy"],
            }
        out["datasets"][dataset] = per_setting
    return out


def figure8(
    scale: str = "tiny",
    dataset: str = "purchase100",
    view_size: int = 2,
    seed: int = 0,
) -> dict:
    """RQ6 — MIA accuracy and generalization error over rounds."""
    out: dict = {"dataset": dataset, "view_size": view_size, "settings": {}}
    for setting, dynamic in (("static", False), ("dynamic", True)):
        config = scaled_config(
            dataset,
            scale,
            name=f"fig8-{setting}",
            protocol="samo",
            view_size=view_size,
            dynamic=dynamic,
            seed=seed,
        )
        result = run_experiment(config)
        out["settings"][setting] = {
            "rounds": np.arange(len(result.rounds)),
            "mia_accuracy": result.series("mia_accuracy"),
            "generalization_error": (
                result.series("local_train_accuracy")
                - result.series("local_test_accuracy")
            ),
        }
    return out


def figure9(
    scale: str = "tiny",
    dataset: str = "purchase100",
    epsilons: tuple[float | None, ...] = (50.0, 25.0, 15.0, 10.0, None),
    view_size: int = 2,
    seed: int = 0,
) -> dict:
    """RQ7 — DP-SGD budgets (epsilon) x static/dynamic, SAMO.

    ``None`` in ``epsilons`` runs the non-DP baseline the paper quotes
    above each DP panel.
    """
    out: dict = {"dataset": dataset, "view_size": view_size, "rows": []}
    for epsilon in epsilons:
        for setting, dynamic in (("static", False), ("dynamic", True)):
            label = "non-dp" if epsilon is None else f"eps={epsilon:g}"
            config = scaled_config(
                dataset,
                scale,
                name=f"fig9-{label}-{setting}",
                protocol="samo",
                view_size=view_size,
                dynamic=dynamic,
                dp_epsilon=epsilon,
                seed=seed,
            )
            result = run_experiment(config)
            out["rows"].append(
                {
                    "epsilon": epsilon,
                    "setting": setting,
                    "max_mia_accuracy": result.max_mia_accuracy,
                    "max_mia_tpr_at_1_fpr": result.max_mia_tpr,
                    "max_test_accuracy": result.max_test_accuracy,
                    "noise_multiplier": result.metadata["noise_multiplier"],
                }
            )
    return out


def figure10(
    n: int = 150,
    view_sizes: tuple[int, ...] = (2, 5, 10, 25),
    iterations: int = 125,
    runs: int = 50,
    seed: int = 0,
) -> dict:
    """Section 4 — lambda2(W*) decay for static vs dynamic k-regular
    graphs. Runs at the paper's full n=150 by default (it is cheap)."""
    rng = np.random.default_rng(seed)
    out: dict = {"n": n, "iterations": iterations, "runs": runs, "curves": {}}
    for k in view_sizes:
        for setting, dynamic in (("static", False), ("dynamic", True)):
            decay = simulate_lambda2_decay(
                n, k, iterations, dynamic=dynamic, runs=runs, rng=rng
            )
            out["curves"][f"{setting}-{k}reg"] = {
                "mean": decay.mean,
                "std": decay.std,
            }
    return out
