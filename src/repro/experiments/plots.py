"""Terminal plotting for figure series (no matplotlib available
offline).

Renders one or more numeric series as an ASCII chart so CLI users can
eyeball the paper's trends — MIA climbing over rounds, lambda2
decaying, static/dynamic gaps — directly in a terminal.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["sparkline", "ascii_chart"]

_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values, width: int = 60) -> str:
    """One-line intensity strip of a series, resampled to ``width``."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return ""
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        return ""
    if arr.size > width:
        # Average-pool down to the target width.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([arr[a:b].mean() for a, b in zip(edges, edges[1:])])
    lo, hi = float(arr.min()), float(arr.max())
    span = hi - lo
    out = []
    for v in arr:
        frac = 0.5 if span == 0 else (v - lo) / span
        idx = min(len(_SPARK_LEVELS) - 1, int(frac * (len(_SPARK_LEVELS) - 1)))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def ascii_chart(
    series: dict[str, "np.ndarray"],
    width: int = 64,
    height: int = 12,
    logy: bool = False,
) -> str:
    """Multi-series ASCII line chart.

    Each series gets a marker character; the y-axis is shared (optionally
    log-scaled, for lambda2-style decays). Returns a printable block.
    """
    if not series:
        return "(no series)"
    markers = "ox+*#@%&"
    cleaned: dict[str, np.ndarray] = {}
    for name, values in series.items():
        arr = np.asarray(values, dtype=np.float64)
        arr = arr[np.isfinite(arr)]
        if logy:
            arr = arr[arr > 0]
            arr = np.log10(arr)
        if arr.size:
            cleaned[name] = arr
    if not cleaned:
        return "(no finite data)"
    lo = min(float(a.min()) for a in cleaned.values())
    hi = max(float(a.max()) for a in cleaned.values())
    span = hi - lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (name, arr), marker in zip(cleaned.items(), markers):
        n = arr.size
        for col in range(width):
            # Nearest-sample resampling onto the column grid.
            src = 0 if n == 1 else int(round(col * (n - 1) / (width - 1)))
            frac = (arr[src] - lo) / span
            row = height - 1 - min(height - 1, int(frac * (height - 1)))
            grid[row][col] = marker
    top_label = f"{10**hi:.2e}" if logy else f"{hi:.3f}"
    bot_label = f"{10**lo:.2e}" if logy else f"{lo:.3f}"
    lines = []
    for i, row in enumerate(grid):
        prefix = top_label if i == 0 else (bot_label if i == height - 1 else "")
        lines.append(f"{prefix:>10} |{''.join(row)}")
    legend = "  ".join(
        f"{marker}={name}"
        for (name, _), marker in zip(cleaned.items(), markers)
    )
    lines.append(f"{'':>10} +{'-' * width}")
    lines.append(f"{'':>11}{legend}")
    return "\n".join(lines)
