"""Persistence for experiment results.

Runs are expensive at larger scales; these helpers serialize
:class:`~repro.metrics.records.RunResult` to JSON (lossless) and CSV
(per-round rows for plotting in any tool), and load them back.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path

from repro.metrics.records import RunResult

__all__ = ["save_result", "load_result", "result_to_csv", "results_to_summary_csv"]

_CSV_COLUMNS = [
    "round_index",
    "global_test_accuracy",
    "local_train_accuracy",
    "local_test_accuracy",
    "mia_accuracy",
    "mia_tpr_at_1_fpr",
    "mia_auc",
    "max_mia_tpr_at_1_fpr",
    "canary_tpr_at_1_fpr",
    "messages_sent",
    "epsilon",
    "model_spread",
]


def save_result(result: RunResult, path: str | Path) -> Path:
    """Write a run to JSON (``RunResult.to_json``). Returns the path.

    Write-then-rename: runs are expensive, and a crash mid-write must
    not leave a truncated file where a loadable result (or nothing, the
    signal campaign resume keys on) should be.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(result.to_json())
    os.replace(tmp, path)
    return path


def load_result(path: str | Path) -> RunResult:
    """Read a run previously written by :func:`save_result`."""
    path = Path(path)
    try:
        return RunResult.from_json(path.read_text())
    except ValueError as exc:
        raise ValueError(f"{path} is not a saved RunResult: {exc}") from exc


def result_to_csv(result: RunResult, path: str | Path) -> Path:
    """Write one row per round; columns follow Section 3.2 metrics."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_COLUMNS)
        for record in result.rounds:
            row = record.to_dict()
            writer.writerow([row[c] for c in _CSV_COLUMNS])
    return path


def results_to_summary_csv(
    results: dict[str, RunResult], path: str | Path
) -> Path:
    """Write one summary row per run (the headline-numbers table)."""
    path = Path(path)
    rows = [result.summary() for result in results.values()]
    if not rows:
        raise ValueError("no results to summarize")
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
    return path
