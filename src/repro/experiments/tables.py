"""Renderers for the paper's tables.

Table 1 (dataset characteristics) and Table 2 (training configuration)
are reproduced both as structured rows (for tests) and as aligned text
(for the benchmark harness output).
"""

from __future__ import annotations

from repro.data.datasets import make_dataset
from repro.experiments.configs import dataset_model_summary, table2_rows
from repro.nn.models import build_model
from repro.nn.serialize import num_parameters

__all__ = ["table1", "table2", "render_rows", "verify_table1_shapes"]


def render_rows(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render dict rows as an aligned plain-text table."""
    if not rows:
        return "(empty)"
    columns = columns or list(rows[0].keys())
    widths = {
        c: max(len(str(c)), max(len(str(r.get(c, ""))) for r in rows))
        for c in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    sep = "  ".join("-" * widths[c] for c in columns)
    lines = [header, sep]
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def table1() -> list[dict]:
    """Table 1: dataset characteristics (paper-scale numbers)."""
    return dataset_model_summary()


def table2() -> list[dict]:
    """Table 2: training configuration per dataset."""
    return table2_rows()


def verify_table1_shapes(image_size: int = 8, num_features: int = 64) -> list[dict]:
    """Instantiate every dataset/model pair at reduced scale and report
    actual shapes and parameter counts — the executable counterpart of
    Tables 1 and 2."""
    rows = []
    specs = {
        "cifar10": dict(arch="cnn", channels=3, classes=10),
        "cifar100": dict(arch="resnet8", channels=3, classes=100),
        "fashion_mnist": dict(arch="cnn", channels=1, classes=10),
        "purchase100": dict(arch="mlp", channels=None, classes=100),
    }
    for name, spec in specs.items():
        kwargs = (
            {"num_features": num_features}
            if spec["arch"] == "mlp"
            else {"image_size": image_size}
        )
        train, test = make_dataset(name, n_train=64, n_test=32, seed=0, **kwargs)
        model = build_model(
            spec["arch"],
            in_channels=spec["channels"] or 3,
            image_size=image_size,
            in_features=num_features,
            num_classes=spec["classes"],
            width=4,
            hidden=(32, 16),
        )
        rows.append(
            {
                "dataset": name,
                "train_samples": len(train),
                "test_samples": len(test),
                "input_shape": train.input_shape,
                "classes": train.num_classes,
                "model": spec["arch"],
                "parameters": num_parameters(model),
            }
        )
    return rows
