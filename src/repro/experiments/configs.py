"""Experiment configurations: Table 2 of the paper plus scaled presets.

The paper trains 150 nodes (60 on CIFAR-100) for 250-500 rounds on
full datasets; that is CPU-days in pure numpy, so three presets are
provided:

* ``tiny``  — seconds per run; used by the test suite and benchmarks.
* ``small`` — minutes per run; clearer separation between settings.
* ``paper`` — the paper's full scale (Table 2 hyperparameters,
  150/60 nodes, full dataset sizes). Runnable, given time.

All presets keep the Table 2 learning rate / momentum / weight decay /
local-epoch values per dataset; only the scale knobs change.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.study import StudyConfig

__all__ = [
    "SCALES",
    "TABLE2",
    "scaled_config",
    "paper_table2_config",
    "table2_rows",
    "dataset_model_summary",
]


@dataclass(frozen=True)
class _Table2Row:
    """One row of Table 2 (training configuration)."""

    dataset: str
    model: str
    parameters: str
    learning_rate: float
    momentum: float
    weight_decay: float
    local_epochs: int
    rounds: int


TABLE2: dict[str, _Table2Row] = {
    "cifar10": _Table2Row("cifar10", "CNN", "124k", 0.01, 0.0, 5e-4, 3, 250),
    "cifar100": _Table2Row("cifar100", "ResNet-8", "1.2M", 0.001, 0.9, 5e-4, 5, 500),
    "fashion_mnist": _Table2Row(
        "fashion_mnist", "CNN", "124k", 0.01, 0.9, 5e-4, 3, 250
    ),
    "purchase100": _Table2Row("purchase100", "MLP", "1.3M", 0.01, 0.9, 5e-4, 10, 250),
}

# Table 1 (dataset characteristics) as structured data.
TABLE1: dict[str, dict] = {
    "cifar10": {
        "train_set": 50_000,
        "test_set": 10_000,
        "input_size": (32, 32, 3),
        "classes": 10,
        "model": "CNN",
        "description": "Color images across 10 classes including animals, vehicles",
    },
    "cifar100": {
        "train_set": 50_000,
        "test_set": 10_000,
        "input_size": (32, 32, 3),
        "classes": 100,
        "model": "ResNet-8",
        "description": "Fine-grained color images with 100 object classes",
    },
    "fashion_mnist": {
        "train_set": 60_000,
        "test_set": 10_000,
        "input_size": (28, 28, 1),
        "classes": 10,
        "model": "CNN",
        "description": "Grayscale images of clothing and fashion accessories",
    },
    "purchase100": {
        "train_set": 157_859,
        "test_set": 39_465,
        "input_size": (600,),
        "classes": 100,
        "model": "MLP",
        "description": "A tabular dataset of customer purchases to classify buying behavior",
    },
}


@dataclass(frozen=True)
class _Scale:
    """Scale knobs shared across datasets for one preset."""

    n_nodes: int
    rounds: int
    n_train: int
    n_test: int
    train_per_node: int
    test_per_node: int
    image_size: int
    model_width: int
    mlp_hidden: tuple[int, ...]
    num_features: int
    max_attack_samples: int
    max_global_test: int
    batch_size: int
    local_epoch_cap: int | None
    n_canaries: int


SCALES: dict[str, _Scale] = {
    "tiny": _Scale(
        n_nodes=8,
        rounds=4,
        n_train=700,
        n_test=200,
        train_per_node=32,
        test_per_node=16,
        image_size=8,
        model_width=4,
        mlp_hidden=(64, 32),
        num_features=128,
        max_attack_samples=64,
        max_global_test=128,
        batch_size=16,
        local_epoch_cap=2,
        n_canaries=16,
    ),
    "small": _Scale(
        n_nodes=16,
        rounds=12,
        n_train=2_500,
        n_test=600,
        train_per_node=64,
        test_per_node=32,
        image_size=16,
        model_width=8,
        mlp_hidden=(128, 64, 32),
        num_features=300,
        max_attack_samples=128,
        max_global_test=256,
        batch_size=32,
        local_epoch_cap=None,
        n_canaries=40,
    ),
    "paper": _Scale(
        n_nodes=150,
        rounds=250,
        n_train=50_000,
        n_test=10_000,
        train_per_node=256,
        test_per_node=128,
        image_size=32,
        model_width=16,
        mlp_hidden=(1024, 512, 256),
        num_features=600,
        max_attack_samples=256,
        max_global_test=1024,
        batch_size=32,
        local_epoch_cap=None,
        n_canaries=600,
    ),
}


def scaled_config(
    dataset: str,
    scale: str = "tiny",
    **overrides,
) -> StudyConfig:
    """Build a StudyConfig for ``dataset`` at the given preset scale.

    Table 2 hyperparameters (learning rate, momentum, weight decay,
    local epochs) are applied per dataset; ``overrides`` are forwarded
    to :meth:`StudyConfig.with_overrides` last, so callers can vary
    protocol, dynamics, view size, beta, DP, etc.
    """
    if dataset not in TABLE2:
        raise ValueError(f"unknown dataset {dataset!r}; choose from {sorted(TABLE2)}")
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    row = TABLE2[dataset]
    s = SCALES[scale]
    local_epochs = row.local_epochs
    if s.local_epoch_cap is not None:
        local_epochs = min(local_epochs, s.local_epoch_cap)
    n_nodes = s.n_nodes
    rounds = s.rounds
    if scale == "paper":
        if dataset == "cifar100":
            n_nodes = 60  # the paper uses 60 nodes on CIFAR-100
        rounds = row.rounds
    config = StudyConfig(
        name=f"{dataset}-{scale}",
        dataset=dataset,
        n_train=s.n_train,
        n_test=s.n_test,
        image_size=s.image_size,
        num_features=s.num_features,
        train_per_node=s.train_per_node,
        test_per_node=s.test_per_node,
        model_width=s.model_width,
        mlp_hidden=s.mlp_hidden,
        n_nodes=n_nodes,
        rounds=rounds,
        learning_rate=row.learning_rate,
        momentum=row.momentum,
        weight_decay=row.weight_decay,
        local_epochs=local_epochs,
        batch_size=s.batch_size,
        max_attack_samples=s.max_attack_samples,
        max_global_test=s.max_global_test,
    )
    if overrides:
        config = config.with_overrides(**overrides)
    return config


def paper_table2_config(dataset: str, **overrides) -> StudyConfig:
    """The paper-scale configuration for ``dataset`` (Table 2 row)."""
    return scaled_config(dataset, scale="paper", **overrides)


def table2_rows() -> list[dict]:
    """Table 2 as a list of dict rows (for rendering and tests)."""
    return [
        {
            "dataset": row.dataset,
            "model": row.model,
            "parameters": row.parameters,
            "learning_rate": row.learning_rate,
            "momentum": row.momentum,
            "weight_decay": row.weight_decay,
            "local_epochs": row.local_epochs,
            "rounds": row.rounds,
        }
        for row in TABLE2.values()
    ]


def dataset_model_summary() -> list[dict]:
    """Table 1 as a list of dict rows."""
    return [
        {"dataset": name, **info} for name, info in TABLE1.items()
    ]
