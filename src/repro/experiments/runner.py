"""Campaign execution layer over :mod:`repro.core.study`.

A :class:`Campaign` is an ordered set of uniquely-named
:class:`~repro.core.study.StudyConfig`\\ s plus an execution policy:

* **sweep builders** — :meth:`Campaign.from_grid` (cartesian product)
  and :meth:`Campaign.from_zip` (element-wise) derive configs from a
  base config by overriding flat knobs or whole config groups;
* **parallel execution** — :meth:`Campaign.run` fans independent
  studies out over a process pool, sizing it so per-study workers
  (``n_workers`` / ``n_shards``) do not oversubscribe the machine;
* **keyed results** — results come back as ``{config.name: RunResult}``
  in config order, the shape the figure pipeline consumes;
* **resume** — with an ``out_dir``, each finished study is written as
  ``<name>.json`` immediately; a re-run loads finished studies from
  disk and only executes the missing ones, so an interrupted campaign
  continues where it stopped.

:func:`run_many` stays as the serial compat wrapper.
"""

from __future__ import annotations

import json
import os
from itertools import product
from time import perf_counter
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.core.study import StudyConfig, run_study
from repro.experiments.io import load_result, save_result
from repro.metrics.records import RunResult
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["Campaign", "run_experiment", "run_many"]

# Mirrors the executor pool caps in repro.gossip.engine / .shard.
_MAX_AUTO_PROCS = 8


def _study_process_demand(config: StudyConfig) -> int:
    """Worker processes one study will occupy while running."""
    cpus = os.cpu_count() or 1
    if config.engine != "flat":
        return 1
    if config.executor == "process":
        return config.n_workers or min(cpus, _MAX_AUTO_PROCS)
    if config.executor == "sharded":
        shards = config.n_shards or min(cpus, _MAX_AUTO_PROCS)
        return min(shards, config.n_nodes)
    return 1


def _run_study_timed(
    config: StudyConfig, submitted_ts: float
) -> tuple[RunResult, float, float]:
    """Pool-side wrapper: run one study and report (result, queue-wait
    seconds, wall seconds). Uses ``perf_counter`` — on the platforms we
    run on it reads the system-wide monotonic clock, so the wait stays
    comparable across the parent/worker process boundary and cannot go
    negative under NTP slew the way ``time.time()`` could."""
    started = perf_counter()
    result = run_study(config)
    return result, started - submitted_ts, perf_counter() - started


def _axis_values(name: str, values) -> list:
    if isinstance(values, (str, bytes)) or not isinstance(values, Iterable):
        raise ValueError(
            f"sweep axis {name!r} needs an iterable of values, "
            f"got {type(values).__name__}"
        )
    values = list(values)
    if not values:
        raise ValueError(f"sweep axis {name!r} has no values")
    return values


def _axis_label(value) -> str:
    if isinstance(value, float):
        return format(value, "g")
    return str(value)


class Campaign:
    """An ordered, uniquely-named set of studies with shared execution.

    ``configs`` must carry unique names — figures rely on them as
    series labels and the campaign keys results (and result files) by
    them. ``out_dir`` enables persistence + resume.
    """

    def __init__(
        self,
        configs: Sequence[StudyConfig],
        out_dir: str | Path | None = None,
        telemetry: Telemetry | None = None,
    ):
        # Campaign-level telemetry records queue-wait and wall-clock
        # per study in the *parent* process; it is not forwarded into
        # the studies themselves, so result files are byte-identical
        # whether the campaign runs instrumented or not (and the
        # serial and pooled paths stay symmetric).
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel = self.telemetry if self.telemetry.enabled else None
        self.configs = list(configs)
        if not self.configs:
            raise ValueError("a campaign needs at least one config")
        names = [config.name for config in self.configs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate config names: {names}")
        self.out_dir = Path(out_dir) if out_dir is not None else None

    # -- sweep builders -------------------------------------------------

    @classmethod
    def _from_combos(
        cls,
        base: StudyConfig,
        out_dir: str | Path | None,
        axis_names: Sequence[str],
        combos: Iterable[tuple],
    ) -> "Campaign":
        """Shared builder core: one config per axis-value combination,
        named ``{base.name}-{key}={value}-...``. Unknown axis names are
        rejected by ``with_overrides`` with the list of valid fields."""
        configs = []
        for combo in combos:
            overrides = dict(zip(axis_names, combo))
            suffix = "-".join(
                f"{key}={_axis_label(value)}" for key, value in overrides.items()
            )
            configs.append(
                base.with_overrides(name=f"{base.name}-{suffix}", **overrides)
            )
        return cls(configs, out_dir=out_dir)

    @classmethod
    def from_grid(
        cls,
        base: StudyConfig,
        out_dir: str | Path | None = None,
        **axes,
    ) -> "Campaign":
        """Cartesian product over ``axes`` (flat knobs or group names),
        in keyword order."""
        if not axes:
            raise ValueError("from_grid needs at least one sweep axis")
        axis_values = {
            name: _axis_values(name, values) for name, values in axes.items()
        }
        return cls._from_combos(
            base, out_dir, list(axis_values), product(*axis_values.values())
        )

    @classmethod
    def from_zip(
        cls,
        base: StudyConfig,
        out_dir: str | Path | None = None,
        **axes,
    ) -> "Campaign":
        """Element-wise sweep: axis i of every keyword varies together
        (all axes must have equal length)."""
        if not axes:
            raise ValueError("from_zip needs at least one sweep axis")
        axis_values = {
            name: _axis_values(name, values) for name, values in axes.items()
        }
        lengths = {name: len(values) for name, values in axis_values.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError(
                f"from_zip axes must have equal lengths, got {lengths}"
            )
        return cls._from_combos(
            base, out_dir, list(axis_values), zip(*axis_values.values())
        )

    # -- persistence ----------------------------------------------------

    def result_path(self, name: str) -> Path:
        """Where one study's RunResult JSON lives under ``out_dir``."""
        if self.out_dir is None:
            raise ValueError("this campaign has no out_dir")
        safe = name.replace(os.sep, "_")
        return self.out_dir / f"{safe}.json"

    @property
    def manifest_path(self) -> Path:
        """The out_dir's name -> config-dict manifest (resume guard).
        Dot-prefixed so it can never collide with a result file, whose
        name comes from a config name."""
        if self.out_dir is None:
            raise ValueError("this campaign has no out_dir")
        return self.out_dir / ".campaign-manifest.json"

    def _check_and_write_manifest(self) -> None:
        """Refuse to resume a directory built from different configs.

        Config names encode only the sweep axes, so a changed base
        config (e.g. a different ``--set rounds=``) would otherwise
        silently serve stale results under the new campaign's labels.
        """
        if self.out_dir is None:
            return
        manifest: dict = {}
        if self.manifest_path.exists():
            manifest = json.loads(self.manifest_path.read_text())
        for config in self.configs:
            stored = manifest.get(config.name)
            if stored is not None and stored != config.to_dict():
                raise ValueError(
                    f"out_dir {self.out_dir} holds results for a different "
                    f"configuration of {config.name!r} (see "
                    f"{self.manifest_path}); use a fresh out_dir or delete "
                    f"the stale results"
                )
            manifest[config.name] = config.to_dict()
        self.out_dir.mkdir(parents=True, exist_ok=True)
        tmp = self.manifest_path.with_name(self.manifest_path.name + ".tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        os.replace(tmp, self.manifest_path)

    def _load_completed(self) -> dict[str, RunResult]:
        """Results already on disk (the resume set). Unreadable files
        (e.g. an interrupted write from a pre-atomic-save version) are
        treated as not completed and recomputed."""
        completed: dict[str, RunResult] = {}
        if self.out_dir is None or not self.out_dir.exists():
            return completed
        for config in self.configs:
            path = self.result_path(config.name)
            if path.exists():
                try:
                    completed[config.name] = load_result(path)
                except ValueError:
                    continue
        return completed

    def _save(self, result: RunResult) -> None:
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
            save_result(result, self.result_path(result.config_name))

    # -- execution ------------------------------------------------------

    def default_jobs(self, configs: Sequence[StudyConfig] | None = None) -> int:
        """Pool size that respects per-study worker/shard demand: with
        studies that each occupy w processes, run ``cpus // w`` of them
        at a time (at least one, never more than the study count)."""
        configs = self.configs if configs is None else configs
        if not configs:
            return 1
        cpus = os.cpu_count() or 1
        demand = max(_study_process_demand(config) for config in configs)
        return max(1, min(len(configs), cpus // max(1, demand)))

    def run(self, jobs: int | None = None) -> dict[str, RunResult]:
        """Execute every study not already on disk; return all results
        keyed by config name, in config order.

        ``jobs`` is the number of studies in flight at once: 1 runs
        them serially in-process (the exact ``run_many`` code path),
        ``None`` picks :meth:`default_jobs`. Each finished study is
        persisted to ``out_dir`` immediately (atomic writes), so a
        killed campaign loses at most the studies that were mid-run;
        the directory's manifest rejects a resume under a changed base
        config instead of serving stale results.
        """
        self._check_and_write_manifest()
        results = self._load_completed()
        pending = [c for c in self.configs if c.name not in results]
        if jobs is None:
            jobs = self.default_jobs(pending)
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        tel = self._tel
        if tel is not None:
            queue_hist = tel.registry.histogram(
                "repro_campaign_queue_wait_ms",
                "Time a study spent queued before it started running",
                labels=("study",),
            )
            wall_hist = tel.registry.histogram(
                "repro_campaign_study_wall_ms",
                "Wall-clock of one campaign study, end to end",
                labels=("study",),
            )
            submitted_ts = perf_counter()
        if jobs == 1 or len(pending) <= 1:
            for config in pending:
                if tel is None:
                    result = run_study(config)
                else:
                    started = perf_counter()
                    queue_hist.observe(
                        (started - submitted_ts) * 1000.0, study=config.name
                    )
                    with tel.tracer.span("campaign.study", study=config.name):
                        result = run_study(config)
                    wall_hist.observe(
                        (perf_counter() - started) * 1000.0, study=config.name
                    )
                self._save(result)
                results[config.name] = result
        else:
            from concurrent.futures import ProcessPoolExecutor, as_completed

            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                if tel is None:
                    futures = {
                        pool.submit(run_study, config): config
                        for config in pending
                    }
                else:
                    futures = {
                        pool.submit(_run_study_timed, config, submitted_ts): config
                        for config in pending
                    }
                # Persist in completion order, not submission order, and
                # drain every future before propagating a failure: one
                # crashed study must not discard siblings that finished
                # (they are on disk for the resume).
                first_error: BaseException | None = None
                for future in as_completed(futures):
                    try:
                        out = future.result()
                    except BaseException as exc:
                        if first_error is None:
                            first_error = exc
                        continue
                    name = futures[future].name
                    if tel is None:
                        result = out
                    else:
                        result, wait_s, wall_s = out
                        queue_hist.observe(wait_s * 1000.0, study=name)
                        wall_hist.observe(wall_s * 1000.0, study=name)
                        tel.tracer.event("campaign.study_done", study=name)
                    self._save(result)
                    results[name] = result
                if first_error is not None:
                    raise first_error
        return {config.name: results[config.name] for config in self.configs}


def run_experiment(config: StudyConfig) -> RunResult:
    """Run one configured study (alias of :func:`repro.core.run_study`)."""
    return run_study(config)


def run_many(
    configs: list[StudyConfig],
    jobs: int = 1,
    out_dir: str | Path | None = None,
) -> dict[str, RunResult]:
    """Run several studies and key results by config name.

    Compat wrapper over :class:`Campaign`; the default ``jobs=1``
    preserves the historical serial in-process behavior bit for bit
    (including the empty-list case, which returns ``{}``).
    Names must be unique — figures rely on them as series labels.
    """
    if not configs:
        return {}
    return Campaign(configs, out_dir=out_dir).run(jobs=jobs)
