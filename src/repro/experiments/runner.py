"""Thin execution layer over :mod:`repro.core.study`."""

from __future__ import annotations

from repro.core.study import StudyConfig, run_study
from repro.metrics.records import RunResult

__all__ = ["run_experiment", "run_many"]


def run_experiment(config: StudyConfig) -> RunResult:
    """Run one configured study (alias of :func:`repro.core.run_study`)."""
    return run_study(config)


def run_many(configs: list[StudyConfig]) -> dict[str, RunResult]:
    """Run several studies and key results by config name.

    Names must be unique — figures rely on them as series labels.
    """
    names = [c.name for c in configs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate config names: {names}")
    return {config.name: run_study(config) for config in configs}
