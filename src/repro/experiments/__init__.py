"""Experiment configurations and figure/table regeneration.

Each ``figureN`` function reproduces the data series behind the paper's
corresponding figure; each ``tableN`` function renders the paper's
tables. All accept a ``scale`` preset ("tiny", "small", "paper") so
the same code runs in seconds on CPU or at full paper scale.
"""

from repro.experiments.configs import (
    SCALES,
    scaled_config,
    paper_table2_config,
    table2_rows,
    dataset_model_summary,
)
from repro.experiments.runner import Campaign, run_experiment, run_many
from repro.experiments.io import (
    save_result,
    load_result,
    result_to_csv,
    results_to_summary_csv,
)
from repro.experiments import figures, tables

__all__ = [
    "SCALES",
    "scaled_config",
    "paper_table2_config",
    "table2_rows",
    "dataset_model_summary",
    "Campaign",
    "run_experiment",
    "run_many",
    "save_result",
    "load_result",
    "result_to_csv",
    "results_to_summary_csv",
    "figures",
    "tables",
]
