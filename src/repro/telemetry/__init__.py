"""Unified telemetry for the whole stack: tracing spans + metrics.

One :class:`Telemetry` object bundles a :class:`~.tracing.Tracer` and
a metric :class:`~.metrics.Registry` and travels *by reference* from
the outermost layer down: the service's ``JobManager`` hands it to
each :class:`~repro.core.study.Study`, which hands it to the flat
engine, the observer and (as shipped deltas) the shard workers; the
CLI builds one for ``repro study --telemetry``. It is **not** part of
``StudyConfig`` — observability must never change ``config_hash``,
cache identity, or any RNG draw (pinned by the determinism tests).

The default everywhere is the shared no-op :data:`NULL_TELEMETRY`
(null tracer + null registry), so un-instrumented runs pay ~zero cost
— the overhead gate in ``benchmarks/test_telemetry_overhead.py``
bounds even the *enabled* round loop at ≤5%.

``annotate_results`` controls whether :meth:`Study.result` embeds a
``metadata["telemetry"]`` summary (wall-clock per round). The service
turns it off: result bytes must stay identical across runs of the
same config (the replay/caching contract), which wall-clock
annotations would break.
"""

from __future__ import annotations

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRIC,
    NULL_REGISTRY,
    OVERFLOW_LABEL,
    Counter,
    Histogram,
    NullRegistry,
    Registry,
)
from repro.telemetry.tracing import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "Tracer",
    "NullTracer",
    "Span",
    "Counter",
    "Histogram",
    "Registry",
    "NullRegistry",
    "DEFAULT_BUCKETS",
    "OVERFLOW_LABEL",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "NULL_TRACER",
]


class Telemetry:
    """A tracer + registry pair with one ``enabled`` switch.

    ``Telemetry()`` is live; ``Telemetry.disabled()`` (or the module
    constant :data:`NULL_TELEMETRY`) is the shared no-op instance every
    instrumented component defaults to.
    """

    def __init__(
        self,
        enabled: bool = True,
        *,
        annotate_results: bool = True,
        max_spans: int = 10_000,
    ) -> None:
        self.enabled = bool(enabled)
        if self.enabled:
            self.tracer: Tracer | NullTracer = Tracer(max_spans=max_spans)
            self.registry: Registry | NullRegistry = Registry()
        else:
            self.tracer = NULL_TRACER
            self.registry = NULL_REGISTRY
        self.annotate_results = bool(annotate_results) and self.enabled

    @classmethod
    def disabled(cls) -> "Telemetry":
        return NULL_TELEMETRY

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Telemetry(enabled={self.enabled})"


NULL_TELEMETRY = Telemetry(enabled=False)
