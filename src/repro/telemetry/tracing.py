"""Nestable tracing spans with bounded buffering and JSONL export.

A :class:`Tracer` keeps one span stack *per thread* (the service runs
several study workers against one tracer), so nesting works without
any caller-side bookkeeping::

    tracer.set_trace_id(request_id)
    with tracer.span("job.execute", job=job_id):
        with tracer.span("study.round", round=0):
            ...

Finished spans land in a bounded buffer (oldest kept — the head of a
trace is the interesting part; overflow is counted, never silent) and
export as one JSON object per line: ``trace_id`` / ``span_id`` /
``parent_id`` reconstruct the tree, ``start_ms`` is relative to the
tracer's epoch so files diff cleanly across runs.

Timing uses ``time.perf_counter`` only — tracing never touches any
RNG, which is what keeps fixed-seed results bit-identical with
telemetry on (pinned by ``tests/telemetry/test_determinism.py``).

:data:`NULL_TRACER` is the disabled default: ``span()`` hands back one
shared no-op context manager, so un-traced paths pay a method call and
nothing else.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from time import perf_counter

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed operation; ``attributes`` are small JSON-ready values."""

    __slots__ = (
        "name", "trace_id", "span_id", "parent_id", "start", "end", "attributes"
    )

    def __init__(self, name, trace_id, span_id, parent_id, start, attributes):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = start
        self.attributes = attributes

    def duration_ms(self) -> float:
        return (self.end - self.start) * 1000.0

    def to_dict(self, epoch: float) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ms": round((self.start - epoch) * 1000.0, 3),
            "duration_ms": round(self.duration_ms(), 3),
            "attributes": self.attributes,
        }


class _SpanHandle:
    """Context manager binding one started span to its tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    @property
    def span(self) -> Span:
        return self._span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attributes["error"] = exc_type.__name__
        self._tracer.end_span(self._span)
        return False


class Tracer:
    """Span factory + bounded finished-span buffer."""

    enabled = True

    def __init__(self, max_spans: int = 10_000):
        if max_spans <= 0:
            raise ValueError("max_spans must be positive")
        self.epoch = perf_counter()
        self.max_spans = max_spans
        self._finished: list[Span] = []
        self._dropped = 0
        self._counter = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- trace context (per thread) ------------------------------------

    def set_trace_id(self, trace_id: str) -> None:
        """Stamp every span this thread starts from now on."""
        self._local.trace_id = str(trace_id)

    @property
    def trace_id(self) -> str:
        return getattr(self._local, "trace_id", "")

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- span lifecycle ------------------------------------------------

    def span(self, name: str, **attributes) -> _SpanHandle:
        """Start a span; use as a context manager (nesting via the
        thread's stack)."""
        return _SpanHandle(self, self.start_span(name, **attributes))

    def start_span(self, name: str, **attributes) -> Span:
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else ""
        with self._lock:
            self._counter += 1
            span_id = f"s{self._counter:06d}"
        span = Span(
            name, self.trace_id, span_id, parent_id, perf_counter(), attributes
        )
        stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        span.end = perf_counter()
        stack = self._stack()
        # Tolerate out-of-order ends (a generator abandoned mid-span):
        # close everything the span was covering.
        while stack:
            top = stack.pop()
            if top is span:
                break
        with self._lock:
            if len(self._finished) < self.max_spans:
                self._finished.append(span)
            else:
                self._dropped += 1

    def event(self, name: str, **attributes) -> None:
        """Record a zero-duration marker span (e.g. an early stop)."""
        self.end_span(self.start_span(name, **attributes))

    # -- inspection / export -------------------------------------------

    def spans(self) -> list[Span]:
        with self._lock:
            return list(self._finished)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def export(self) -> list[dict]:
        """Finished spans as JSON-ready dicts, in completion order."""
        epoch = self.epoch
        return [span.to_dict(epoch) for span in self.spans()]

    def dump_jsonl(self, path: str | Path) -> int:
        """Write one JSON object per finished span; returns the count."""
        records = self.export()
        payload = "".join(
            json.dumps(r, sort_keys=True, separators=(",", ":")) + "\n"
            for r in records
        )
        Path(path).write_text(payload, encoding="utf-8")
        return len(records)

    def reset(self) -> None:
        with self._lock:
            self._finished = []
            self._dropped = 0


class _NullSpanHandle:
    __slots__ = ()

    span = None

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpanHandle()


class NullTracer:
    """Disabled default: one shared no-op handle, nothing recorded."""

    enabled = False
    epoch = 0.0
    trace_id = ""
    dropped = 0

    def set_trace_id(self, trace_id: str) -> None:
        pass

    def span(self, name: str, **attributes) -> _NullSpanHandle:
        return _NULL_SPAN

    def start_span(self, name: str, **attributes):
        return None

    def end_span(self, span) -> None:
        pass

    def event(self, name: str, **attributes) -> None:
        pass

    def spans(self) -> list:
        return []

    def export(self) -> list:
        return []

    def dump_jsonl(self, path) -> int:
        return 0

    def reset(self) -> None:
        pass


NULL_TRACER = NullTracer()
