"""Process-local metrics: counters and histograms with fixed label sets.

Design constraints (see docs/observability.md):

* **stdlib only** — the service and the engine must not grow a
  dependency for observability.
* **Fixed label sets** — a metric declares its label *names* once;
  recording with a different set is a programming error and raises.
  Label *values* are bounded per metric (``max_series``); once the
  budget is spent, new label combinations collapse into a single
  ``other`` series instead of growing without bound (the same
  cardinality discipline ``MetricsMiddleware`` applies to routes).
* **Cheap when hot** — the engine records per *round*, not per tick:
  phase timings accumulate in flat floats inside the simulator and are
  flushed here once per round (mmb-style "counters are flat arrays
  flushed at batch boundaries"). For the remaining hot calls,
  :meth:`Counter.child` / :meth:`Histogram.child` pre-resolve the
  label key so the per-call work is one dict update under a lock.
* **Delta shipping** — shard workers record into a worker-local
  :class:`Registry` and ship :meth:`Registry.collect_delta` back with
  task results, exactly the way ``fallback_counts`` deltas already
  travel over the shard pipes; the parent folds them in with
  :meth:`Registry.merge_delta`. Deltas are plain picklable dicts.

The no-op twins (:data:`NULL_REGISTRY`, shared :data:`NULL_METRIC`)
are what disabled telemetry hands out: recording into them is a single
no-op method call, so un-instrumented paths pay ~nothing.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Histogram",
    "Registry",
    "NullRegistry",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "OVERFLOW_LABEL",
]

# Millisecond-oriented defaults: the instrumented paths span ~0.1 ms
# (one executor batch) to multi-second rounds.
DEFAULT_BUCKETS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

# Label value every over-budget series collapses into.
OVERFLOW_LABEL = "other"


def _fmt(value: float) -> str:
    """Prometheus-style number: integral values render without a dot."""
    value = float(value)
    if value.is_integer():
        return str(int(value))
    return repr(value)


def _render_labels(names: tuple[str, ...], key: tuple[str, ...]) -> str:
    if not names:
        return ""
    inner = ",".join(f'{n}="{v}"' for n, v in zip(names, key))
    return "{" + inner + "}"


class _Metric:
    """Shared label plumbing for :class:`Counter` and :class:`Histogram`."""

    kind = ""

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        max_series: int = 64,
    ) -> None:
        if max_series <= 0:
            raise ValueError("max_series must be positive")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self.max_series = max_series
        self._lock = threading.Lock()
        self._overflow_key = tuple(OVERFLOW_LABEL for _ in self.label_names)

    def _key(self, labels: dict) -> tuple[str, ...]:
        """Resolve ``**labels`` to a series key; the set is fixed."""
        if len(labels) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        try:
            return tuple(str(labels[n]) for n in self.label_names)
        except KeyError as exc:
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            ) from exc

    def _bound_key_locked(self, key: tuple, series: dict) -> tuple:
        """Collapse over-budget *new* label combinations to ``other``."""
        if key in series or len(series) < self.max_series:
            return key
        return self._overflow_key

    def child(self, **labels) -> "_BoundSeries":
        """Pre-resolve a label set for hot paths (one dict op per record)."""
        return _BoundSeries(self, self._key(labels))


class _BoundSeries:
    """A metric with its label key already resolved and bounded."""

    __slots__ = ("_metric", "_series_key")

    def __init__(self, metric: _Metric, series_key: tuple):
        self._metric = metric
        self._series_key = series_key

    def inc(self, amount: float = 1.0) -> None:
        self._metric._record(self._series_key, amount)

    def observe(self, value: float) -> None:
        self._metric._record(self._series_key, value)


class Counter(_Metric):
    """Monotonic counter over a fixed label set."""

    kind = "counter"

    def __init__(self, name, help="", label_names=(), max_series=64):
        super().__init__(name, help, label_names, max_series)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        self._record(self._key(labels), amount)

    def _record(self, key: tuple, amount: float) -> None:
        with self._lock:
            key = self._bound_key_locked(key, self._values)
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def series(self) -> dict[tuple, float]:
        with self._lock:
            return dict(self._values)

    # -- delta / merge / render ---------------------------------------

    def _collect_delta_locked(self) -> dict:
        values = self._values
        self._values = {}
        return {
            "kind": self.kind,
            "help": self.help,
            "labels": self.label_names,
            "values": values,
        }

    def _merge_values(self, values: dict) -> None:
        with self._lock:
            for key, amount in values.items():
                key = self._bound_key_locked(tuple(key), self._values)
                self._values[key] = self._values.get(key, 0.0) + amount

    def _render_lines(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} counter"]
        for key, value in items:
            lines.append(
                f"{self.name}{_render_labels(self.label_names, key)} {_fmt(value)}"
            )
        return lines

    def _snapshot_series(self) -> list[dict]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            {"labels": dict(zip(self.label_names, key)), "value": value}
            for key, value in items
        ]


class Histogram(_Metric):
    """Fixed-bucket histogram (sum, count, cumulative buckets)."""

    kind = "histogram"

    def __init__(
        self, name, help="", label_names=(), buckets=DEFAULT_BUCKETS, max_series=64
    ):
        super().__init__(name, help, label_names, max_series)
        buckets = tuple(float(b) for b in buckets)
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("buckets must be non-empty and strictly increasing")
        self.buckets = buckets
        # series key -> [bucket counts (+Inf last), sum, count]
        self._series: dict[tuple, list] = {}

    def observe(self, value: float, **labels) -> None:
        self._record(self._key(labels), value)

    def _record(self, key: tuple, value: float) -> None:
        value = float(value)
        with self._lock:
            key = self._bound_key_locked(key, self._series)
            data = self._series.get(key)
            if data is None:
                data = [[0] * (len(self.buckets) + 1), 0.0, 0]
                self._series[key] = data
            data[0][bisect_left(self.buckets, value)] += 1
            data[1] += value
            data[2] += 1

    def count(self, **labels) -> int:
        with self._lock:
            data = self._series.get(self._key(labels))
            return 0 if data is None else data[2]

    def sum(self, **labels) -> float:
        with self._lock:
            data = self._series.get(self._key(labels))
            return 0.0 if data is None else data[1]

    # -- delta / merge / render ---------------------------------------

    def _collect_delta_locked(self) -> dict:
        series = self._series
        self._series = {}
        return {
            "kind": self.kind,
            "help": self.help,
            "labels": self.label_names,
            "buckets": self.buckets,
            "values": {
                key: (list(data[0]), data[1], data[2])
                for key, data in series.items()
            },
        }

    def _merge_values(self, values: dict) -> None:
        with self._lock:
            for key, (counts, total, count) in values.items():
                key = self._bound_key_locked(tuple(key), self._series)
                data = self._series.get(key)
                if data is None:
                    self._series[key] = [list(counts), total, count]
                    continue
                for i, c in enumerate(counts):
                    data[0][i] += c
                data[1] += total
                data[2] += count

    def _render_lines(self) -> list[str]:
        with self._lock:
            items = sorted(
                (key, (list(data[0]), data[1], data[2]))
                for key, data in self._series.items()
            )
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} histogram"]
        bucket_names = self.label_names + ("le",)
        for key, (counts, total, count) in items:
            cumulative = 0
            for bound, c in zip(self.buckets + (float("inf"),), counts):
                cumulative += c
                le = "+Inf" if bound == float("inf") else _fmt(bound)
                labels = _render_labels(bucket_names, key + (le,))
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            labels = _render_labels(self.label_names, key)
            lines.append(f"{self.name}_sum{labels} {_fmt(total)}")
            lines.append(f"{self.name}_count{labels} {count}")
        return lines

    def _snapshot_series(self) -> list[dict]:
        with self._lock:
            items = sorted(
                (key, (data[1], data[2])) for key, data in self._series.items()
            )
        return [
            {"labels": dict(zip(self.label_names, key)), "sum": total, "count": count}
            for key, (total, count) in items
        ]


class Registry:
    """Process-local metric registry: get-or-create, render, deltas.

    ``counter()``/``histogram()`` are idempotent — asking twice for the
    same name returns the same object, so instrumented components can
    each resolve their handles independently; re-declaring a name with
    a different kind or label set raises.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def counter(self, name, help="", labels=(), max_series=64) -> Counter:
        return self._get_or_create(Counter, name, help, tuple(labels), max_series)

    def histogram(
        self, name, help="", labels=(), buckets=DEFAULT_BUCKETS, max_series=64
    ) -> Histogram:
        metric = self._get_or_create(
            Histogram, name, help, tuple(labels), max_series, buckets=buckets
        )
        return metric

    def _get_or_create(self, cls, name, help, labels, max_series, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(
                    name, help, labels, max_series=max_series, **kwargs
                )
                self._metrics[name] = metric
                return metric
        if not isinstance(metric, cls) or metric.label_names != labels:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind} "
                f"with labels {metric.label_names}"
            )
        return metric

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def render(self) -> str:
        """Prometheus-style exposition ('' when nothing was recorded)."""
        with self._lock:
            metrics = [self._metrics[n] for n in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric._render_lines())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict:
        """JSON-ready view: ``{name: {"kind", "series": [...]}}``."""
        with self._lock:
            metrics = [(n, self._metrics[n]) for n in sorted(self._metrics)]
        return {
            name: {"kind": metric.kind, "series": metric._snapshot_series()}
            for name, metric in metrics
        }

    def collect_delta(self) -> dict:
        """Drain recorded values into a picklable delta (definitions stay).

        The shard-worker half of the ``fallback_counts`` pattern:
        ``dict(counts); counts.clear()`` — values move, the registry
        keeps its metric objects for the next batch.
        """
        delta = {}
        with self._lock:
            metrics = list(self._metrics.items())
        for name, metric in metrics:
            with metric._lock:
                payload = metric._collect_delta_locked()
            if payload["values"]:
                delta[name] = payload
        return delta

    def merge_delta(self, delta: dict) -> None:
        """Fold a :meth:`collect_delta` payload in (create-or-add)."""
        for name, payload in delta.items():
            labels = tuple(payload.get("labels", ()))
            if payload.get("kind") == "histogram":
                metric = self.histogram(
                    name,
                    payload.get("help", ""),
                    labels=labels,
                    buckets=tuple(payload.get("buckets", DEFAULT_BUCKETS)),
                )
            else:
                metric = self.counter(name, payload.get("help", ""), labels=labels)
            metric._merge_values(payload.get("values", {}))


class _NullMetric:
    """Accepts every record call and drops it; ``child`` returns itself."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels) -> None:
        pass

    def observe(self, value: float, **labels) -> None:
        pass

    def child(self, **labels) -> "_NullMetric":
        return self

    def value(self, **labels) -> float:
        return 0.0

    def count(self, **labels) -> int:
        return 0

    def sum(self, **labels) -> float:
        return 0.0


NULL_METRIC = _NullMetric()


class NullRegistry:
    """The disabled default: every lookup yields the shared null metric."""

    enabled = False

    def counter(self, name, help="", labels=(), max_series=64):
        return NULL_METRIC

    def histogram(self, name, help="", labels=(), buckets=DEFAULT_BUCKETS,
                  max_series=64):
        return NULL_METRIC

    def get(self, name):
        return None

    def names(self):
        return []

    def render(self) -> str:
        return ""

    def snapshot(self) -> dict:
        return {}

    def collect_delta(self) -> dict:
        return {}

    def merge_delta(self, delta: dict) -> None:
        pass


NULL_REGISTRY = NullRegistry()
