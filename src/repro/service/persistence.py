"""Durable job state: an append-only JSONL journal + compacted snapshot.

The service's job table, dedup index and frame replay buffers live in
process memory; the checkpoint files on disk already survive a crash,
but without a record of *which* job owns *which* checkpoint (and which
frames it had streamed) a restart forgets every submitted study. This
module is that record — the persistence-across-reconfiguration
property the middleware literature treats as first class (dynamic
service reconfiguration, arXiv:cs/0411081; composable userspace
stages, arXiv:1904.11277): a stage can be torn down and rebuilt
without losing the state behind it.

Layout of a ``state_dir``::

    state_dir/
      journal.jsonl     append-only event log (one JSON object/line)
      snapshot.json     periodically-compacted full state (atomic
                        tmp + os.replace, same discipline as
                        benchmarks/conftest.py::update_bench_json)
      checkpoints/      per-job Study checkpoints (written every round
                        while the journal is live)

Journal events (all carry ``"job"``):

==============  ========================================================
``submitted``   ``config`` (normalized dict), ``config_hash``,
                ``request_id``
``state``       ``state`` transition (``running`` carries the global
                ``builds`` count after the build; ``queued`` marks a
                resume re-enqueue and may carry ``request_id``)
``frame``       one appended replay frame: ``index`` + ``frame`` (the
                ``RoundRecord.to_json()`` line)
``checkpoint``  a round-boundary checkpoint: ``path`` (file name under
                ``checkpoints/``) + ``rounds`` covered by the file
``done``        terminal success; ``result`` is the RunResult JSON
``failed``      terminal failure; ``error`` message
``cancelled``   terminal cancel; ``checkpoint`` file name or None
``deleted``     the job was DELETEd — recovery drops it
==============  ========================================================

Replay is **idempotent**: compaction snapshots live state that may
already include events other threads journal moments later, so frame
events dedup by index and state transitions simply overwrite. A
truncated final line (the crash landed mid-append) is dropped, not
fatal; replay stops at the first undecodable line. Appends are flushed
to the OS on every event, which makes the journal exact under
``kill -9`` (only power loss can lose flushed-but-unsynced pages —
this is a study service, not a bank ledger).
"""

from __future__ import annotations

import json
import logging
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

__all__ = [
    "JobJournal",
    "RecoveredJob",
    "RecoveredState",
    "load_state",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
]

SNAPSHOT_FORMAT = "repro-job-snapshot"
SNAPSHOT_VERSION = 1

_log = logging.getLogger("repro.service.persistence")


@dataclass
class RecoveredJob:
    """One job as reconstructed from snapshot + journal replay.

    Plain data — the :class:`~repro.service.jobs.JobManager` turns it
    back into a live ``StudyJob`` (and applies the crash-state mapping)
    in its ``recover()`` path.
    """

    id: str
    config: dict
    config_hash: str
    request_id: str = ""
    state: str = "queued"
    frames: list[str] = field(default_factory=list)
    error: str | None = None
    result: str | None = None
    checkpoint: str | None = None  # file name under checkpoints/
    checkpoint_rounds: int | None = None  # rounds covered by that file

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "config": self.config,
            "config_hash": self.config_hash,
            "request_id": self.request_id,
            "state": self.state,
            "frames": list(self.frames),
            "error": self.error,
            "result": self.result,
            "checkpoint": self.checkpoint,
            "checkpoint_rounds": self.checkpoint_rounds,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RecoveredJob":
        return cls(
            id=payload["id"],
            config=payload["config"],
            config_hash=payload["config_hash"],
            request_id=payload.get("request_id", ""),
            state=payload.get("state", "queued"),
            frames=list(payload.get("frames", [])),
            error=payload.get("error"),
            result=payload.get("result"),
            checkpoint=payload.get("checkpoint"),
            checkpoint_rounds=payload.get("checkpoint_rounds"),
        )


@dataclass
class RecoveredState:
    """Everything :func:`load_state` reconstructs from a state dir."""

    jobs: dict[str, RecoveredJob] = field(default_factory=dict)
    counter: int = 0  # highest job number seen (id allocation resumes after)
    builds: int = 0  # simulator builds performed before the restart
    dropped_lines: int = 0  # undecodable journal tail (crash mid-append)


def _job_number(job_id: str) -> int:
    """``job-000042`` -> 42; unparsable ids contribute nothing."""
    try:
        return int(job_id.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return 0


def _apply_event(state: RecoveredState, event: dict) -> None:
    """Fold one journal event into the recovered state (idempotent)."""
    kind = event.get("event")
    job_id = event.get("job")
    if not isinstance(job_id, str):
        return
    if kind == "submitted":
        state.counter = max(state.counter, _job_number(job_id))
        if job_id not in state.jobs:  # replayed over a snapshot: keep
            state.jobs[job_id] = RecoveredJob(
                id=job_id,
                config=event.get("config", {}),
                config_hash=event.get("config_hash", ""),
                request_id=event.get("request_id", ""),
            )
        return
    job = state.jobs.get(job_id)
    if job is None:  # deleted (or from before a corrupt stretch)
        return
    if kind == "state":
        job.state = event.get("state", job.state)
        state.builds = max(state.builds, int(event.get("builds", 0)))
        if event.get("request_id"):
            job.request_id = event["request_id"]
        if job.state == "queued":
            job.error = None
    elif kind == "frame":
        if event.get("index") == len(job.frames):  # dedup by index
            job.frames.append(event.get("frame", ""))
    elif kind == "checkpoint":
        job.checkpoint = event.get("path")
        job.checkpoint_rounds = event.get("rounds")
    elif kind == "done":
        job.state = "done"
        job.result = event.get("result")
        job.checkpoint = None  # a finished job's checkpoint is removed
        job.checkpoint_rounds = None
    elif kind == "failed":
        job.state = "failed"
        job.error = event.get("error")
    elif kind == "cancelled":
        job.state = "cancelled"
        job.checkpoint = event.get("checkpoint")
        if "rounds" in event:
            job.checkpoint_rounds = event.get("rounds")
    elif kind == "deleted":
        state.jobs.pop(job_id, None)
    # Unknown kinds are skipped: a newer writer's events must not make
    # an older reader abort the whole recovery.


def load_state(state_dir: str | Path) -> RecoveredState:
    """Rebuild job state: snapshot first, then replay the journal.

    Tolerates a missing or corrupt snapshot (treated as empty) and a
    truncated journal tail (replay stops at the first undecodable
    line, counted in ``dropped_lines``) — the two shapes a crash can
    leave behind with atomic snapshot writes and line-append journals.
    """
    state_dir = Path(state_dir)
    state = RecoveredState()
    snapshot_path = state_dir / "snapshot.json"
    if snapshot_path.exists():
        try:
            snapshot = json.loads(snapshot_path.read_text("utf-8"))
        except ValueError:
            snapshot = None
            _log.warning("corrupt snapshot %s ignored", snapshot_path)
        if isinstance(snapshot, dict) and snapshot.get("format") == SNAPSHOT_FORMAT:
            state.counter = int(snapshot.get("counter", 0))
            state.builds = int(snapshot.get("builds", 0))
            for payload in snapshot.get("jobs", []):
                try:
                    job = RecoveredJob.from_dict(payload)
                except (KeyError, TypeError):
                    _log.warning("skipping malformed snapshot job entry")
                    continue
                state.jobs[job.id] = job
                state.counter = max(state.counter, _job_number(job.id))
    journal_path = state_dir / "journal.jsonl"
    if journal_path.exists():
        with journal_path.open("r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    # A crash mid-append truncates exactly one tail
                    # line; anything after it is unordered garbage.
                    state.dropped_lines += 1
                    _log.warning(
                        "journal %s: replay stopped at undecodable line",
                        journal_path,
                    )
                    break
                if isinstance(event, dict):
                    _apply_event(state, event)
    return state


class JobJournal:
    """Append-only event writer with periodic snapshot compaction.

    ``snapshot_provider`` returns the *live* full state as a snapshot
    dict (the job manager serializes its table under its locks); it is
    invoked outside any caller-held lock, so callers must never append
    while holding the locks the provider needs. Every
    ``compact_every`` appends — and on :meth:`compact` — the provider
    state is written to ``snapshot.json`` atomically and the journal
    truncated; a crash between the two leaves old events to be
    replayed over the new snapshot, which idempotent replay absorbs.
    """

    def __init__(
        self,
        state_dir: str | Path,
        snapshot_provider: Callable[[], dict] | None = None,
        compact_every: int = 512,
    ) -> None:
        if compact_every <= 0:
            raise ValueError("compact_every must be positive")
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.state_dir / "journal.jsonl"
        self.snapshot_path = self.state_dir / "snapshot.json"
        self._provider = snapshot_provider
        self._compact_every = compact_every
        self._lock = threading.Lock()
        self._handle = self.journal_path.open("a", encoding="utf-8")
        self._since_compact = 0
        self._closed = False

    def append(self, event: dict) -> None:
        """Write one event line and flush it to the OS."""
        line = json.dumps(event, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()
            self._since_compact += 1
            if self._provider is not None and self._since_compact >= self._compact_every:
                self._compact_locked()

    def compact(self) -> None:
        """Fold the journal into ``snapshot.json`` now (needs a provider)."""
        with self._lock:
            if not self._closed and self._provider is not None:
                self._compact_locked()

    def _compact_locked(self) -> None:
        snapshot = dict(self._provider())
        snapshot["format"] = SNAPSHOT_FORMAT
        snapshot["version"] = SNAPSHOT_VERSION
        tmp = self.snapshot_path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(snapshot, sort_keys=True, separators=(",", ":")) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, self.snapshot_path)
        # Truncate only after the snapshot is durably in place: a crash
        # here replays the old events over the new snapshot (a no-op).
        self._handle.close()
        self._handle = self.journal_path.open("w", encoding="utf-8")
        self._since_compact = 0

    def load(self) -> RecoveredState:
        """Read back the state this journal's directory holds."""
        return load_state(self.state_dir)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._handle.close()
