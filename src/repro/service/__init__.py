"""Gossip-as-a-service: a stdlib-only HTTP/SSE front end over the
:class:`~repro.core.study.Study` session layer.

The paper is a middleware paper; this package is the communications
tier between clients and the simulation — a long-running service with
an explicit, ordered middleware pipeline (request context, structured
access logs, metrics, token-bucket rate limiting, and a deterministic
response cache keyed by canonical config hash) in front of a job
manager that streams each study's per-round records as server-sent
events. See ``docs/service.md`` for the full protocol contract.
"""

from repro.service.app import StudyService, make_server, serve
from repro.service.jobs import JobManager, StudyJob
from repro.service.middleware import (
    AccessLogMiddleware,
    ErrorBoundaryMiddleware,
    MetricsMiddleware,
    Request,
    RequestContext,
    RequestContextMiddleware,
    Response,
    ResponseCacheMiddleware,
    TokenBucketMiddleware,
    build_pipeline,
)
from repro.service.persistence import JobJournal, load_state
from repro.service.router import Router
from repro.service.sse import SSEvent, format_event, parse_sse_stream

__all__ = [
    "StudyService",
    "make_server",
    "serve",
    "JobManager",
    "StudyJob",
    "Router",
    "Request",
    "Response",
    "RequestContext",
    "RequestContextMiddleware",
    "AccessLogMiddleware",
    "MetricsMiddleware",
    "TokenBucketMiddleware",
    "ResponseCacheMiddleware",
    "ErrorBoundaryMiddleware",
    "JobJournal",
    "load_state",
    "build_pipeline",
    "SSEvent",
    "format_event",
    "parse_sse_stream",
]
