"""Minimal path router for the service endpoints.

Routes are registered as ``(method, pattern)`` pairs where pattern
segments like ``{id}`` capture path parameters. Dispatch separates
404 (no pattern matches the path) from 405 (pattern exists, method
does not, with an ``Allow`` header) — the distinction the tests pin.
"""

from __future__ import annotations

from typing import Callable

from repro.service.middleware import Request, RequestContext, Response, json_response

__all__ = ["Router"]

RouteHandler = Callable[[RequestContext, Request, dict], Response]


class Router:
    def __init__(self) -> None:
        # pattern segments -> {method -> handler}
        self._routes: list[tuple[tuple[str, ...], dict[str, RouteHandler]]] = []

    def add(self, method: str, pattern: str, handler: RouteHandler) -> None:
        segments = tuple(pattern.strip("/").split("/"))
        for existing, methods in self._routes:
            if existing == segments:
                methods[method.upper()] = handler
                return
        self._routes.append((segments, {method.upper(): handler}))

    @staticmethod
    def _match(segments: tuple[str, ...], path: str) -> dict | None:
        parts = path.strip("/").split("/")
        if len(parts) != len(segments):
            return None
        params: dict[str, str] = {}
        for seg, part in zip(segments, parts):
            if seg.startswith("{") and seg.endswith("}"):
                if not part:
                    return None
                params[seg[1:-1]] = part
            elif seg != part:
                return None
        return params

    def dispatch(self, ctx: RequestContext, request: Request) -> Response:
        allowed: set[str] = set()
        for segments, methods in self._routes:
            params = self._match(segments, request.path)
            if params is None:
                continue
            handler = methods.get(request.method)
            if handler is not None:
                return handler(ctx, request, params)
            allowed.update(methods)
        if allowed:
            response = json_response(
                {"error": f"method {request.method} not allowed"}, status=405
            )
            response.headers["Allow"] = ", ".join(sorted(allowed))
            return response
        return json_response(
            {"error": f"no route for {request.path}"}, status=404
        )
