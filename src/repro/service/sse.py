"""Server-sent-event framing.

One round of a running study is one SSE event::

    id: 3
    event: round
    data: {"round_index":3,...}

``data`` is exactly :meth:`RoundRecord.to_json` — single-line,
sorted-keys JSON — so the frames a client collects are bit-identical
to the records a local :func:`run_study` produces (the service's
determinism contract, gated by ``tests/service/test_contract.py``).
The stream ends with an ``end`` event whose data reports the job's
terminal state. :func:`parse_sse_stream` is the matching minimal
client-side parser, used by the test harness and the smoke tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["SSEvent", "format_event", "parse_sse_stream"]


@dataclass
class SSEvent:
    """One parsed server-sent event."""

    data: str = ""
    event: str | None = None
    id: str | None = None
    _data_lines: list[str] = field(default_factory=list, repr=False)

    @property
    def empty(self) -> bool:
        return not self._data_lines and self.event is None and self.id is None


def format_event(
    data: str, event: str | None = None, event_id: str | None = None
) -> bytes:
    """Encode one event as wire bytes (trailing blank line included)."""
    lines: list[str] = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    if event is not None:
        lines.append(f"event: {event}")
    # Multi-line payloads become several data: lines; the parser joins
    # them back with \n per the SSE spec. Round frames are single-line.
    for chunk in data.split("\n"):
        lines.append(f"data: {chunk}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def parse_sse_stream(lines: Iterable[str]) -> Iterator[SSEvent]:
    """Yield :class:`SSEvent` objects from an iterable of text lines.

    Accepts lines with or without trailing newlines (``readline``-style
    iteration over a socket file works directly). Comment lines
    (leading ``:``) are ignored; an event is emitted at each blank
    line, exactly as browsers parse ``text/event-stream``.
    """
    current = SSEvent()
    for raw in lines:
        line = raw.rstrip("\r\n") if isinstance(raw, str) else raw.decode(
            "utf-8"
        ).rstrip("\r\n")
        if not line:
            if not current.empty:
                current.data = "\n".join(current._data_lines)
                yield current
            current = SSEvent()
            continue
        if line.startswith(":"):
            continue
        name, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        if name == "data":
            current._data_lines.append(value)
        elif name == "event":
            current.event = value
        elif name == "id":
            current.id = value
    if not current.empty:
        current.data = "\n".join(current._data_lines)
        yield current
