"""Study job manager: the computation tier behind the HTTP front end.

A fixed pool of daemon worker threads drains a FIFO queue of
:class:`StudyJob` items. Each job runs one
:class:`~repro.core.study.Study` session via ``iter_rounds()``,
appending one frame (``RoundRecord.to_json()``) per completed round to
the job's replay buffer; SSE subscribers — including late ones —
stream that buffer through :meth:`StudyJob.stream`.

Jobs are deduplicated by canonical config hash
(:func:`repro.core.config.config_hash`): submitting an identical
config returns the existing job, running or finished, so repeated
requests never build a second simulator (``builds_performed`` is the
gate the contract tests assert on). Cancellation is cooperative —
:meth:`~repro.core.study.Study.request_cancel` stops the session at
the next round boundary, the worker checkpoints it, and a later
``resume`` continues from the checkpoint bit-identically (float64).

With a ``state_dir``, the manager is **durable**: every submission,
state transition, frame and checkpoint is journaled
(:mod:`repro.service.persistence`), each round writes a resumable
checkpoint, and :meth:`recover` at startup rebuilds the job table,
dedup index and replay buffers from disk. Jobs that were live at
crash time come back ``cancelled`` and resumable when a checkpoint
exists, ``failed`` otherwise — the same correlated-failure semantics
the simulator already gives a crashed node.
"""

from __future__ import annotations

import json
import logging
import queue
import threading
from pathlib import Path
from typing import Callable, Iterator

from repro.core.config import config_hash
from repro.core.study import Study, StudyConfig
from repro.service.persistence import JobJournal, load_state
from repro.telemetry import NULL_TELEMETRY, Telemetry

__all__ = ["StudyJob", "JobManager", "QUEUED", "RUNNING", "DONE", "FAILED", "CANCELLED"]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

_TERMINAL = (DONE, FAILED, CANCELLED)
_ACTIVE = (QUEUED, RUNNING)


class StudyJob:
    """One submitted study: state machine + frame replay buffer.

    All mutable state is guarded by one condition variable; round
    frames are append-only, so :meth:`stream` can replay then follow
    the buffer with nothing but an index.
    """

    def __init__(self, job_id: str, config: StudyConfig, request_id: str = ""):
        self.id = job_id
        self.config = config
        self.config_hash = config_hash(config)
        self.request_id = request_id
        self.state = QUEUED
        self.frames: list[str] = []
        self.error: str | None = None
        self.result_json: str | None = None
        self.checkpoint_path: Path | None = None
        self.checkpoint_rounds: int | None = None  # rounds the file covers
        # Live view of the executor's fallback tallies (updated at
        # each round boundary while the study runs).
        self.fallback_counts: dict[str, int] = {}
        self.discard = False  # DELETEd while running: skip checkpoint/result
        self._cancel_requested = False
        self._study: Study | None = None
        self._cond = threading.Condition()

    # -- worker side ----------------------------------------------------

    def _attach_study(self, study: Study) -> bool:
        """Bind the live session; returns False if already cancelled."""
        with self._cond:
            self._study = study
            if self._cancel_requested:
                study.request_cancel()
            return not self._cancel_requested or study.rounds_completed > 0

    def _append_frame(self, frame: str) -> None:
        with self._cond:
            self.frames.append(frame)
            self._cond.notify_all()

    def _finish(
        self,
        state: str,
        error: str | None = None,
        result_json: str | None = None,
        checkpoint_path: Path | None = None,
    ) -> None:
        with self._cond:
            self.state = state
            self.error = error
            if result_json is not None:
                self.result_json = result_json
            if checkpoint_path is not None:
                self.checkpoint_path = checkpoint_path
            self._study = None
            self._cond.notify_all()

    # -- service side ---------------------------------------------------

    def request_cancel(self) -> None:
        """Flag cancellation; reaches a live session immediately."""
        with self._cond:
            self._cancel_requested = True
            if self._study is not None:
                self._study.request_cancel()
            self._cond.notify_all()

    @property
    def cancel_requested(self) -> bool:
        with self._cond:
            return self._cancel_requested

    def rearm(self) -> bool:
        """Atomically flip CANCELLED -> QUEUED for a resume.

        The check and the transition happen under one lock, so of two
        racing resumes exactly one sees CANCELLED and wins; the loser
        gets False (the HTTP layer maps it to 409). Without the
        atomicity, both could pass a bare state check and enqueue the
        job twice, interleaving duplicate frames from two workers.
        """
        with self._cond:
            if self.state != CANCELLED:
                return False
            self._cancel_requested = False
            self.state = QUEUED
            self.error = None
            self._cond.notify_all()
            return True

    def snapshot(self) -> dict:
        """JSON-ready status view (the ``GET /studies/{id}`` body)."""
        with self._cond:
            return {
                "id": self.id,
                "name": self.config.name,
                "state": self.state,
                "config_hash": self.config_hash,
                "rounds_completed": len(self.frames),
                "rounds_total": self.config.rounds,
                "request_id": self.request_id,
                "error": self.error,
                "fallback_counts": dict(self.fallback_counts),
                "resumable": self.checkpoint_path is not None
                and self.state == CANCELLED,
            }

    def wait(self, timeout: float | None = None) -> str:
        """Block until the job reaches a terminal state; returns it."""
        with self._cond:
            self._cond.wait_for(lambda: self.state in _TERMINAL, timeout)
            return self.state

    def stream(self, poll_interval: float = 0.5) -> Iterator[tuple[int, str]]:
        """Yield ``(index, frame)`` pairs: replay the buffer, then follow.

        Ends when the buffer is drained and the job is terminal. Safe
        for any number of concurrent consumers; a consumer that goes
        away simply abandons the generator (no registration to undo),
        which is what makes client disconnects leak-free.
        """
        index = 0
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: index < len(self.frames) or self.state in _TERMINAL,
                    poll_interval,
                )
                fresh = self.frames[index:]
                state = self.state
            for frame in fresh:
                yield index, frame
                index += 1
            if state in _TERMINAL:
                with self._cond:
                    done = index >= len(self.frames)
                if done:
                    return


class JobManager:
    """Worker pool + registry with dedup-by-config-hash.

    ``builds_performed`` counts every simulator construction (fresh
    builds and checkpoint resumes); the cache/dedup contract is that
    repeated identical submissions leave it untouched.

    ``state_dir`` switches on the durable mode: a
    :class:`~repro.service.persistence.JobJournal` lives there (with
    checkpoints under ``state_dir/checkpoints`` unless
    ``checkpoint_dir`` overrides), every transition is journaled, each
    completed round writes a resumable checkpoint, and construction
    runs :meth:`recover` before any worker starts. ``on_failed`` is
    invoked (before the state flips, so a waiter that observes FAILED
    already sees its effect) whenever a job enters FAILED — the
    service uses it to drop the job's response-cache entry so a
    resubmission reaches :meth:`submit` and gets the fresh run the
    contract promises.
    """

    def __init__(
        self,
        checkpoint_dir: str | Path | None = None,
        workers: int = 2,
        logger: logging.Logger | None = None,
        round_hook: Callable[[StudyJob, object], None] | None = None,
        *,
        state_dir: str | Path | None = None,
        on_failed: Callable[[StudyJob], None] | None = None,
        checkpoint_hook: Callable[[StudyJob], None] | None = None,
        compact_every: int = 512,
        telemetry: Telemetry | None = None,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        if checkpoint_dir is None and state_dir is None:
            raise ValueError("need a checkpoint_dir or a state_dir")
        # Shared telemetry: job spans carry the request id as trace id,
        # and every study this manager runs records into its registry
        # (with result annotation off the service keeps result bytes
        # identical to a plain run_study of the same config).
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.state_dir = Path(state_dir) if state_dir is not None else None
        if checkpoint_dir is None:
            checkpoint_dir = self.state_dir / "checkpoints"
        self.checkpoint_dir = Path(checkpoint_dir)
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self._log = logger or logging.getLogger("repro.service.jobs")
        # Test/instrumentation hooks: `round_hook` runs in the worker
        # thread after each frame (+ checkpoint, in durable mode) —
        # the smoke/fault tests use it to hold a job mid-run
        # deterministically; `checkpoint_hook` runs between the
        # discard check and the checkpoint write (the window the
        # DELETE-race test injects into).
        self._round_hook = round_hook
        self._checkpoint_hook = checkpoint_hook
        self._on_failed = on_failed
        self._lock = threading.Lock()
        self._jobs: dict[str, StudyJob] = {}
        self._by_hash: dict[str, str] = {}
        self._counter = 0
        self._builds = 0
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        self._journal: JobJournal | None = None
        self.recovered_jobs: list[StudyJob] = []
        if self.state_dir is not None:
            self._journal = JobJournal(
                self.state_dir,
                snapshot_provider=self._snapshot_state,
                compact_every=compact_every,
            )
            self.recover()
        # Workers start only after recovery: nothing races the rebuild.
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"study-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- public API -----------------------------------------------------

    @property
    def builds_performed(self) -> int:
        """Simulator builds so far (fresh builds + checkpoint resumes).

        In durable mode the count survives restarts — it is journaled
        with every ``running`` transition and restored by recovery.
        """
        with self._lock:
            return self._builds

    def submit(
        self, config: StudyConfig, request_id: str = ""
    ) -> tuple[StudyJob, bool]:
        """Register (or dedup) a study; returns ``(job, created)``.

        An existing job with the same canonical hash is returned as-is
        unless it FAILED — failures are not deterministic outcomes, so
        a resubmission gets a fresh run.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("job manager is closed")
            key = config_hash(config)
            existing_id = self._by_hash.get(key)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                if existing.state != FAILED:
                    return existing, False
                self._by_hash.pop(key, None)
            self._counter += 1
            job = StudyJob(f"job-{self._counter:06d}", config, request_id)
            self._jobs[job.id] = job
            self._by_hash[key] = job.id
        self._log_event("job_submitted", job)
        self._journal_event(
            {
                "event": "submitted",
                "job": job.id,
                "config": config.to_dict(),
                "config_hash": job.config_hash,
                "request_id": request_id,
                "trace_id": request_id or job.id,
            }
        )
        self._queue.put((job, "run"))
        return job, True

    def get(self, job_id: str) -> StudyJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[StudyJob]:
        with self._lock:
            return list(self._jobs.values())

    def hash_index(self) -> dict[str, str]:
        """Snapshot of the dedup index (config hash -> owning job id)."""
        with self._lock:
            return dict(self._by_hash)

    def cancel(self, job_id: str) -> StudyJob:
        """Request cooperative cancellation (error if already terminal)."""
        job = self._require(job_id)
        if job.state in _TERMINAL:
            raise ValueError(f"study {job_id} already {job.state}")
        job.request_cancel()
        self._log_event("job_cancel_requested", job)
        return job

    def resume(self, job_id: str, request_id: str = "") -> StudyJob:
        """Re-enqueue a cancelled job, from its checkpoint if one exists.

        The CANCELLED -> QUEUED transition is atomic
        (:meth:`StudyJob.rearm`): of two concurrent resumes exactly one
        enqueues the job, the other gets the ValueError -> 409.
        """
        job = self._require(job_id)
        if not job.rearm():
            raise ValueError(
                f"study {job_id} is {job.state}; only cancelled studies resume"
            )
        if request_id:
            job.request_id = request_id
        mode = "resume" if job.checkpoint_path is not None else "run"
        self._log_event("job_resubmitted", job)
        self._journal_event(
            {
                "event": "state",
                "job": job.id,
                "state": QUEUED,
                "request_id": job.request_id,
            }
        )
        self._queue.put((job, mode))
        return job

    def delete(self, job_id: str) -> StudyJob:
        """Drop a job from the registry; a running session is cancelled
        and its eventual output discarded."""
        job = self._require(job_id)
        with self._lock:
            self._jobs.pop(job_id, None)
            if self._by_hash.get(job.config_hash) == job.id:
                self._by_hash.pop(job.config_hash, None)
        with job._cond:
            job.discard = True
        if job.state in _ACTIVE:
            job.request_cancel()
        self._remove_checkpoint(job)
        self._log_event("job_deleted", job)
        self._journal_event({"event": "deleted", "job": job.id})
        return job

    def recover(self) -> list[StudyJob]:
        """Rebuild the job table from ``state_dir`` (runs at startup).

        State mapping (see docs/service.md): ``done``/``failed``/
        ``cancelled`` jobs come back as they were (result, error and
        frame buffers included). Jobs that were ``running`` or
        ``queued`` at crash time come back ``cancelled`` and resumable
        when their checkpoint file exists — frames past the
        checkpoint's round count are dropped, since the resume will
        regenerate them bit-identically — and ``failed`` otherwise
        (some rounds ran but nothing on disk can reproduce them). A
        ``queued`` job that never produced a frame comes back
        ``cancelled`` with an empty buffer: resuming it simply reruns
        from scratch.

        After the rebuild the journal is compacted, so the snapshot on
        disk records the *mapped* states and a second restart replays
        nothing.
        """
        if self.state_dir is None:
            raise RuntimeError("recover() needs a state_dir")
        recovered = load_state(self.state_dir)
        jobs: list[StudyJob] = []
        for rec in recovered.jobs.values():
            try:
                config = StudyConfig.from_dict(rec.config)
            except (ValueError, TypeError, KeyError) as exc:
                self._log.warning(
                    "dropping job %s: stored config no longer loads (%s)",
                    rec.id,
                    exc,
                )
                continue
            job = StudyJob(rec.id, config, rec.request_id)
            checkpoint_path: Path | None = None
            if rec.checkpoint:
                candidate = self.checkpoint_dir / rec.checkpoint
                if candidate.exists():
                    checkpoint_path = candidate
            state, error = rec.state, rec.error
            frames = list(rec.frames)
            if state in _ACTIVE:
                if checkpoint_path is not None or not frames:
                    state, error = CANCELLED, None
                else:
                    state = FAILED
                    error = (
                        "interrupted by a service restart before a "
                        "checkpoint was written"
                    )
            if state == CANCELLED and frames and checkpoint_path is None:
                # A cancelled job whose checkpoint vanished cannot
                # resume without replaying already-streamed rounds.
                state = FAILED
                error = "checkpoint file missing after restart"
            if (
                checkpoint_path is not None
                and rec.checkpoint_rounds is not None
                and rec.checkpoint_rounds < len(frames)
            ):
                # The crash landed between a frame append and its
                # checkpoint: resume regenerates the tail bit-identically.
                del frames[rec.checkpoint_rounds :]
            job.state = state
            job.error = error
            job.frames = frames
            job.result_json = rec.result
            job.checkpoint_path = checkpoint_path
            job.checkpoint_rounds = (
                rec.checkpoint_rounds if checkpoint_path is not None else None
            )
            jobs.append(job)
        with self._lock:
            for job in jobs:
                self._jobs[job.id] = job
                # Insertion order: the latest submission of a hash wins,
                # exactly as live submissions left it.
                self._by_hash[job.config_hash] = job.id
            self._counter = max(self._counter, recovered.counter)
            self._builds = max(self._builds, recovered.builds)
        self.recovered_jobs = jobs
        for job in jobs:
            self._log_event("job_recovered", job)
        if recovered.dropped_lines:
            self._log.warning(
                "journal replay dropped %d corrupt line(s)",
                recovered.dropped_lines,
            )
        if self._journal is not None:
            self._journal.compact()
        return jobs

    def close(self, timeout: float = 10.0) -> None:
        """Cancel running sessions, drain workers, join threads.

        Ephemeral managers discard in-flight output (the checkpoint
        dir is usually a temp dir about to vanish); durable managers
        instead let live jobs checkpoint and journal a clean CANCELLED,
        so a graceful restart recovers them as resumable.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            jobs = list(self._jobs.values())
        for job in jobs:
            if job.state in _ACTIVE:
                if self._journal is None:
                    with job._cond:
                        job.discard = True
                job.request_cancel()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout)
        if self._journal is not None:
            self._journal.compact()
            self._journal.close()

    # -- internals ------------------------------------------------------

    def _require(self, job_id: str) -> StudyJob:
        job = self.get(job_id)
        if job is None:
            raise KeyError(f"no study {job_id!r}")
        return job

    def _log_event(
        self, event: str, job: StudyJob, state: str | None = None
    ) -> None:
        # Terminal events are logged BEFORE the state flips, so a
        # caller woken by job.wait() already sees the log line; `state`
        # carries the state being entered.
        self._log.info(
            "%s",
            json.dumps(
                {
                    "event": event,
                    "job": job.id,
                    "request_id": job.request_id,
                    # The request id doubles as the trace id of the
                    # job's telemetry spans, so a log line and a span
                    # dump join on one key.
                    "trace_id": job.request_id or job.id,
                    "state": state if state is not None else job.state,
                    "config_hash": job.config_hash,
                },
                sort_keys=True,
            ),
        )

    def _journal_event(self, event: dict) -> None:
        # Never call while holding self._lock or a job's _cond: an
        # append can trigger compaction, whose snapshot provider takes
        # both.
        if self._journal is not None:
            self._journal.append(event)

    def _snapshot_state(self) -> dict:
        """Serialize the full live state for journal compaction."""
        with self._lock:
            jobs = list(self._jobs.values())
            counter = self._counter
            builds = self._builds
        serialized = []
        for job in jobs:
            with job._cond:
                serialized.append(
                    {
                        "id": job.id,
                        "config": job.config.to_dict(),
                        "config_hash": job.config_hash,
                        "request_id": job.request_id,
                        "state": job.state,
                        "frames": list(job.frames),
                        "error": job.error,
                        "result": job.result_json,
                        "checkpoint": job.checkpoint_path.name
                        if job.checkpoint_path is not None
                        else None,
                        "checkpoint_rounds": job.checkpoint_rounds,
                    }
                )
        return {"jobs": serialized, "counter": counter, "builds": builds}

    def _remove_checkpoint(self, job: StudyJob) -> None:
        path = job.checkpoint_path
        if path is not None:
            Path(path).unlink(missing_ok=True)

    def _fail(self, job: StudyJob, error: str) -> None:
        """Enter FAILED: log, journal, notify, then flip the state.

        ``on_failed`` runs before ``_finish`` so that by the time a
        waiter observes FAILED the response-cache entry is already
        invalidated — a resubmission racing the failure can then never
        replay the dead job's cached body.
        """
        self._log_event("job_failed", job, state=FAILED)
        self._journal_event({"event": "failed", "job": job.id, "error": error})
        if self._on_failed is not None:
            try:
                self._on_failed(job)
            except Exception:  # a listener bug must not kill the worker
                self._log.exception("on_failed listener raised")
        job._finish(FAILED, error=error)

    def _checkpoint_job(self, job: StudyJob, study: Study) -> Path | None:
        """Write the job's checkpoint with the DELETE race closed.

        ``delete()`` may set ``discard`` and unlink concurrently; a
        worker already past a bare pre-check would then write the file
        *after* the unlink and leak a ``.ckpt`` the registry no longer
        knows about. So: skip when already discarded, and re-check
        under the job lock after the write, unlinking if the flag
        flipped mid-write.
        """
        with job._cond:
            if job.discard:
                return None
        path = self.checkpoint_dir / f"{job.id}.ckpt"
        if self._checkpoint_hook is not None:
            self._checkpoint_hook(job)
        study.checkpoint(path)
        with job._cond:
            if job.discard:  # DELETE raced us between check and write
                path.unlink(missing_ok=True)
                return None
            job.checkpoint_path = path
            job.checkpoint_rounds = len(job.frames)
        self._journal_event(
            {
                "event": "checkpoint",
                "job": job.id,
                "path": path.name,
                "rounds": len(job.frames),
            }
        )
        return path

    def _discard_checkpoint(self, job: StudyJob) -> None:
        """Remove a finished job's now-useless per-round checkpoint."""
        with job._cond:
            path = job.checkpoint_path
            job.checkpoint_path = None
            job.checkpoint_rounds = None
        if path is not None:
            Path(path).unlink(missing_ok=True)

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            job, mode = item
            try:
                self._execute(job, mode)
            except Exception as exc:  # defensive: a worker must survive
                self._fail(job, f"{type(exc).__name__}: {exc}")

    def _execute(self, job: StudyJob, mode: str) -> None:
        # The worker thread's spans all belong to the submitting
        # request: X-Request-ID (or the job id) is the trace id.
        tracer = self.telemetry.tracer
        tracer.set_trace_id(job.request_id or job.id)
        with tracer.span("job.execute", job=job.id, mode=mode):
            self._run_job(job, mode)

    def _run_job(self, job: StudyJob, mode: str) -> None:
        if job.cancel_requested and mode == "run" and not job.frames:
            # Cancelled while still queued: nothing ran, nothing to keep.
            self._log_event("job_cancelled", job, state=CANCELLED)
            self._journal_event(
                {"event": "cancelled", "job": job.id, "checkpoint": None}
            )
            job._finish(CANCELLED)
            return
        try:
            if mode == "resume":
                study = Study.resume(
                    job.checkpoint_path, telemetry=self.telemetry
                )
            else:
                study = Study(job.config, telemetry=self.telemetry)
                study.build()
        except Exception as exc:
            self._fail(job, f"{type(exc).__name__}: {exc}")
            return
        with self._lock:
            self._builds += 1
            builds = self._builds
        job._attach_study(study)
        with job._cond:
            job.state = RUNNING
            job._cond.notify_all()
        self._log_event("job_started", job)
        self._journal_event(
            {"event": "state", "job": job.id, "state": RUNNING, "builds": builds}
        )
        if mode == "resume" and len(job.frames) < study.rounds_completed:
            # A crash can land between a checkpoint write and its
            # journal event, leaving the file one round ahead of the
            # journaled frame buffer — and `iter_rounds` will never
            # re-yield that round. The checkpoint carries every prior
            # RoundRecord, so restore the gap from it bit-identically.
            for index in range(len(job.frames), study.rounds_completed):
                frame = study.records[index].to_json()
                job._append_frame(frame)
                self._journal_event(
                    {"event": "frame", "job": job.id, "index": index,
                     "frame": frame}
                )
            with job._cond:
                job.checkpoint_rounds = study.rounds_completed
            self._journal_event(
                {"event": "checkpoint", "job": job.id,
                 "path": job.checkpoint_path.name,
                 "rounds": study.rounds_completed}
            )
        try:
            with study:
                for record in study.iter_rounds():
                    frame = record.to_json()
                    job._append_frame(frame)
                    fallbacks = study.simulator.fallback_counts()
                    if fallbacks:
                        with job._cond:
                            job.fallback_counts = dict(fallbacks)
                    self._journal_event(
                        {
                            "event": "frame",
                            "job": job.id,
                            "index": len(job.frames) - 1,
                            "frame": frame,
                        }
                    )
                    if self._journal is not None:
                        # Durable mode: every round boundary is a
                        # resume point, so a crash loses at most the
                        # in-flight round.
                        self._checkpoint_job(job, study)
                    if self._round_hook is not None:
                        self._round_hook(job, record)
                if (
                    study.cancel_requested
                    and study.rounds_completed < study.config.rounds
                ):
                    self._finish_cancelled(job, study)
                else:
                    result_json = study.result().to_json()
                    self._log_event("job_done", job, state=DONE)
                    self._journal_event(
                        {"event": "done", "job": job.id, "result": result_json}
                    )
                    self._discard_checkpoint(job)
                    job._finish(DONE, result_json=result_json)
        except Exception as exc:
            self._fail(job, f"{type(exc).__name__}: {exc}")

    def _finish_cancelled(self, job: StudyJob, study: Study) -> None:
        checkpoint_path = self._checkpoint_job(job, study)
        self._log_event("job_cancelled", job, state=CANCELLED)
        self._journal_event(
            {
                "event": "cancelled",
                "job": job.id,
                "checkpoint": checkpoint_path.name
                if checkpoint_path is not None
                else None,
                "rounds": len(job.frames),
            }
        )
        job._finish(CANCELLED, checkpoint_path=checkpoint_path)
