"""Study job manager: the computation tier behind the HTTP front end.

A fixed pool of daemon worker threads drains a FIFO queue of
:class:`StudyJob` items. Each job runs one
:class:`~repro.core.study.Study` session via ``iter_rounds()``,
appending one frame (``RoundRecord.to_json()``) per completed round to
the job's replay buffer; SSE subscribers — including late ones —
stream that buffer through :meth:`StudyJob.stream`.

Jobs are deduplicated by canonical config hash
(:func:`repro.core.config.config_hash`): submitting an identical
config returns the existing job, running or finished, so repeated
requests never build a second simulator (``builds_performed`` is the
gate the contract tests assert on). Cancellation is cooperative —
:meth:`~repro.core.study.Study.request_cancel` stops the session at
the next round boundary, the worker checkpoints it, and a later
``resume`` continues from the checkpoint bit-identically (float64).
"""

from __future__ import annotations

import json
import logging
import queue
import threading
from pathlib import Path
from typing import Callable, Iterator

from repro.core.config import config_hash
from repro.core.study import Study, StudyConfig

__all__ = ["StudyJob", "JobManager", "QUEUED", "RUNNING", "DONE", "FAILED", "CANCELLED"]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

_TERMINAL = (DONE, FAILED, CANCELLED)
_ACTIVE = (QUEUED, RUNNING)


class StudyJob:
    """One submitted study: state machine + frame replay buffer.

    All mutable state is guarded by one condition variable; round
    frames are append-only, so :meth:`stream` can replay then follow
    the buffer with nothing but an index.
    """

    def __init__(self, job_id: str, config: StudyConfig, request_id: str = ""):
        self.id = job_id
        self.config = config
        self.config_hash = config_hash(config)
        self.request_id = request_id
        self.state = QUEUED
        self.frames: list[str] = []
        self.error: str | None = None
        self.result_json: str | None = None
        self.checkpoint_path: Path | None = None
        self.discard = False  # DELETEd while running: skip checkpoint/result
        self._cancel_requested = False
        self._study: Study | None = None
        self._cond = threading.Condition()

    # -- worker side ----------------------------------------------------

    def _attach_study(self, study: Study) -> bool:
        """Bind the live session; returns False if already cancelled."""
        with self._cond:
            self._study = study
            if self._cancel_requested:
                study.request_cancel()
            return not self._cancel_requested or study.rounds_completed > 0

    def _append_frame(self, frame: str) -> None:
        with self._cond:
            self.frames.append(frame)
            self._cond.notify_all()

    def _finish(
        self,
        state: str,
        error: str | None = None,
        result_json: str | None = None,
        checkpoint_path: Path | None = None,
    ) -> None:
        with self._cond:
            self.state = state
            self.error = error
            if result_json is not None:
                self.result_json = result_json
            if checkpoint_path is not None:
                self.checkpoint_path = checkpoint_path
            self._study = None
            self._cond.notify_all()

    # -- service side ---------------------------------------------------

    def request_cancel(self) -> None:
        """Flag cancellation; reaches a live session immediately."""
        with self._cond:
            self._cancel_requested = True
            if self._study is not None:
                self._study.request_cancel()
            self._cond.notify_all()

    @property
    def cancel_requested(self) -> bool:
        with self._cond:
            return self._cancel_requested

    def rearm(self) -> None:
        """Reset cancel state and re-queue bookkeeping for a resume."""
        with self._cond:
            self._cancel_requested = False
            self.state = QUEUED
            self.error = None
            self._cond.notify_all()

    def snapshot(self) -> dict:
        """JSON-ready status view (the ``GET /studies/{id}`` body)."""
        with self._cond:
            return {
                "id": self.id,
                "name": self.config.name,
                "state": self.state,
                "config_hash": self.config_hash,
                "rounds_completed": len(self.frames),
                "rounds_total": self.config.rounds,
                "request_id": self.request_id,
                "error": self.error,
                "resumable": self.checkpoint_path is not None
                and self.state == CANCELLED,
            }

    def wait(self, timeout: float | None = None) -> str:
        """Block until the job reaches a terminal state; returns it."""
        with self._cond:
            self._cond.wait_for(lambda: self.state in _TERMINAL, timeout)
            return self.state

    def stream(self, poll_interval: float = 0.5) -> Iterator[tuple[int, str]]:
        """Yield ``(index, frame)`` pairs: replay the buffer, then follow.

        Ends when the buffer is drained and the job is terminal. Safe
        for any number of concurrent consumers; a consumer that goes
        away simply abandons the generator (no registration to undo),
        which is what makes client disconnects leak-free.
        """
        index = 0
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: index < len(self.frames) or self.state in _TERMINAL,
                    poll_interval,
                )
                fresh = self.frames[index:]
                state = self.state
            for frame in fresh:
                yield index, frame
                index += 1
            if state in _TERMINAL:
                with self._cond:
                    done = index >= len(self.frames)
                if done:
                    return


class JobManager:
    """Worker pool + registry with dedup-by-config-hash.

    ``builds_performed`` counts every simulator construction (fresh
    builds and checkpoint resumes); the cache/dedup contract is that
    repeated identical submissions leave it untouched.
    """

    def __init__(
        self,
        checkpoint_dir: str | Path,
        workers: int = 2,
        logger: logging.Logger | None = None,
        round_hook: Callable[[StudyJob, object], None] | None = None,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.checkpoint_dir = Path(checkpoint_dir)
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self._log = logger or logging.getLogger("repro.service.jobs")
        # Test/instrumentation hook, called in the worker thread after
        # each frame is appended (the smoke/fault tests use it to hold
        # a job mid-run deterministically).
        self._round_hook = round_hook
        self._lock = threading.Lock()
        self._jobs: dict[str, StudyJob] = {}
        self._by_hash: dict[str, str] = {}
        self._counter = 0
        self._builds = 0
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"study-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- public API -----------------------------------------------------

    @property
    def builds_performed(self) -> int:
        """Simulator builds so far (fresh builds + checkpoint resumes)."""
        with self._lock:
            return self._builds

    def submit(
        self, config: StudyConfig, request_id: str = ""
    ) -> tuple[StudyJob, bool]:
        """Register (or dedup) a study; returns ``(job, created)``.

        An existing job with the same canonical hash is returned as-is
        unless it FAILED — failures are not deterministic outcomes, so
        a resubmission gets a fresh run.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("job manager is closed")
            key = config_hash(config)
            existing_id = self._by_hash.get(key)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                if existing.state != FAILED:
                    return existing, False
                self._by_hash.pop(key, None)
            self._counter += 1
            job = StudyJob(f"job-{self._counter:06d}", config, request_id)
            self._jobs[job.id] = job
            self._by_hash[key] = job.id
        self._log_event("job_submitted", job)
        self._queue.put((job, "run"))
        return job, True

    def get(self, job_id: str) -> StudyJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[StudyJob]:
        with self._lock:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> StudyJob:
        """Request cooperative cancellation (error if already terminal)."""
        job = self._require(job_id)
        if job.state in _TERMINAL:
            raise ValueError(f"study {job_id} already {job.state}")
        job.request_cancel()
        self._log_event("job_cancel_requested", job)
        return job

    def resume(self, job_id: str, request_id: str = "") -> StudyJob:
        """Re-enqueue a cancelled job, from its checkpoint if one exists."""
        job = self._require(job_id)
        if job.state != CANCELLED:
            raise ValueError(
                f"study {job_id} is {job.state}; only cancelled studies resume"
            )
        job.rearm()
        if request_id:
            job.request_id = request_id
        mode = "resume" if job.checkpoint_path is not None else "run"
        self._log_event("job_resubmitted", job)
        self._queue.put((job, mode))
        return job

    def delete(self, job_id: str) -> StudyJob:
        """Drop a job from the registry; a running session is cancelled
        and its eventual output discarded."""
        job = self._require(job_id)
        with self._lock:
            self._jobs.pop(job_id, None)
            if self._by_hash.get(job.config_hash) == job.id:
                self._by_hash.pop(job.config_hash, None)
        with job._cond:
            job.discard = True
        if job.state in _ACTIVE:
            job.request_cancel()
        self._remove_checkpoint(job)
        self._log_event("job_deleted", job)
        return job

    def close(self, timeout: float = 10.0) -> None:
        """Cancel running sessions, drain workers, join threads."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            jobs = list(self._jobs.values())
        for job in jobs:
            if job.state in _ACTIVE:
                with job._cond:
                    job.discard = True
                job.request_cancel()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout)

    # -- internals ------------------------------------------------------

    def _require(self, job_id: str) -> StudyJob:
        job = self.get(job_id)
        if job is None:
            raise KeyError(f"no study {job_id!r}")
        return job

    def _log_event(
        self, event: str, job: StudyJob, state: str | None = None
    ) -> None:
        # Terminal events are logged BEFORE the state flips, so a
        # caller woken by job.wait() already sees the log line; `state`
        # carries the state being entered.
        self._log.info(
            "%s",
            json.dumps(
                {
                    "event": event,
                    "job": job.id,
                    "request_id": job.request_id,
                    "state": state if state is not None else job.state,
                    "config_hash": job.config_hash,
                },
                sort_keys=True,
            ),
        )

    def _remove_checkpoint(self, job: StudyJob) -> None:
        path = job.checkpoint_path
        if path is not None:
            Path(path).unlink(missing_ok=True)

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            job, mode = item
            try:
                self._execute(job, mode)
            except Exception as exc:  # defensive: a worker must survive
                self._log_event("job_failed", job, state=FAILED)
                job._finish(FAILED, error=f"{type(exc).__name__}: {exc}")

    def _execute(self, job: StudyJob, mode: str) -> None:
        if job.cancel_requested and mode == "run" and not job.frames:
            # Cancelled while still queued: nothing ran, nothing to keep.
            self._log_event("job_cancelled", job, state=CANCELLED)
            job._finish(CANCELLED)
            return
        try:
            if mode == "resume":
                study = Study.resume(job.checkpoint_path)
            else:
                study = Study(job.config)
                study.build()
        except Exception as exc:
            self._log_event("job_failed", job, state=FAILED)
            job._finish(FAILED, error=f"{type(exc).__name__}: {exc}")
            return
        with self._lock:
            self._builds += 1
        job._attach_study(study)
        with job._cond:
            job.state = RUNNING
            job._cond.notify_all()
        self._log_event("job_started", job)
        try:
            with study:
                for record in study.iter_rounds():
                    job._append_frame(record.to_json())
                    if self._round_hook is not None:
                        self._round_hook(job, record)
                if (
                    study.cancel_requested
                    and study.rounds_completed < study.config.rounds
                ):
                    self._finish_cancelled(job, study)
                else:
                    result_json = study.result().to_json()
                    self._log_event("job_done", job, state=DONE)
                    job._finish(DONE, result_json=result_json)
        except Exception as exc:
            self._log_event("job_failed", job, state=FAILED)
            job._finish(FAILED, error=f"{type(exc).__name__}: {exc}")

    def _finish_cancelled(self, job: StudyJob, study: Study) -> None:
        checkpoint_path: Path | None = None
        if not job.discard:
            checkpoint_path = self.checkpoint_dir / f"{job.id}.ckpt"
            study.checkpoint(checkpoint_path)
        self._log_event("job_cancelled", job, state=CANCELLED)
        job._finish(CANCELLED, checkpoint_path=checkpoint_path)
