"""Gossip-as-a-service: the HTTP/SSE front end.

:class:`StudyService` wires the middleware pipeline, the router and
the :class:`~repro.service.jobs.JobManager` into one transport-
independent ``handle(request) -> response`` callable;
:func:`make_server` mounts it on a stdlib ``ThreadingHTTPServer``.

Endpoints (see ``docs/service.md`` for the full contract):

========  ==========================  =====================================
POST      /studies                    submit a grouped/flat config JSON
GET       /studies                    list all jobs
GET       /studies/{id}               job status snapshot
GET       /studies/{id}/result        finished RunResult JSON
GET       /studies/{id}/stream        SSE round frames (replay + follow)
POST      /studies/{id}/cancel        cooperative cancel (checkpointed)
POST      /studies/{id}/resume        continue a cancelled job
DELETE    /studies/{id}               forget a job (cancels if running)
GET       /healthz                    liveness probe
GET       /metrics                    middleware counters (text)
========  ==========================  =====================================
"""

from __future__ import annotations

import json
import logging
import tempfile
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Iterator
from urllib.parse import parse_qsl, urlsplit

from repro.core.study import StudyConfig
from repro.service.jobs import DONE, FAILED, JobManager, StudyJob
from repro.service.middleware import (
    AccessLogMiddleware,
    ErrorBoundaryMiddleware,
    MetricsMiddleware,
    Request,
    RequestContext,
    RequestContextMiddleware,
    Response,
    ResponseCacheMiddleware,
    TokenBucketMiddleware,
    build_pipeline,
    json_response,
)
from repro.service.router import Router
from repro.service.sse import format_event
from repro.telemetry import Telemetry

__all__ = ["StudyService", "make_server", "serve"]


class StudyService:
    """The application: middleware pipeline -> router -> job manager."""

    def __init__(
        self,
        checkpoint_dir: str | Path | None = None,
        job_workers: int = 2,
        rate_capacity: int = 50,
        rate_refill: float = 25.0,
        cache_entries: int = 128,
        clock: Callable[[], float] = time.monotonic,
        round_hook: Callable[[StudyJob, object], None] | None = None,
        state_dir: str | Path | None = None,
        checkpoint_hook: Callable[[StudyJob], None] | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        if checkpoint_dir is None and state_dir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-service-")
            checkpoint_dir = self._tmpdir.name
        # Engine-side telemetry is on by default, with result
        # annotation OFF: a study's result bytes must stay identical
        # to a plain run_study of the same config (the replay/cache
        # contract the smoke test asserts byte for byte).
        if telemetry is None:
            telemetry = Telemetry(enabled=True, annotate_results=False)
        self.telemetry = telemetry
        self.cache = ResponseCacheMiddleware(max_entries=cache_entries)
        self.manager = JobManager(
            checkpoint_dir,
            workers=job_workers,
            round_hook=round_hook,
            state_dir=state_dir,
            checkpoint_hook=checkpoint_hook,
            telemetry=telemetry,
            # Invalidate before the state flips to FAILED, so a waiter
            # that observes the failure already sees a clean cache and
            # its resubmission triggers the fresh run submit() promises.
            on_failed=lambda job: self.cache.invalidate(job.config_hash),
        )
        self.metrics = MetricsMiddleware(clock=clock)
        self.limiter = TokenBucketMiddleware(
            capacity=rate_capacity, refill_per_sec=rate_refill, clock=clock
        )
        self.router = Router()
        self._register_routes()
        # The documented middleware order — outermost first. Keep in
        # sync with docs/service.md.
        self.pipeline = build_pipeline(
            [
                RequestContextMiddleware(),
                AccessLogMiddleware(clock=clock),
                self.metrics,
                self.limiter,
                self.cache,
                ErrorBoundaryMiddleware(),
            ],
            self.router.dispatch,
        )
        if self.manager.recovered_jobs:
            self._warm_cache()

    def handle(self, request: Request) -> Response:
        """Run one request through the full pipeline (any transport)."""
        return self.pipeline(RequestContext(), request)

    def close(self) -> None:
        """Shut down workers and reclaim the checkpoint directory."""
        self.manager.close()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    # -- routes ---------------------------------------------------------

    def _register_routes(self) -> None:
        add = self.router.add
        add("GET", "/healthz", self._healthz)
        add("GET", "/metrics", self._metrics)
        add("POST", "/studies", self._post_study)
        add("GET", "/studies", self._list_studies)
        add("GET", "/studies/{id}", self._get_study)
        add("DELETE", "/studies/{id}", self._delete_study)
        add("GET", "/studies/{id}/result", self._get_result)
        add("GET", "/studies/{id}/stream", self._stream_study)
        add("POST", "/studies/{id}/cancel", self._cancel_study)
        add("POST", "/studies/{id}/resume", self._resume_study)

    def _healthz(self, ctx, request, params) -> Response:
        return json_response({"status": "ok"})

    def _metrics(self, ctx, request, params) -> Response:
        # One scrape shows the whole stack: the HTTP middleware's
        # families followed by the engine registry (round phases,
        # executor timings, shard deltas, fallback counters).
        body = self.metrics.render() + self.telemetry.registry.render()
        return Response(
            status=200,
            headers={"Content-Type": "text/plain; charset=utf-8"},
            body=body.encode("utf-8"),
        )

    def _post_study(self, ctx, request, params) -> Response:
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            return json_response(
                {"error": f"body is not valid JSON: {exc}"}, status=400
            )
        try:
            config = StudyConfig.from_dict(payload)
        except (ValueError, TypeError) as exc:
            return json_response({"error": str(exc)}, status=400)
        job, _created = self.manager.submit(config, request_id=ctx.request_id)
        return self._submission_response(job)

    @staticmethod
    def _submission_response(job: StudyJob) -> Response:
        # Deterministic body: same config -> same job (dedup) -> same
        # bytes, whether it comes from the cache or is regenerated.
        return json_response(
            {
                "id": job.id,
                "config_hash": job.config_hash,
                "status_url": f"/studies/{job.id}",
                "stream_url": f"/studies/{job.id}/stream",
                "result_url": f"/studies/{job.id}/result",
            },
            cacheable=True,
        )

    def _warm_cache(self) -> None:
        """Rebuild the response cache from the recovered dedup index.

        Each non-FAILED job that owns its config hash gets its
        canonical ``POST /studies`` body regenerated and seeded, so a
        client resubmitting a pre-restart config is served the same
        bytes a pre-restart cache hit would have produced. FAILED jobs
        are skipped for the same reason live failures invalidate: their
        resubmission must reach ``submit()`` and build fresh.
        """
        index = self.manager.hash_index()
        for job in self.manager.recovered_jobs:
            if job.state == FAILED or index.get(job.config_hash) != job.id:
                continue
            self.cache.seed(job.config_hash, self._submission_response(job))

    def _list_studies(self, ctx, request, params) -> Response:
        return json_response(
            {"studies": [job.snapshot() for job in self.manager.jobs()]}
        )

    def _get_study(self, ctx, request, params) -> Response:
        job = self.manager.get(params["id"])
        if job is None:
            return json_response(
                {"error": f"no study {params['id']}"}, status=404
            )
        return json_response(job.snapshot())

    def _get_result(self, ctx, request, params) -> Response:
        job = self.manager.get(params["id"])
        if job is None:
            return json_response(
                {"error": f"no study {params['id']}"}, status=404
            )
        if job.state == DONE and job.result_json is not None:
            return Response(
                status=200,
                headers={"Content-Type": "application/json"},
                body=job.result_json.encode("utf-8"),
            )
        status = 500 if job.state == FAILED else 409
        return json_response(
            {"error": f"study {job.id} is {job.state}", "state": job.state,
             "detail": job.error},
            status=status,
        )

    def _stream_study(self, ctx, request, params) -> Response:
        job = self.manager.get(params["id"])
        if job is None:
            return json_response(
                {"error": f"no study {params['id']}"}, status=404
            )
        return Response(
            status=200,
            headers={
                "Content-Type": "text/event-stream",
                "Cache-Control": "no-store",
            },
            stream=self._sse_frames(job),
        )

    @staticmethod
    def _sse_frames(job: StudyJob) -> Iterator[bytes]:
        for index, frame in job.stream():
            yield format_event(frame, event="round", event_id=str(index))
        yield format_event(
            json.dumps(
                {"status": job.state, "rounds": len(job.frames)},
                sort_keys=True,
            ),
            event="end",
        )

    def _cancel_study(self, ctx, request, params) -> Response:
        return self._job_action(params["id"], self.manager.cancel)

    def _resume_study(self, ctx, request, params) -> Response:
        job_id = params["id"]

        def do_resume(jid: str) -> StudyJob:
            return self.manager.resume(jid, request_id=ctx.request_id)

        return self._job_action(job_id, do_resume, status=202)

    def _job_action(
        self, job_id: str, action: Callable[[str], StudyJob], status: int = 202
    ) -> Response:
        try:
            job = action(job_id)
        except KeyError:
            return json_response({"error": f"no study {job_id}"}, status=404)
        except ValueError as exc:
            return json_response({"error": str(exc)}, status=409)
        return json_response(job.snapshot(), status=status)

    def _delete_study(self, ctx, request, params) -> Response:
        try:
            job = self.manager.delete(params["id"])
        except KeyError:
            return json_response(
                {"error": f"no study {params['id']}"}, status=404
            )
        self.cache.invalidate(job.config_hash)
        return Response(status=204)


# -- HTTP transport -----------------------------------------------------


class _ServiceHTTPHandler(BaseHTTPRequestHandler):
    """Adapter between ``http.server`` and the service pipeline."""

    service: StudyService  # injected by make_server via a subclass attr
    protocol_version = "HTTP/1.1"

    def _request(self) -> Request:
        split = urlsplit(self.path)
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        return Request(
            method=self.command,
            path=split.path,
            query=dict(parse_qsl(split.query)),
            headers={k.lower(): v for k, v in self.headers.items()},
            body=body,
            client=self.client_address[0],
        )

    def _dispatch(self) -> None:
        try:
            response = self.service.handle(self._request())
        except Exception as exc:  # the transport must not die with the app
            logging.getLogger("repro.service.error").exception(
                "%s",
                json.dumps(
                    {
                        "event": "transport_error",
                        "method": self.command,
                        "path": self.path,
                        "status": 500,
                    },
                    sort_keys=True,
                ),
            )
            response = json_response(
                {"error": f"internal error: {type(exc).__name__}"}, status=500
            )
        try:
            if response.stream is not None:
                self._write_stream(response)
            else:
                self._write_body(response)
        except (BrokenPipeError, ConnectionResetError):
            # Client went away mid-write; nothing to clean up beyond
            # closing the stream generator (done in _write_stream).
            self.close_connection = True

    def _write_body(self, response: Response) -> None:
        self.send_response(response.status)
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(response.body)))
        self.end_headers()
        if self.command != "HEAD" and response.body:
            self.wfile.write(response.body)

    def _write_stream(self, response: Response) -> None:
        # SSE: unknown length, so fall back to connection-delimited
        # framing (Connection: close) — simplest correct HTTP/1.1.
        self.send_response(response.status)
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        assert response.stream is not None
        try:
            for chunk in response.stream:
                self.wfile.write(chunk)
                self.wfile.flush()
        finally:
            # A disconnect mid-stream lands here: drop the generator so
            # its job subscription loop ends with it.
            response.stream.close()

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch()

    do_POST = do_GET
    do_DELETE = do_GET
    do_HEAD = do_GET

    def log_message(self, format: str, *args) -> None:
        """Silence the default stderr log; AccessLogMiddleware owns it."""


def make_server(
    service: StudyService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server to the service (port 0 = ephemeral)."""
    handler = type(
        "BoundServiceHandler", (_ServiceHTTPHandler,), {"service": service}
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve(
    host: str = "127.0.0.1",
    port: int = 8000,
    **service_kwargs,
) -> int:
    """Run the service until interrupted (the ``repro serve`` command)."""
    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s %(message)s"
    )
    service = StudyService(**service_kwargs)
    server = make_server(service, host, port)
    bound = server.server_address
    print(f"repro service listening on http://{bound[0]}:{bound[1]}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
        service.close()
    return 0
