"""The service's middleware pipeline.

The request path is an explicit, *ordered* composition of small
stages, each owning one communication concern — the composable-stage
middleware shape (mmb, arXiv:1904.11277) over plain callables::

    RequestContextMiddleware      assign request id, propagate context
      -> AccessLogMiddleware      one structured log line per request
        -> MetricsMiddleware      latency/error counters (/metrics)
          -> TokenBucketMiddleware  rate limiting (429 + Retry-After)
            -> ResponseCacheMiddleware  dedup by canonical config hash
              -> ErrorBoundaryMiddleware  exceptions -> 500 Response
                -> Router.dispatch  the application

Every stage has the same signature — ``handle(ctx, request,
call_next)`` — and takes an injectable monotonic ``clock`` where it
measures time, so each is unit-testable in isolation with a fake
clock (``tests/service/test_middleware.py``) and the composed order is
visible in one place (:func:`build_pipeline` callers).

The response cache leans on the determinism contract: an identical
config + seed reproduces a study bit for bit, so a cache hit may
return the stored response bytes without touching a simulator.
"""

from __future__ import annotations

import itertools
import json
import logging
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.config import config_hash

__all__ = [
    "Request",
    "Response",
    "RequestContext",
    "Middleware",
    "RequestContextMiddleware",
    "AccessLogMiddleware",
    "MetricsMiddleware",
    "TokenBucketMiddleware",
    "ResponseCacheMiddleware",
    "ErrorBoundaryMiddleware",
    "build_pipeline",
    "json_response",
]


# -- request/response primitives ----------------------------------------


@dataclass
class Request:
    """One parsed HTTP request, transport-independent."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)  # lowercase keys
    body: bytes = b""
    client: str = ""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


@dataclass
class Response:
    """One response: either ``body`` bytes or a streaming iterator."""

    status: int = 200
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    stream: Iterator[bytes] | None = None
    # Set by the application when the response may be replayed for an
    # identical request (the cache middleware stores it then).
    cacheable: bool = False


@dataclass
class RequestContext:
    """Per-request context threaded through the pipeline and into the
    application (the job manager records ``request_id`` in its logs)."""

    request_id: str = ""
    data: dict = field(default_factory=dict)


def json_response(
    payload: dict, status: int = 200, cacheable: bool = False
) -> Response:
    """Canonical JSON response: sorted keys, compact separators.

    Canonical bytes are what make the cache's byte-identity contract
    testable — the same payload always serializes identically.
    """
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    return Response(
        status=status,
        headers={"Content-Type": "application/json"},
        body=body,
        cacheable=cacheable,
    )


# -- pipeline composition -----------------------------------------------

Handler = Callable[[RequestContext, Request], Response]


class Middleware:
    """One pipeline stage. Subclasses override :meth:`handle`."""

    def handle(
        self, ctx: RequestContext, request: Request, call_next: Handler
    ) -> Response:
        return call_next(ctx, request)


def build_pipeline(middlewares: list[Middleware], handler: Handler) -> Handler:
    """Compose stages around ``handler``; first in the list is outermost."""

    def wrap(mw: Middleware, nxt: Handler) -> Handler:
        def call(ctx: RequestContext, request: Request) -> Response:
            return mw.handle(ctx, request, nxt)

        return call

    for mw in reversed(middlewares):
        handler = wrap(mw, handler)
    return handler


# -- stages -------------------------------------------------------------


class RequestContextMiddleware(Middleware):
    """Assign a request id and echo it back as ``X-Request-ID``.

    Ids are a monotone counter (``req-000001``), deterministic within a
    service instance so tests can assert propagation end to end; a
    client-supplied ``X-Request-ID`` header wins, as a gateway upstream
    of this service would already have assigned one.
    """

    def __init__(self) -> None:
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    def handle(self, ctx, request, call_next):
        supplied = request.header("x-request-id")
        if supplied:
            ctx.request_id = supplied
        else:
            with self._lock:
                ctx.request_id = f"req-{next(self._counter):06d}"
        response = call_next(ctx, request)
        response.headers.setdefault("X-Request-ID", ctx.request_id)
        return response


class AccessLogMiddleware(Middleware):
    """One structured (JSON) log line per request on
    ``repro.service.access``. For streaming responses the duration is
    time-to-first-byte: the stream is produced after the handler
    returns, and the log must not wait on a slow consumer."""

    def __init__(
        self,
        logger: logging.Logger | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._log = logger or logging.getLogger("repro.service.access")
        self._clock = clock

    def handle(self, ctx, request, call_next):
        start = self._clock()
        response = call_next(ctx, request)
        line = {
            "request_id": ctx.request_id,
            "method": request.method,
            "path": request.path,
            "status": response.status,
            "duration_ms": round((self._clock() - start) * 1000.0, 3),
            "client": request.client,
        }
        self._log.info("%s", json.dumps(line, sort_keys=True))
        return response


def _route_label(path: str) -> str:
    """Collapse per-study paths to one metrics label (bounded cardinality)."""
    parts = path.split("/")
    if len(parts) >= 3 and parts[1] == "studies" and parts[2]:
        parts[2] = "{id}"
    return "/".join(parts)


class MetricsMiddleware(Middleware):
    """Request/latency/error counters with a text rendering.

    Counters are keyed by ``(method, route, status)`` where ``route``
    collapses study ids; latency is accumulated as sum + count per
    ``(method, route)`` so consumers can derive means. ``render()``
    produces the Prometheus-style exposition served at ``/metrics``.

    Label cardinality is bounded on both axes: ``route`` collapses ids
    and unknown paths, and ``method`` collapses anything outside the
    standard HTTP verbs to ``other`` — an arbitrary request line must
    not mint an unbounded set of series.
    """

    _KNOWN_METHODS = frozenset(
        {"GET", "POST", "PUT", "DELETE", "PATCH", "HEAD", "OPTIONS"}
    )

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        logger: logging.Logger | None = None,
    ) -> None:
        self._clock = clock
        self._log = logger or logging.getLogger("repro.service.error")
        self._lock = threading.Lock()
        self._requests: dict[tuple[str, str, int], int] = {}
        self._latency_ms: dict[tuple[str, str], float] = {}
        self._latency_count: dict[tuple[str, str], int] = {}
        self._errors: dict[tuple[str, str], int] = {}

    def handle(self, ctx, request, call_next):
        start = self._clock()
        try:
            response = call_next(ctx, request)
        except Exception:
            # Exceptions from the stages between metrics and the error
            # boundary (rate limiter, cache) land here. They keep
            # propagating — the transport owns the response — but must
            # not travel unlogged: the boundary never saw them.
            self._observe(request, 500, self._clock() - start)
            self._log.exception(
                "%s",
                json.dumps(
                    {
                        "event": "middleware_error",
                        "request_id": ctx.request_id,
                        "method": request.method,
                        "path": request.path,
                        "status": 500,
                    },
                    sort_keys=True,
                ),
            )
            raise
        self._observe(request, response.status, self._clock() - start)
        return response

    def _observe(self, request: Request, status: int, elapsed: float) -> None:
        route = _route_label(request.path)
        method = (
            request.method
            if request.method in self._KNOWN_METHODS
            else "other"
        )
        with self._lock:
            key = (method, route, status)
            self._requests[key] = self._requests.get(key, 0) + 1
            lkey = (method, route)
            self._latency_ms[lkey] = (
                self._latency_ms.get(lkey, 0.0) + elapsed * 1000.0
            )
            self._latency_count[lkey] = self._latency_count.get(lkey, 0) + 1
            if status >= 500:
                self._errors[lkey] = self._errors.get(lkey, 0) + 1

    def counters(self) -> dict:
        """Snapshot of all counters (tests and introspection)."""
        with self._lock:
            return {
                "requests": dict(self._requests),
                "latency_ms": dict(self._latency_ms),
                "latency_count": dict(self._latency_count),
                "errors": dict(self._errors),
            }

    def render(self) -> str:
        """Prometheus-style text exposition."""
        out: list[str] = []
        with self._lock:
            out.append("# TYPE repro_requests_total counter")
            for (method, route, status), count in sorted(self._requests.items()):
                out.append(
                    "repro_requests_total"
                    f'{{method="{method}",route="{route}",status="{status}"}}'
                    f" {count}"
                )
            out.append("# TYPE repro_request_latency_ms summary")
            for (method, route), total in sorted(self._latency_ms.items()):
                label = f'{{method="{method}",route="{route}"}}'
                out.append(f"repro_request_latency_ms_sum{label} {total:.3f}")
                out.append(
                    f"repro_request_latency_ms_count{label} "
                    f"{self._latency_count[(method, route)]}"
                )
            out.append("# TYPE repro_errors_total counter")
            for (method, route), count in sorted(self._errors.items()):
                out.append(
                    f'repro_errors_total{{method="{method}",route="{route}"}}'
                    f" {count}"
                )
        return "\n".join(out) + "\n"


class TokenBucketMiddleware(Middleware):
    """Global token-bucket rate limiter.

    A bucket of ``capacity`` tokens refills continuously at
    ``refill_per_sec``; each non-exempt request spends one token, and
    an empty bucket yields ``429`` with a ``Retry-After`` header (time
    until one token, rounded up to whole seconds). Operational probes
    (``/healthz``, ``/metrics``) are exempt by default so a saturated
    service stays observable.
    """

    def __init__(
        self,
        capacity: int = 50,
        refill_per_sec: float = 25.0,
        exempt: tuple[str, ...] = ("/healthz", "/metrics"),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity <= 0 or refill_per_sec <= 0:
            raise ValueError("capacity and refill_per_sec must be positive")
        self.capacity = capacity
        self.refill_per_sec = refill_per_sec
        self._exempt = set(exempt)
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = float(capacity)
        self._last = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last)
        self._tokens = min(
            float(self.capacity), self._tokens + elapsed * self.refill_per_sec
        )
        self._last = now

    @property
    def tokens(self) -> float:
        """Current token count (refilled to now; for tests/inspection)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens

    def handle(self, ctx, request, call_next):
        if request.path in self._exempt:
            return call_next(ctx, request)
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                allowed = True
                wait = 0.0
            else:
                allowed = False
                wait = (1.0 - self._tokens) / self.refill_per_sec
        if allowed:
            return call_next(ctx, request)
        retry_after = max(1, int(-(-wait // 1)))
        response = json_response(
            {"error": "rate limited", "retry_after": retry_after}, status=429
        )
        response.headers["Retry-After"] = str(retry_after)
        return response


class ErrorBoundaryMiddleware(Middleware):
    """Convert handler exceptions into a 500 ``Response``.

    Sits innermost, directly around the router: an exception escaping
    a handler used to unwind straight past every outer stage, so the
    request produced no access-log line, no latency sample, and the
    transport's bare 500 carried no ``X-Request-ID``. Catching it
    *inside* the pipeline turns the failure into an ordinary response
    that flows back out through logging, metrics and the request-id
    hook like any other. The traceback goes to ``repro.service.error``;
    the body deliberately carries only the exception type (plus the
    request id for log correlation), not its message — internals stay
    out of the wire format.
    """

    def __init__(self, logger: logging.Logger | None = None) -> None:
        self._log = logger or logging.getLogger("repro.service.error")

    def handle(self, ctx, request, call_next):
        try:
            return call_next(ctx, request)
        except Exception as exc:
            self._log.exception(
                "unhandled error serving %s %s (request_id=%s)",
                request.method,
                request.path,
                ctx.request_id,
            )
            return json_response(
                {
                    "error": f"internal error: {type(exc).__name__}",
                    "request_id": ctx.request_id,
                },
                status=500,
            )


def study_request_key(request: Request) -> str | None:
    """Cache key for study submissions: the canonical config hash.

    Only ``POST /studies`` bodies are keyed; anything unparsable
    returns None (bypass — the application will reject it with 400).
    """
    if request.method != "POST" or request.path != "/studies":
        return None
    try:
        payload = json.loads(request.body.decode("utf-8"))
        return config_hash(payload)
    except (ValueError, UnicodeDecodeError):
        return None


class ResponseCacheMiddleware(Middleware):
    """Deterministic response cache keyed by canonical config hash.

    Identical config + seed means an identical run, so the response to
    a repeated study submission can be replayed byte for byte without
    building a simulator. The computed key is stashed in
    ``ctx.data["config_hash"]`` for the application (the job manager
    dedups on the same key, so the two layers can never disagree).
    LRU-evicts beyond ``max_entries``; only responses the application
    marked ``cacheable`` (2xx submissions) are stored. Streaming
    responses are never cached.
    """

    def __init__(
        self,
        max_entries: int = 128,
        key_fn: Callable[[Request], str | None] = study_request_key,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._key_fn = key_fn
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[int, dict, bytes]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def invalidate(self, key: str) -> None:
        """Drop one entry (the app calls this when a study is deleted
        or fails — a FAILED job's cached submission body would
        otherwise swallow the fresh run ``submit()`` promises)."""
        with self._lock:
            self._entries.pop(key, None)

    def seed(self, key: str, response: Response) -> None:
        """Pre-populate an entry (cache warming after restart recovery).

        Applies the same guards as the store path — cacheable 2xx,
        no stream — so recovery cannot plant anything a live request
        could not have.
        """
        if not (
            response.cacheable
            and response.stream is None
            and 200 <= response.status < 300
        ):
            return
        with self._lock:
            self._entries[key] = (
                response.status,
                dict(response.headers),
                response.body,
            )
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def handle(self, ctx, request, call_next):
        key = self._key_fn(request)
        if key is None:
            return call_next(ctx, request)
        ctx.data["config_hash"] = key
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                status, headers, body = entry
            else:
                self.misses += 1
        if entry is not None:
            headers = dict(headers)
            headers["X-Cache"] = "hit"
            return Response(status=status, headers=headers, body=body)
        response = call_next(ctx, request)
        if (
            response.cacheable
            and response.stream is None
            and 200 <= response.status < 300
        ):
            with self._lock:
                self._entries[key] = (
                    response.status,
                    dict(response.headers),
                    response.body,
                )
                self._entries.move_to_end(key)
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
        response.headers.setdefault("X-Cache", "miss")
        return response
