"""Command-line interface.

Six subcommands::

    python -m repro.cli study --dataset purchase100 --protocol samo \
        --nodes 8 --rounds 5 --dynamic --out run.json
    python -m repro.cli study --resume run.ckpt --out run.json
    python -m repro.cli study --telemetry --trace-out spans.jsonl
    python -m repro.cli campaign --dataset purchase100 --scale tiny \
        --grid seed=0,1,2 --grid protocol=samo,base_gossip \
        --out-dir runs/ --jobs 0
    python -m repro.cli report runs/*.json --telemetry
    python -m repro.cli report --trace spans.jsonl
    python -m repro.cli serve --port 8000
    python -m repro.cli figure --id 3 --scale tiny
    python -m repro.cli tables

``study`` runs one experiment as a streaming session (rows print as
rounds complete) and optionally writes JSON/CSV; ``--checkpoint``
snapshots the session every round and ``--resume`` continues a
checkpointed run bit-identically; ``--telemetry``/``--trace-out``
record spans and engine metrics (``docs/observability.md``).
``campaign`` sweeps a grid of configs over a process pool with
per-study result files (re-running with the same ``--out-dir``
resumes). ``report`` inspects saved results and span dumps offline.
``serve`` runs the long-lived HTTP/SSE service (``docs/service.md``).
``figure`` regenerates one paper figure's data series; ``tables``
prints Tables 1 and 2.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_study_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("study", help="run one gossip-learning MIA study")
    p.add_argument("--dataset", default="purchase100",
                   choices=["cifar10", "cifar100", "fashion_mnist", "purchase100"])
    p.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])
    p.add_argument("--protocol", default="samo",
                   choices=["samo", "base_gossip", "base_gossip_partial"])
    p.add_argument("--sampler", default=None,
                   choices=["static", "peerswap", "fresh"])
    p.add_argument("--dynamic", action="store_true")
    p.add_argument("--nodes", type=int, default=None)
    p.add_argument("--view-size", type=int, default=None)
    p.add_argument("--rounds", type=int, default=None)
    p.add_argument("--beta", type=float, default=None,
                   help="Dirichlet concentration for non-iid splits")
    p.add_argument("--dp-epsilon", type=float, default=None)
    p.add_argument("--dropout", type=float, default=0.0,
                   help="dropout probability for the MLP hidden layers "
                        "(counter-based mask streams; batchable)")
    p.add_argument("--canaries", type=int, default=0)
    p.add_argument("--drop-prob", type=float, default=0.0)
    p.add_argument("--failure-prob", type=float, default=0.0)
    p.add_argument("--engine", default="flat", choices=["flat", "dict"],
                   help="state engine: flat-buffer arena (default) or the "
                        "legacy dict-State path")
    p.add_argument("--executor", default="serial",
                   choices=["serial", "process", "batched", "sharded"],
                   help="local-update executor (flat engine only): serial "
                        "workspace, process pool, blocked multi-model "
                        "training over the arena, or shard workers running "
                        "the blocked kernels over a shared-memory arena")
    p.add_argument("--workers", type=int, default=0,
                   help="process-pool size; 0 = one per CPU (capped)")
    p.add_argument("--shards", type=int, default=0,
                   help="shard-worker count for the sharded executor; "
                        "0 = one per CPU (capped at the node count)")
    p.add_argument("--shard-partition", default="contiguous",
                   choices=["contiguous", "balanced"],
                   help="row-to-shard mapping: contiguous ranges, or "
                        "balanced by per-node sample count")
    p.add_argument("--train-batch", type=int, default=0,
                   help="rows per blocked training op for the batched "
                        "executor (0 = all same-size wake tasks at once, "
                        "-1 = per-row path)")
    p.add_argument("--arena-dtype", default="float64",
                   choices=["float32", "float64"],
                   help="flat-arena storage dtype")
    p.add_argument("--eval-batch", type=int, default=0,
                   help="node models per blocked evaluation op "
                        "(0 = all at once, -1 = legacy per-node loop)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="snapshot the session here after every round "
                        "(resumable with --resume)")
    p.add_argument("--resume", default=None, metavar="PATH",
                   help="continue a checkpointed study (its stored "
                        "config wins; other config flags are ignored)")
    p.add_argument("--out", default=None, help="write RunResult JSON here")
    p.add_argument("--csv", default=None, help="write per-round CSV here")
    p.add_argument("--telemetry", action="store_true",
                   help="record tracing spans + engine metrics during the "
                        "run; prints a phase summary and annotates --out "
                        "JSON with metadata['telemetry']")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="write the finished spans as JSONL here "
                        "(implies --telemetry; inspect with "
                        "'repro report --trace PATH')")


def _print_round(r) -> None:
    print(
        f"{r.round_index:>5} {r.global_test_accuracy:>9.3f} "
        f"{r.mia_accuracy:>8.3f} {r.mia_tpr_at_1_fpr:>7.3f} "
        f"{r.generalization_error:>8.3f}"
    )


def _run_study(args: argparse.Namespace) -> int:
    from repro.core.study import Study
    from repro.experiments import result_to_csv, save_result, scaled_config
    from repro.telemetry import Telemetry

    telemetry = None
    if args.telemetry or args.trace_out:
        telemetry = Telemetry(enabled=True)
        telemetry.tracer.set_trace_id(f"cli-study-seed{args.seed}")
    if args.resume:
        study = Study.resume(args.resume, telemetry=telemetry)
    else:
        overrides: dict = {
            "protocol": args.protocol,
            "dynamic": args.dynamic,
            "beta": args.beta,
            "dp_epsilon": args.dp_epsilon,
            "dropout": args.dropout,
            "n_canaries": args.canaries,
            "drop_prob": args.drop_prob,
            "failure_prob": args.failure_prob,
            "engine": args.engine,
            "executor": args.executor,
            "n_workers": args.workers,
            "n_shards": args.shards,
            "shard_partition": args.shard_partition,
            "train_batch": args.train_batch,
            "arena_dtype": args.arena_dtype,
            "eval_batch": args.eval_batch,
            "seed": args.seed,
            "name": f"cli-{args.dataset}",
        }
        if args.sampler is not None:
            overrides["sampler"] = args.sampler
        if args.nodes is not None:
            overrides["n_nodes"] = args.nodes
        if args.view_size is not None:
            overrides["view_size"] = args.view_size
        if args.rounds is not None:
            overrides["rounds"] = args.rounds
        study = Study(
            scaled_config(args.dataset, args.scale, **overrides),
            telemetry=telemetry,
        )

    print(f"{'round':>5} {'test_acc':>9} {'mia_acc':>8} {'tpr@1%':>7} "
          f"{'gen_err':>8}")
    with study:
        for r in study.records:  # rounds completed before a --resume
            _print_round(r)
        for r in study.iter_rounds():
            _print_round(r)
            if args.checkpoint:
                study.checkpoint(args.checkpoint)
        result = study.result()
    if telemetry is not None:
        _print_phase_summary(telemetry)
        if args.trace_out:
            count = telemetry.tracer.dump_jsonl(args.trace_out)
            print(f"wrote {args.trace_out} ({count} spans)")
    if args.out:
        print(f"wrote {save_result(result, args.out)}")
    if args.csv:
        print(f"wrote {result_to_csv(result, args.csv)}")
    return 0


def _print_phase_summary(telemetry) -> None:
    """Per-phase totals from the run's engine-phase histogram."""
    family = telemetry.registry.snapshot().get("repro_engine_phase_ms")
    if family is None:
        return
    print("phase totals:")
    for series in family["series"]:
        phase = series["labels"].get("phase", "?")
        print(f"  {phase:<10} {series['sum']:>10.1f} ms "
              f"over {series['count']} rounds")


def _parse_axis_value(text: str):
    """CLI sweep literal -> python value (int, float, bool, None, str)."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _add_campaign_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "campaign",
        help="sweep a grid of studies over a process pool",
    )
    p.add_argument("--dataset", default="purchase100",
                   choices=["cifar10", "cifar100", "fashion_mnist", "purchase100"])
    p.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--name", default=None,
                   help="base name for the campaign's configs "
                        "(default: campaign-<dataset>)")
    p.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                   help="override one base-config knob (repeatable), "
                        "e.g. --set rounds=2")
    p.add_argument("--grid", action="append", default=[], metavar="KEY=V1,V2,...",
                   help="sweep one knob over comma-separated values "
                        "(repeatable; axes combine as a cartesian grid)")
    p.add_argument("--jobs", type=int, default=0,
                   help="studies in flight at once; 0 = auto "
                        "(CPUs divided by per-study worker demand)")
    p.add_argument("--out-dir", default=None,
                   help="write per-study RunResult JSON here; re-running "
                        "with the same directory resumes the campaign")
    p.add_argument("--summary", default=None, metavar="CSV",
                   help="write the one-row-per-study summary table here")


def _run_campaign(args: argparse.Namespace) -> int:
    from repro.experiments import (
        Campaign,
        results_to_summary_csv,
        scaled_config,
    )

    if not args.grid:
        print("campaign needs at least one --grid axis", file=sys.stderr)
        return 2
    overrides = {"seed": args.seed, "name": args.name or f"campaign-{args.dataset}"}
    for item in args.set:
        key, _, value = item.partition("=")
        if not _:
            print(f"bad --set {item!r} (expected KEY=VALUE)", file=sys.stderr)
            return 2
        overrides[key] = _parse_axis_value(value)
    axes: dict = {}
    for item in args.grid:
        key, _, values = item.partition("=")
        if not _ or not values:
            print(f"bad --grid {item!r} (expected KEY=V1,V2,...)", file=sys.stderr)
            return 2
        axes[key] = [_parse_axis_value(v) for v in values.split(",")]
    base = scaled_config(args.dataset, args.scale, **overrides)
    campaign = Campaign.from_grid(base, out_dir=args.out_dir, **axes)
    print(f"campaign: {len(campaign.configs)} studies")
    results = campaign.run(jobs=args.jobs or None)

    print(f"{'study':<44} {'rounds':>6} {'max_test':>9} {'max_mia':>8} "
          f"{'tpr@1%':>7}")
    for name, result in results.items():
        print(
            f"{name:<44} {len(result.rounds):>6} "
            f"{result.max_test_accuracy:>9.3f} "
            f"{result.max_mia_accuracy:>8.3f} {result.max_mia_tpr:>7.3f}"
        )
    if args.out_dir:
        print(f"per-study results under {args.out_dir}")
    if args.summary:
        print(f"wrote {results_to_summary_csv(results, args.summary)}")
    return 0


def _add_report_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "report",
        help="inspect saved RunResult JSON files and telemetry dumps",
    )
    p.add_argument("results", nargs="*", metavar="RESULT.json",
                   help="RunResult files written by 'repro study --out' "
                        "or a campaign --out-dir")
    p.add_argument("--telemetry", action="store_true",
                   help="also print each result's telemetry metadata "
                        "(per-round wall-clock, fallback counters)")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="pretty-print a span tree from a --trace-out "
                        "JSONL dump")


def _run_report(args: argparse.Namespace) -> int:
    import json

    from repro.experiments import load_result

    if not args.results and not args.trace:
        print("report needs result files and/or --trace FILE",
              file=sys.stderr)
        return 2
    for path in args.results:
        result = load_result(path)
        print(
            f"{result.config_name}: {len(result.rounds)} rounds, "
            f"max_test={result.max_test_accuracy:.3f}, "
            f"max_mia={result.max_mia_accuracy:.3f}"
        )
        if args.telemetry:
            meta = result.metadata or {}
            fallbacks = meta.get("fallback_counts") or {}
            if fallbacks:
                counts = ", ".join(
                    f"{k}={v}" for k, v in sorted(fallbacks.items())
                )
                print(f"  fallbacks: {counts}")
            tel = meta.get("telemetry")
            if tel is None:
                print("  (no telemetry metadata; run with --telemetry)")
                continue
            round_ms = tel.get("round_ms", [])
            if round_ms:
                print(
                    f"  rounds: {len(round_ms)}, "
                    f"total {sum(round_ms):.1f} ms, "
                    f"mean {sum(round_ms) / len(round_ms):.1f} ms, "
                    f"max {max(round_ms):.1f} ms"
                )
            print(
                f"  spans: {tel.get('spans_recorded', 0)} recorded, "
                f"{tel.get('spans_dropped', 0)} dropped"
            )
    if args.trace:
        spans = []
        with open(args.trace, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    spans.append(json.loads(line))
        _print_span_tree(spans)
    return 0


def _print_span_tree(spans: list[dict]) -> None:
    """Indented tree of a JSONL span dump, children under parents."""
    children: dict[str, list[dict]] = {}
    known = {span["span_id"] for span in spans}
    roots = []
    for span in spans:
        parent = span.get("parent_id") or ""
        if parent in known:
            children.setdefault(parent, []).append(span)
        else:
            # Orphans (parent fell out of the bounded buffer) print as
            # roots rather than vanishing.
            roots.append(span)

    def emit(span: dict, depth: int) -> None:
        attrs = span.get("attributes") or {}
        extra = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        line = (
            f"{'  ' * depth}{span['name']} "
            f"{span.get('duration_ms', 0.0):.3f}ms"
        )
        if extra:
            line += f" [{extra}]"
        print(line)
        for child in sorted(
            children.get(span["span_id"], []),
            key=lambda s: s.get("start_ms", 0.0),
        ):
            emit(child, depth + 1)

    for root in sorted(roots, key=lambda s: s.get("start_ms", 0.0)):
        emit(root, 0)


def _add_serve_parser(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "serve",
        help="run the HTTP/SSE study service (see docs/service.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8000,
                   help="listen port (0 = ephemeral)")
    p.add_argument("--job-workers", type=int, default=2,
                   help="study worker threads draining the job queue")
    p.add_argument("--rate-capacity", type=int, default=50,
                   help="token-bucket burst capacity")
    p.add_argument("--rate-refill", type=float, default=25.0,
                   help="token-bucket refill rate (tokens/second)")
    p.add_argument("--cache-entries", type=int, default=128,
                   help="response-cache size (LRU, keyed by config hash)")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="where cancelled studies checkpoint for resume "
                        "(default: under --state-dir if given, else a "
                        "private temporary directory)")
    p.add_argument("--state-dir", default=None, metavar="DIR",
                   help="durable job state (journal + snapshot + "
                        "checkpoints); the service recovers submitted "
                        "studies from here after a restart")


def _run_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    return serve(
        host=args.host,
        port=args.port,
        job_workers=args.job_workers,
        rate_capacity=args.rate_capacity,
        rate_refill=args.rate_refill,
        cache_entries=args.cache_entries,
        checkpoint_dir=args.checkpoint_dir,
        state_dir=args.state_dir,
    )


def _collect_series(obj, prefix="", out=None, key="mia_accuracy"):
    """Find every array named ``key`` in a nested figure result."""
    if out is None:
        out = {}
    if isinstance(obj, dict):
        for k, v in obj.items():
            if k == key and isinstance(v, np.ndarray):
                out[prefix.rstrip(".") or key] = v
            else:
                _collect_series(v, f"{prefix}{k}.", out, key)
    return out


def _plot_figure(figure_id: int, out: dict) -> None:
    from repro.experiments.plots import ascii_chart

    if figure_id == 10:
        curves = {
            name: curve["mean"] for name, curve in out["curves"].items()
        }
        print(ascii_chart(curves, logy=True))
        return
    key = "max_canary_tpr" if figure_id == 4 else "mia_accuracy"
    series = _collect_series(out, key=key)
    if series:
        print(ascii_chart(dict(list(series.items())[:8])))
    else:
        print("(nothing chartable for this figure)")


def _run_figure(args: argparse.Namespace) -> int:
    from repro.experiments import figures

    fn = getattr(figures, f"figure{args.id}", None)
    if fn is None:
        print(f"no generator for figure {args.id}", file=sys.stderr)
        return 2
    if args.id == 10:
        # Figure 10 always runs at the paper's n=150; the scale knob
        # controls repetition count and horizon.
        grid = {
            "tiny": dict(iterations=40, runs=5),
            "small": dict(iterations=80, runs=15),
            "paper": dict(iterations=125, runs=50),
        }[args.scale]
        out = fn(**grid)
    else:
        out = fn(scale=args.scale)

    def summarize(obj, prefix=""):
        if isinstance(obj, dict):
            for key, value in obj.items():
                summarize(value, f"{prefix}{key}.")
        elif isinstance(obj, np.ndarray):
            flat = np.asarray(obj, dtype=np.float64).ravel()
            print(f"{prefix[:-1]}: "
                  + " ".join(f"{v:.4g}" for v in flat[:12])
                  + (" ..." if flat.size > 12 else ""))
        elif isinstance(obj, list) and obj and isinstance(obj[0], dict):
            for i, row in enumerate(obj):
                print(f"{prefix[:-1]}[{i}]: {row}")
        else:
            print(f"{prefix[:-1]}: {obj}")

    summarize(out)
    if args.plot:
        print()
        _plot_figure(args.id, out)
    return 0


def _run_tables(_: argparse.Namespace) -> int:
    from repro.experiments.tables import render_rows, table1, table2

    print("Table 1 — dataset characteristics")
    print(render_rows(table1()))
    print("\nTable 2 — training configuration")
    print(render_rows(table2()))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Exposing the Vulnerability of "
        "Decentralized Learning to MIA Through the Lens of Graph Mixing'",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_study_parser(sub)
    _add_campaign_parser(sub)
    _add_report_parser(sub)
    _add_serve_parser(sub)
    fig = sub.add_parser("figure", help="regenerate one paper figure's data")
    fig.add_argument("--id", type=int, required=True, choices=range(2, 11))
    fig.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])
    fig.add_argument("--plot", action="store_true",
                     help="render an ASCII chart of the main series")
    sub.add_parser("tables", help="print Tables 1 and 2")

    args = parser.parse_args(argv)
    if args.command == "study":
        return _run_study(args)
    if args.command == "campaign":
        return _run_campaign(args)
    if args.command == "report":
        return _run_report(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "figure":
        return _run_figure(args)
    return _run_tables(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
