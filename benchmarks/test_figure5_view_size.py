"""Figure 5 (RQ4) — view-size sweep on CIFAR-10-like data, SAMO.

Paper shape: increasing the view size improves the privacy/utility
trade-off for both settings; the static/dynamic gap narrows as k grows
(the graph approaches complete); communication cost grows with k.
"""

import numpy as np

from repro.experiments import figures

from benchmarks.conftest import run_once


def test_figure5_view_size_sweep(benchmark, scale):
    out = run_once(benchmark, figures.figure5, scale=scale)

    print(f"\nfig5 dataset={out['dataset']} view sizes={out['view_sizes']}")
    header = (
        f"{'setting':<8} {'k':>3} {'max_mia':>8} {'max_tpr':>8} "
        f"{'max_test':>9} {'models/node':>12}"
    )
    print(header)
    for setting, rows in out["settings"].items():
        for row in rows:
            print(
                f"{setting:<8} {row['view_size']:>3} "
                f"{row['max_mia_accuracy']:>8.3f} "
                f"{row['max_mia_tpr_at_1_fpr']:>8.3f} "
                f"{row['max_test_accuracy']:>9.3f} "
                f"{row['models_sent_per_node']:>12.1f}"
            )

    static = out["settings"]["static"]
    dynamic = out["settings"]["dynamic"]

    # Shape 1: cost grows strictly with view size (SAMO sends to all).
    for rows in (static, dynamic):
        costs = [r["models_sent_per_node"] for r in rows]
        assert all(b > a for a, b in zip(costs, costs[1:]))

    # Shape 2: the static/dynamic MIA gap shrinks as k grows.
    gap_smallest_k = abs(
        static[0]["max_mia_accuracy"] - dynamic[0]["max_mia_accuracy"]
    )
    gap_largest_k = abs(
        static[-1]["max_mia_accuracy"] - dynamic[-1]["max_mia_accuracy"]
    )
    print(f"MIA gap at k={static[0]['view_size']}: {gap_smallest_k:.3f}; "
          f"at k={static[-1]['view_size']}: {gap_largest_k:.3f}")
    assert gap_largest_k <= gap_smallest_k + 0.05

    # Shape 3: denser graphs do not increase vulnerability for the
    # static setting (more mixing helps).
    assert (
        static[-1]["max_mia_accuracy"] <= static[0]["max_mia_accuracy"] + 0.05
    )
