"""Figure 10 (Section 4) — lambda2(W*) decay for k-regular graphs.

Runs at the paper's full n=150. Paper shape:

* static decays geometrically as lambda2(W)^T;
* dynamic decays much faster for the same k, with negligible variance;
* larger k decays faster in both settings.
"""

import os

import numpy as np

from repro.experiments import figures

from benchmarks.conftest import run_once


def test_figure10_lambda2_decay(benchmark):
    # 50 runs x 125 iterations at n=150 as in the paper when scale is
    # raised; a reduced grid by default.
    if os.environ.get("REPRO_BENCH_SCALE") == "paper":
        params = dict(n=150, view_sizes=(2, 5, 10, 25), iterations=125, runs=50)
    else:
        params = dict(n=150, view_sizes=(2, 5, 10, 25), iterations=40, runs=5)
    out = run_once(benchmark, figures.figure10, **params)

    print(f"\nfig10 n={out['n']} iterations={out['iterations']} runs={out['runs']}")
    finals = {}
    for label, curve in sorted(out["curves"].items()):
        finals[label] = curve["mean"][-1]
        print(
            f"{label:<16} final lambda2={curve['mean'][-1]:.3e} "
            f"(std {curve['std'][-1]:.1e})"
        )

    # Shape 1: dynamic beats static for every k (by orders of magnitude
    # at low k; both may bottom out at the precision floor for large k).
    floor = 2e-13
    for k in (2, 5, 10, 25):
        static_val = finals[f"static-{k}reg"]
        dynamic_val = finals[f"dynamic-{k}reg"]
        if static_val > floor:
            assert dynamic_val < static_val
        else:
            assert dynamic_val <= static_val
    assert finals["dynamic-2reg"] < finals["static-2reg"] / 100

    # Shape 2: larger k decays faster within each setting.
    for setting in ("static", "dynamic"):
        values = [finals[f"{setting}-{k}reg"] for k in (2, 5, 10, 25)]
        assert all(b <= a * 1.01 for a, b in zip(values, values[1:]))

    # Shape 3: the static curve matches the closed form lambda2(W)^T.
    static2 = out["curves"]["static-2reg"]["mean"]
    with np.errstate(divide="ignore"):
        # Geometric decay means log-values are affine in t.
        logs = np.log(static2[:10])
    diffs = np.diff(logs)
    assert diffs.std() < 0.2 * abs(diffs.mean())

    # Shape 4: dynamic standard deviation is negligible relative to the
    # static spread ("bad mixing scenarios occur with negligible
    # probability").
    assert out["curves"]["dynamic-5reg"]["std"][-1] <= max(
        out["curves"]["static-5reg"]["std"][-1], 1e-12
    )
