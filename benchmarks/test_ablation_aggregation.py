"""Ablation — local aggregation strategy (DESIGN.md design choice).

Section 6.2 of the paper argues that the *partial* model aggregation
used by Pasquini et al. [62] "leads to worse model mixing and,
consequently, to more vulnerable models". This ablation runs the same
training with three aggregation strategies:

* ``samo``                — merge ALL buffered models at once (best mixing),
* ``base_gossip``         — pairwise 50/50 averaging (Algorithm 1),
* ``base_gossip_partial`` — self-biased 75/25 merge (worst mixing).

Shape asserted: vulnerability orders inversely with mixing quality.
"""

import numpy as np

from repro.experiments import run_many, scaled_config

from benchmarks.conftest import run_once


def test_ablation_aggregation_strategy(benchmark, scale):
    protocols = ("samo", "base_gossip", "base_gossip_partial")

    def run():
        configs = [
            scaled_config(
                "purchase100",
                scale,
                name=protocol,
                protocol=protocol,
                view_size=5,
                dynamic=False,
                seed=0,
            )
            for protocol in protocols
        ]
        return run_many(configs)

    results = run_once(benchmark, run)

    print(f"\n{'protocol':<22} {'final_mia':>10} {'max_test':>9} {'msgs':>7}")
    final_mia = {}
    for name, result in results.items():
        final_mia[name] = result.rounds[-1].mia_accuracy
        print(
            f"{name:<22} {final_mia[name]:>10.3f} "
            f"{result.max_test_accuracy:>9.3f} {result.total_messages:>7}"
        )

    # Shape: partial aggregation is the most vulnerable of the three;
    # SAMO is not worse than plain pairwise averaging.
    assert final_mia["base_gossip_partial"] >= final_mia["base_gossip"] - 0.02
    assert final_mia["samo"] <= final_mia["base_gossip_partial"] + 0.01
    # All attacks beat chance (sanity).
    assert all(v > 0.5 for v in final_mia.values())
