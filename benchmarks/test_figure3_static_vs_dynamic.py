"""Figure 3 (RQ2) — static vs dynamic topology on a 2-regular graph.

Paper shape: in all datasets, dynamic topologies achieve a better
trade-off — lower MIA vulnerability at comparable (or better) test
accuracy.
"""

import numpy as np

from repro.experiments import figures

from benchmarks.conftest import print_series, run_once


def test_figure3_static_vs_dynamic(benchmark, scale):
    out = run_once(benchmark, figures.figure3, scale=scale)

    final_mia = {"static": [], "dynamic": []}
    max_test = {"static": [], "dynamic": []}
    print()
    for dataset, settings in out["datasets"].items():
        for setting, series in settings.items():
            print_series(
                f"fig3 {dataset:<14} {setting:<8} test_acc", series["test_accuracy"]
            )
            print_series(
                f"fig3 {dataset:<14} {setting:<8} mia_acc ", series["mia_accuracy"]
            )
            final_mia[setting].append(series["mia_accuracy"][-1])
            max_test[setting].append(series["test_accuracy"].max())

    mean_mia = {s: float(np.mean(v)) for s, v in final_mia.items()}
    mean_test = {s: float(np.mean(v)) for s, v in max_test.items()}
    print(f"mean final MIA: {mean_mia}")
    print(f"mean max test accuracy: {mean_test}")

    # Shape: dynamic lowers MIA vulnerability on the sparse graph
    # without sacrificing utility.
    assert mean_mia["dynamic"] <= mean_mia["static"] + 0.01
    assert mean_test["dynamic"] >= mean_test["static"] - 0.03
