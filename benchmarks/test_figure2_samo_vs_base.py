"""Figure 2 (RQ1) — SAMO vs Base Gossip trade-off, 5-regular static.

Paper shape: given a target test accuracy, SAMO attains lower MIA
vulnerability than Base Gossip in most settings; SAMO also reaches
higher maximum test accuracy (35.4-88.4% vs 29.9-82.6% at paper
scale).
"""

import numpy as np

from repro.experiments import figures

from benchmarks.conftest import print_series, run_once


def test_figure2_samo_vs_base_gossip(benchmark, scale):
    out = run_once(benchmark, figures.figure2, scale=scale)

    final_mia = {"base_gossip": [], "samo": []}
    max_test = {"base_gossip": [], "samo": []}
    print()
    for dataset, protocols in out["datasets"].items():
        for protocol, series in protocols.items():
            print_series(
                f"fig2 {dataset:<14} {protocol:<12} test_acc", series["test_accuracy"]
            )
            print_series(
                f"fig2 {dataset:<14} {protocol:<12} mia_acc ", series["mia_accuracy"]
            )
            final_mia[protocol].append(series["mia_accuracy"][-1])
            max_test[protocol].append(series["test_accuracy"].max())

    mean_final_mia = {p: float(np.mean(v)) for p, v in final_mia.items()}
    mean_max_test = {p: float(np.mean(v)) for p, v in max_test.items()}
    print(f"mean final MIA: {mean_final_mia}")
    print(f"mean max test accuracy: {mean_max_test}")

    # Shape: averaged over datasets, SAMO is no more vulnerable than
    # Base Gossip (small tolerance for tiny-scale noise) while matching
    # its utility.
    assert mean_final_mia["samo"] <= mean_final_mia["base_gossip"] + 0.02
    assert mean_max_test["samo"] >= mean_max_test["base_gossip"] - 0.03
    # Both attacks beat random guessing once training has overfit.
    assert mean_final_mia["samo"] > 0.5
    assert mean_final_mia["base_gossip"] > 0.5
