"""Figure 1 — protocol behavior trace (GL vs SAMO).

Reconstructs the exact scenario of Figure 1: node x with incoming
neighbors y1..y3 and outgoing neighbors z1..z3, and checks the event
sequences the figure illustrates:

* Base GL: every reception triggers an immediate merge + local update
  (steps 1-4); a wake-up sends to exactly ONE neighbor (step 5).
* SAMO: receptions are buffered (steps 1-3); the wake-up performs one
  merge + one update (step 4) and sends to ALL neighbors (step 5).
"""

import numpy as np

from repro.data import make_node_splits, make_synthetic_tabular_dataset
from repro.gossip import (
    BaseGossipProtocol,
    GossipNode,
    LocalTrainer,
    SAMOProtocol,
    TrainerConfig,
)
from repro.nn import build_mlp, get_state

from benchmarks.conftest import run_once


def build_node():
    model = build_mlp(16, 4, hidden=(8,), rng=np.random.default_rng(0))
    trainer = LocalTrainer(
        model,
        TrainerConfig(learning_rate=0.05, momentum=0.0, local_epochs=1, batch_size=8),
    )
    train, _ = make_synthetic_tabular_dataset(
        "t", 120, 20, num_features=16, num_classes=4, seed=0
    )
    split = make_node_splits(train, 3, train_per_node=16, test_per_node=8, seed=0)[0]
    init = get_state(model)
    node = GossipNode(
        node_id=0,
        state={k: v.copy() for k, v in init.items()},
        split=split,
        rng=np.random.default_rng(7),
    )
    return node, trainer, init


def trace_protocol(protocol_cls):
    node, trainer, init = build_node()
    protocol = protocol_cls(trainer)
    events = []

    def send(sender, receiver, payload):
        events.append(("send", receiver))

    # Steps 1-3: three models arrive from y1, y2, y3.
    for shift in (1.0, 2.0, 3.0):
        incoming = {k: v + shift for k, v in init.items()}
        updates_before = node.updates_performed
        protocol.on_receive(node, incoming)
        if node.updates_performed > updates_before:
            events.append(("merge_and_update", None))
        else:
            events.append(("buffered", None))
    # Steps 4-5: node x wakes up with z1, z2, z3 in its view.
    updates_before = node.updates_performed
    protocol.on_wake(node, view={1, 2, 3}, send=send)
    if node.updates_performed > updates_before:
        events.insert(
            len(events) - sum(1 for e in events if e[0] == "send"),
            ("merge_and_update", None),
        )
    return events, node


def test_figure1_protocol_traces(benchmark):
    def run():
        return trace_protocol(BaseGossipProtocol), trace_protocol(SAMOProtocol)

    (gl_events, gl_node), (samo_events, samo_node) = run_once(benchmark, run)

    print("\nBase GL event trace :", [e[0] for e in gl_events])
    print("SAMO event trace    :", [e[0] for e in samo_events])

    # Base GL: merge+update on EVERY reception, single send on wake.
    gl_kinds = [e[0] for e in gl_events]
    assert gl_kinds.count("merge_and_update") == 3
    assert gl_kinds.count("send") == 1
    assert gl_node.updates_performed == 3

    # SAMO: buffer on every reception, ONE merge+update, send to all 3.
    samo_kinds = [e[0] for e in samo_events]
    assert samo_kinds.count("buffered") == 3
    assert samo_kinds.count("merge_and_update") == 1
    assert samo_kinds.count("send") == 3
    assert samo_node.updates_performed == 1
