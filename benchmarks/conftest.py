"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper. The
experiment scale defaults to ``tiny`` (seconds per benchmark) and can
be raised with the ``REPRO_BENCH_SCALE`` environment variable
(``tiny`` / ``small`` / ``paper``).

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark prints the regenerated rows/series (compare them with
EXPERIMENTS.md) and asserts the qualitative *shape* of the paper's
result — who wins, in which direction — not absolute numbers.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

# BENCH_engine.json layout version. Version 2: top-level
# ``schema_version`` stamp, sections merged incrementally by whichever
# benchmark modules ran (engine throughput, campaign throughput).
BENCH_SCHEMA_VERSION = 2

_BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def update_bench_json(sections: dict, path: Path | None = None) -> None:
    """Merge measured sections into BENCH_engine.json.

    Merging (instead of overwriting) lets each benchmark module own its
    sections and still produce one machine-readable file whether `make
    bench`, `make bench-smoke` or a single module ran.

    The write is atomic (tmp + rename, like the checkpoint files), so a
    crash mid-write never truncates the file, and a corrupt or
    truncated existing file is treated as empty rather than aborting
    the merge.
    """
    target = _BENCH_PATH if path is None else Path(path)
    data: dict = {}
    if target.exists():
        try:
            loaded = json.loads(target.read_text())
        except ValueError:
            loaded = {}
        if isinstance(loaded, dict):
            data = loaded
    data.pop("schema", None)  # pre-versioning key from schema 1
    data.update(sections)
    data["schema_version"] = BENCH_SCHEMA_VERSION
    data["unit"] = "ms"
    data["cpus"] = os.cpu_count()
    tmp = target.with_suffix(target.suffix + ".tmp")
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, target)


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "tiny")
    if scale not in {"tiny", "small", "paper"}:
        raise ValueError(f"bad REPRO_BENCH_SCALE {scale!r}")
    return scale


@pytest.fixture
def scale() -> str:
    return bench_scale()


def print_series(title: str, series, fmt: str = "{:.3f}") -> None:
    """Print a labeled numeric series on one line."""
    values = " ".join(fmt.format(v) for v in series)
    print(f"{title}: {values}")


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Experiments are too slow for statistical repetition; one timed
    round still records wall-clock in the benchmark table.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
