"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper. The
experiment scale defaults to ``tiny`` (seconds per benchmark) and can
be raised with the ``REPRO_BENCH_SCALE`` environment variable
(``tiny`` / ``small`` / ``paper``).

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark prints the regenerated rows/series (compare them with
EXPERIMENTS.md) and asserts the qualitative *shape* of the paper's
result — who wins, in which direction — not absolute numbers.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "tiny")
    if scale not in {"tiny", "small", "paper"}:
        raise ValueError(f"bad REPRO_BENCH_SCALE {scale!r}")
    return scale


@pytest.fixture
def scale() -> str:
    return bench_scale()


def print_series(title: str, series, fmt: str = "{:.3f}") -> None:
    """Print a labeled numeric series on one line."""
    values = " ".join(fmt.format(v) for v in series)
    print(f"{title}: {values}")


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Experiments are too slow for statistical repetition; one timed
    round still records wall-clock in the benchmark table.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
