"""Figure 9 (RQ7) — DP-SGD budgets x topology on Purchase100, SAMO.

Paper shape: applying DP-SGD lowers both utility and MIA efficiency,
more strongly for stricter budgets (smaller epsilon); the dynamic
setting keeps a better utility/vulnerability trade-off at every
budget.
"""

import numpy as np

from repro.experiments import figures

from benchmarks.conftest import run_once


def test_figure9_dp_budgets(benchmark, scale):
    epsilons = (50.0, 10.0, None)
    out = run_once(benchmark, figures.figure9, scale=scale, epsilons=epsilons)

    print(f"\nfig9 dataset={out['dataset']}")
    print(f"{'epsilon':>8} {'setting':<8} {'max_mia':>8} {'max_tpr':>8} "
          f"{'max_test':>9} {'sigma':>7}")
    by_key = {}
    for row in out["rows"]:
        eps_label = "non-dp" if row["epsilon"] is None else f"{row['epsilon']:g}"
        print(
            f"{eps_label:>8} {row['setting']:<8} {row['max_mia_accuracy']:>8.3f} "
            f"{row['max_mia_tpr_at_1_fpr']:>8.3f} {row['max_test_accuracy']:>9.3f} "
            f"{row['noise_multiplier']:>7.3f}"
        )
        by_key[(row["epsilon"], row["setting"])] = row

    # Shape 1: DP reduces MIA vulnerability vs non-DP (mean over
    # settings), and stricter budgets add more noise.
    def mean_metric(eps, metric):
        return float(
            np.mean([by_key[(eps, s)][metric] for s in ("static", "dynamic")])
        )

    assert mean_metric(10.0, "max_mia_accuracy") <= (
        mean_metric(None, "max_mia_accuracy") + 0.02
    )
    assert (
        by_key[(10.0, "static")]["noise_multiplier"]
        > by_key[(50.0, "static")]["noise_multiplier"]
    )

    # Shape 2: DP costs utility relative to non-DP.
    assert mean_metric(10.0, "max_test_accuracy") <= (
        mean_metric(None, "max_test_accuracy") + 0.02
    )

    # Shape 3: at a fixed budget, dynamic attains a trade-off at least
    # as good as static (not strictly worse on both axes).
    for eps in epsilons:
        dyn = by_key[(eps, "dynamic")]
        stat = by_key[(eps, "static")]
        strictly_worse = (
            dyn["max_test_accuracy"] < stat["max_test_accuracy"] - 0.05
            and dyn["max_mia_accuracy"] > stat["max_mia_accuracy"] + 0.05
        )
        assert not strictly_worse
