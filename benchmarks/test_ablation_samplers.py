"""Ablation — peer-sampling service (DESIGN.md design choice).

The paper adopts PeerSwap for its randomness guarantees; related work
(Epidemic Learning, Section 6.4) instead redraws a fresh random graph.
This ablation runs identical training over three sampling services
(static / peerswap / fresh) and checks that BOTH dynamic services
improve over static on the sparse graph — i.e. the paper's conclusion
is about dynamics per se, not an artifact of PeerSwap.
"""

import numpy as np

from repro.experiments import run_many, scaled_config
from repro.graph import mixing_time

from benchmarks.conftest import run_once


def test_ablation_peer_samplers(benchmark, scale):
    samplers = ("static", "peerswap", "fresh")

    def run():
        configs = [
            scaled_config(
                "purchase100",
                scale,
                name=name,
                protocol="samo",
                view_size=2,
                sampler=name,
                seed=0,
            )
            for name in samplers
        ]
        return run_many(configs)

    results = run_once(benchmark, run)

    print(f"\n{'sampler':<10} {'final_mia':>10} {'max_test':>9}")
    final_mia = {}
    for name, result in results.items():
        final_mia[name] = result.rounds[-1].mia_accuracy
        print(f"{name:<10} {final_mia[name]:>10.3f} "
              f"{result.max_test_accuracy:>9.3f}")

    # Shape: every dynamic sampler is at most as vulnerable as static.
    assert final_mia["peerswap"] <= final_mia["static"] + 0.01
    assert final_mia["fresh"] <= final_mia["static"] + 0.01

    # Spectral cross-check: the permutation-dynamic mixing time is far
    # below the static one at the same degree (Section 4's mechanism).
    t_static = mixing_time(60, 2, epsilon=0.1, dynamic=False, runs=2,
                           max_iterations=800)
    t_dynamic = mixing_time(60, 2, epsilon=0.1, dynamic=True, runs=2,
                            max_iterations=800)
    print(f"mixing time to lambda2<0.1 (n=60, k=2): "
          f"static={t_static:.0f} dynamic={t_dynamic:.0f}")
    assert t_dynamic < t_static
