"""Table 1 — dataset characteristics.

Prints the paper's Table 1 and the executable reduced-scale
counterpart (instantiated datasets and models with actual shapes and
parameter counts).
"""

from repro.experiments.tables import render_rows, table1, verify_table1_shapes

from benchmarks.conftest import run_once


def test_table1_dataset_characteristics(benchmark):
    rows = run_once(benchmark, verify_table1_shapes, image_size=8, num_features=64)

    print("\nTable 1 (paper-scale declared characteristics):")
    print(render_rows(table1()))
    print("\nTable 1 (instantiated at reduced scale):")
    print(render_rows(rows))

    by_name = {r["dataset"]: r for r in rows}
    # Class counts and channel layout must match the paper exactly.
    assert by_name["cifar10"]["classes"] == 10
    assert by_name["cifar100"]["classes"] == 100
    assert by_name["fashion_mnist"]["classes"] == 10
    assert by_name["purchase100"]["classes"] == 100
    assert by_name["cifar10"]["input_shape"][0] == 3
    assert by_name["fashion_mnist"]["input_shape"][0] == 1
    assert len(by_name["purchase100"]["input_shape"]) == 1  # tabular
    # Model pairing per Table 1.
    assert by_name["cifar100"]["model"] == "resnet8"
    assert by_name["purchase100"]["model"] == "mlp"
