"""Figure 6 (RQ5) — non-i.i.d. data (Dirichlet beta) on Purchase100.

Paper shape: stronger heterogeneity (smaller beta) lowers test
accuracy and raises MIA vulnerability across all rounds; dynamic
settings help but never fully bridge the non-iid gap.
"""

import numpy as np

from repro.experiments import figures

from benchmarks.conftest import print_series, run_once


def test_figure6_noniid_dirichlet(benchmark, scale):
    out = run_once(benchmark, figures.figure6, scale=scale)

    print()
    for label, series in out["series"].items():
        print_series(f"fig6 {label:<18} test_acc", series["test_accuracy"])
        print_series(f"fig6 {label:<18} mia_acc ", series["mia_accuracy"])

    def mean_over_settings(metric, label):
        return float(
            np.mean(
                [
                    out["series"][f"{label}-{s}"][metric][-1]
                    for s in ("static", "dynamic")
                ]
            )
        )

    iid_mia = mean_over_settings("mia_accuracy", "iid")
    skew_mia = mean_over_settings("mia_accuracy", "beta=0.1")
    iid_test = mean_over_settings("test_accuracy", "iid")
    skew_test = mean_over_settings("test_accuracy", "beta=0.1")
    print(f"final MIA: iid={iid_mia:.3f} beta=0.1={skew_mia:.3f}")
    print(f"final test acc: iid={iid_test:.3f} beta=0.1={skew_test:.3f}")

    # Shape 1: non-iid increases MIA vulnerability.
    assert skew_mia > iid_mia - 0.01
    # Shape 2: non-iid hurts utility.
    assert skew_test <= iid_test + 0.02
    # Shape 3: dynamic helps (or at worst ties) under heterogeneity.
    stat = out["series"]["beta=0.1-static"]["mia_accuracy"][-1]
    dyn = out["series"]["beta=0.1-dynamic"]["mia_accuracy"][-1]
    assert dyn <= stat + 0.05
