"""Ablation — MPE threshold attack vs neural shadow-model attack.

Section 2.5 motivates the MPE attack as an informative yet cheap
alternative to "expensive approaches that train ML models to predict
membership such as neural shadow models". This benchmark runs both
against the same gossip-trained victims and compares strength and
cost, validating the paper's methodological choice.
"""

import time

import numpy as np

from repro.core import StudyConfig, VulnerabilityStudy
from repro.metrics.evaluation import predict_proba
from repro.nn.models import build_mlp
from repro.nn.serialize import set_state
from repro.privacy import run_attack
from repro.privacy.shadow import ShadowAttackConfig, ShadowModelAttack

from benchmarks.conftest import run_once


def test_ablation_shadow_vs_threshold(benchmark, scale):
    def run():
        study = VulnerabilityStudy(
            StudyConfig(
                name="shadow-ablation",
                dataset="purchase100",
                n_train=1_200,
                n_test=200,
                num_features=64,
                n_nodes=6,
                view_size=2,
                protocol="samo",
                rounds=4,
                train_per_node=32,
                test_per_node=16,
                mlp_hidden=(64, 32),
                local_epochs=3,
                batch_size=16,
                seed=0,
            )
        )
        study.run()

        # Attacker-side data: base-split samples not used by any node.
        used = np.unique(
            np.concatenate(
                [s.train.indices for s in study.splits]
                + [s.test.indices for s in study.splits]
            )
        )
        free = np.setdiff1d(np.arange(len(study.base_train)), used)
        template = build_mlp(
            64, 100, hidden=(64, 32), rng=np.random.default_rng(5)
        )
        t0 = time.perf_counter()
        shadow = ShadowModelAttack(
            template,
            study.base_train.x[free],
            study.base_train.y[free],
            ShadowAttackConfig(n_shadows=2, shadow_epochs=10, attack_epochs=40),
        ).fit()
        shadow_fit_seconds = time.perf_counter() - t0

        rng = np.random.default_rng(1)
        mpe_acc, shadow_acc = [], []
        t_mpe = t_shadow = 0.0
        for node in study.simulator.nodes:
            set_state(study.model, node.state)
            member_probs = predict_proba(study.model, node.train_x)
            nonmember_probs = predict_proba(study.model, node.test_x)
            t0 = time.perf_counter()
            mpe_acc.append(
                run_attack(
                    "mpe", member_probs, node.train_y,
                    nonmember_probs, node.test_y, rng=rng,
                ).accuracy
            )
            t_mpe += time.perf_counter() - t0
            t0 = time.perf_counter()
            shadow_acc.append(
                shadow.attack(
                    member_probs, node.train_y,
                    nonmember_probs, node.test_y, rng=rng,
                ).accuracy
            )
            t_shadow += time.perf_counter() - t0
        study.close()
        return {
            "mpe_acc": float(np.mean(mpe_acc)),
            "shadow_acc": float(np.mean(shadow_acc)),
            "shadow_fit_seconds": shadow_fit_seconds,
            "mpe_seconds": t_mpe,
            "shadow_seconds": t_shadow,
        }

    stats = run_once(benchmark, run)
    print(
        f"\nMPE threshold attack: accuracy={stats['mpe_acc']:.3f} "
        f"(eval {stats['mpe_seconds'] * 1e3:.1f} ms, no training)"
    )
    print(
        f"shadow-model attack : accuracy={stats['shadow_acc']:.3f} "
        f"(training {stats['shadow_fit_seconds']:.2f} s + eval "
        f"{stats['shadow_seconds'] * 1e3:.1f} ms)"
    )

    # Shape 1: both attacks beat random guessing on overfit victims.
    assert stats["mpe_acc"] > 0.55
    assert stats["shadow_acc"] > 0.55
    # Shape 2: the optimal-threshold MPE attack is at least as strong
    # as the learned attack (it is the worst-case threshold bound).
    assert stats["mpe_acc"] >= stats["shadow_acc"] - 0.05
    # Shape 3: MPE is orders of magnitude cheaper (no attacker training).
    assert stats["shadow_fit_seconds"] > 10 * stats["mpe_seconds"]
