"""Throughput of the flat-buffer execution engine.

Acceptance properties of the engine PRs:

* aggregating/averaging over the flat ``(n_nodes, dim)`` arena is at
  least 5x faster than the dict-``State`` hot path on a 64-node round;
* a fixed-seed run is bit-identical between the serial and the
  process-pool executor (final accuracies and message counts);
* batched evaluation over arena rows is at least 3x faster than the
  per-node reload loop at 64 nodes, with tolerance-level identical
  metrics;
* batched training (lockstep multi-model SGD over arena rows) is at
  least 2x faster than the per-row serial executor at 64 nodes, with
  bit-identical float64 results;
* sharded training (arena rows partitioned across shard workers over a
  zero-copy shared-memory arena) is at least 1.5x faster than the
  single-process batched executor at 128 nodes with >= 2 shards, with
  bit-identical float64 results (skipped on single-CPU machines, where
  process parallelism cannot win by construction);
* vectorized DP-SGD (tiled per-sample gradients + blocked clip/noise)
  is at least 2x faster than the per-row serial executor at 64 nodes,
  with bit-identical float64 results — DP no longer falls back;
* sharded observation (shard workers scoring their own arena rows) is
  at least 1.5x faster than the parent row-batch path at 64 nodes
  with >= 2 shards, agreeing at 1e-9 (timing skipped on single-CPU
  machines; the parity check and the parent baseline always run).

Timing assertions compare best-of-N wall clocks of the two paths doing
the *same* work, so the test is robust to absolute machine speed; only
the ratio matters.

The module also emits ``BENCH_engine.json`` at the repo root — the
measured wall clocks per executor at 64/128 nodes — so the engine's
perf trajectory stays machine-readable across PRs (``make bench`` /
``make bench-smoke`` refresh it).
"""

from __future__ import annotations

import os
import time
from functools import partial

import numpy as np
import pytest

from repro.core.study import StudyConfig, run_study
from repro.data import make_node_splits, make_synthetic_tabular_dataset
from repro.gossip.engine import (
    BatchedExecutor,
    SerialExecutor,
    StateArena,
    UpdateTask,
)
from repro.gossip.shard import ShardedExecutor
from repro.gossip.trainer import LocalTrainer, TrainerConfig
from repro.metrics.evaluation import BatchedEvaluator, evaluate_model
from repro.nn import get_state, set_state
from repro.nn.flat import StateLayout
from repro.nn.models import build_model
from repro.nn.serialize import average_states
from repro.privacy.dp import DPSGDConfig
from repro.privacy.mia import mia_reports_batched

from benchmarks.conftest import print_series, run_once, update_bench_json

N_NODES = 64
N_NODES_SHARDED = 128
NEIGHBORS = 4  # models averaged per node: own + 4 received

# Wall clocks recorded by the tests below, merged into BENCH_engine.json
# by the module fixture. Keys: section -> f"n{nodes}" -> measurements.
_BENCH: dict = {}


def _record(section: str, n_nodes: int, **values: float) -> None:
    _BENCH.setdefault(section, {}).setdefault(f"n{n_nodes}", {}).update(values)


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Merge whatever this module measured, even on partial runs."""
    yield
    update_bench_json(_BENCH)


def _best_of(fn, reps: int = 9) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _node_states_and_arena():
    """64 distinct node models of the paper's ResNet-8, both ways."""
    model = build_model("resnet8", width=8, image_size=16, num_classes=10)
    template = get_state(model)
    layout = StateLayout.from_state(template)
    rng = np.random.default_rng(7)
    states = []
    arena = StateArena(layout, N_NODES)
    for i in range(N_NODES):
        state = {k: rng.normal(size=v.shape) for k, v in template.items()}
        states.append(state)
        arena.load_state(i, state)
    return states, arena


class TestAggregationThroughput:
    def test_flat_arena_aggregation_at_least_5x_faster(self, benchmark):
        """One gossip round of aggregation — every node averages its own
        model with the models it received — dict path vs one vectorized
        mix over arena rows."""
        states, arena = _node_states_and_arena()
        groups = [
            [i] + [(i + d) % N_NODES for d in range(1, NEIGHBORS + 1)]
            for i in range(N_NODES)
        ]
        mixing = np.zeros((N_NODES, N_NODES))
        for i, group in enumerate(groups):
            mixing[i, group] = 1.0 / len(group)

        def dict_round():
            return [
                average_states([states[j] for j in group]) for group in groups
            ]

        def flat_round():
            return arena.mix(mixing)

        # Same math: spot-check one node before timing.
        from repro.nn.serialize import state_to_vector

        np.testing.assert_allclose(
            state_to_vector(dict_round()[0]), flat_round()[0], atol=1e-12
        )

        dict_time = _best_of(dict_round)
        flat_time = run_once(benchmark, lambda: _best_of(flat_round))
        speedup = dict_time / flat_time
        _record(
            "aggregation", N_NODES,
            dict_ms=dict_time * 1e3, flat_ms=flat_time * 1e3,
        )
        print_series(
            "aggregation ms (dict, flat)",
            [dict_time * 1e3, flat_time * 1e3],
        )
        print(f"flat-engine aggregation speedup: {speedup:.1f}x")
        assert speedup >= 5.0, (
            f"flat arena aggregation only {speedup:.1f}x faster than the "
            f"dict-State path (required: 5x)"
        )

    def test_flat_pairwise_merges_faster_than_dict(self):
        """The Base Gossip primitive: 64 pairwise merges."""
        states, arena = _node_states_and_arena()
        pairs = [(i, (i + 1) % N_NODES) for i in range(N_NODES)]
        payloads = [arena.row(j).copy() for _, j in pairs]

        def dict_merges():
            return [
                average_states([states[i], states[j]], weights=[0.5, 0.5])
                for i, j in pairs
            ]

        def flat_merges():
            for (i, _), payload in zip(pairs, payloads):
                arena.merge_row(i, payload, 0.5)

        dict_time = _best_of(dict_merges)
        flat_time = _best_of(flat_merges)
        print(f"pairwise merge speedup: {dict_time / flat_time:.1f}x")
        assert dict_time / flat_time >= 2.0


class TestEvaluationThroughput:
    def test_batched_evaluation_at_least_3x_faster(self, benchmark):
        """One observer round at 64 nodes — global accuracy + MPE attack
        per node — per-node workspace reloads vs blocked row-batch ops.

        Correctness is gated in float64 (tight tolerance); the timing
        race runs both paths in float32, the arena dtype the engine is
        optimized for (evaluation math stays in the arena dtype on both
        paths — no float64 promotion)."""
        model = build_model(
            "mlp", in_features=96, num_classes=100, hidden=(64, 32)
        )
        template = get_state(model)
        layout = StateLayout.from_state(template)
        rng = np.random.default_rng(13)
        arena = StateArena(layout, N_NODES)
        arena32 = StateArena(layout, N_NODES, dtype=np.float32)
        states = []
        for i in range(N_NODES):
            state = {
                k: v + 0.05 * rng.normal(size=v.shape)
                for k, v in template.items()
            }
            states.append(state)
            arena.load_state(i, state)
            arena32.load_state(i, state)
        states32 = [arena32.state_view(i) for i in range(N_NODES)]
        x_global = rng.normal(size=(64, 96))
        y_global = rng.integers(0, 100, size=64)
        # Equal-sized member/non-member sets: no balancing draws, so the
        # two paths are deterministic and directly comparable. Sizes
        # mirror the tiny-tier observer workload.
        xs_train = [rng.normal(size=(16, 96)) for _ in range(N_NODES)]
        ys_train = [rng.integers(0, 100, size=16) for _ in range(N_NODES)]
        xs_test = [rng.normal(size=(16, 96)) for _ in range(N_NODES)]
        ys_test = [rng.integers(0, 100, size=16) for _ in range(N_NODES)]

        def per_node_round(node_states):
            out = []
            for i in range(N_NODES):
                set_state(model, node_states[i])
                out.append(
                    evaluate_model(
                        model, i, x_global, y_global,
                        xs_train[i], ys_train[i], xs_test[i], ys_test[i],
                    )
                )
            return out

        evaluator = BatchedEvaluator(model, layout=layout)

        def batched_round(params):
            global_acc = evaluator.accuracy_rows(params, x_global, y_global)
            obs = evaluator.attack_observations(
                params,
                xs_train + xs_test,
                ys_train + ys_test,
                rows=list(range(N_NODES)) * 2,
            )
            train_obs, test_obs = obs[:N_NODES], obs[N_NODES:]
            reports = mia_reports_batched(
                np.stack([m[0] for m in train_obs]),
                np.stack([n[0] for n in test_obs]),
            )
            return global_acc, train_obs, test_obs, reports

        # Same metrics: check every node (in float64) before timing.
        per_node = per_node_round(states)
        global_acc, train_obs, test_obs, reports = batched_round(arena.data)
        for i, ev in enumerate(per_node):
            np.testing.assert_allclose(
                global_acc[i], ev.global_test_accuracy, atol=1e-12
            )
            np.testing.assert_allclose(
                train_obs[i][1], ev.local_train_accuracy, atol=1e-12
            )
            np.testing.assert_allclose(
                test_obs[i][1], ev.local_test_accuracy, atol=1e-12
            )
            np.testing.assert_allclose(
                reports[i].accuracy, ev.mia_accuracy, atol=1e-9
            )
            np.testing.assert_allclose(reports[i].auc, ev.mia_auc, atol=1e-9)

        per_node_time = _best_of(lambda: per_node_round(states32), reps=5)
        batched_time = run_once(
            benchmark, lambda: _best_of(lambda: batched_round(arena32.data), reps=5)
        )
        speedup = per_node_time / batched_time
        _record(
            "evaluation", N_NODES,
            per_node_ms=per_node_time * 1e3, batched_ms=batched_time * 1e3,
        )
        print_series(
            "evaluation ms (per-node, batched)",
            [per_node_time * 1e3, batched_time * 1e3],
        )
        print(f"batched evaluation speedup: {speedup:.1f}x")
        assert speedup >= 3.0, (
            f"batched evaluation only {speedup:.1f}x faster than the "
            f"per-node loop (required: 3x)"
        )


class TestTrainingThroughput:
    def test_batched_training_at_least_2x_faster(self, benchmark):
        """One tick's worth of local updates at 64 nodes — every node
        runs the paper's 3 local epochs of mini-batch SGD (momentum +
        weight decay on) — per-row workspace reloads vs one lockstep
        (B, dim) block.

        Correctness is gated in float64, where the blocked path is
        bit-identical to the serial executor; the timing race runs both
        paths in float32, the arena dtype the engine is optimized for
        (the serial trainer stays in float32 too — no promotion)."""
        n_per_node = 32
        model = build_model(
            "mlp", in_features=96, num_classes=100, hidden=(48, 24)
        )
        template = get_state(model)
        layout = StateLayout.from_state(template)
        train, _ = make_synthetic_tabular_dataset(
            "bench", 2600, 100, num_features=96, num_classes=100, seed=3
        )
        splits = make_node_splits(
            train, N_NODES, train_per_node=n_per_node, test_per_node=4, seed=3
        )
        config = TrainerConfig(
            learning_rate=0.05,
            momentum=0.9,
            weight_decay=5e-4,
            local_epochs=3,
            batch_size=8,
        )
        trainer = LocalTrainer(model, config)
        rng = np.random.default_rng(17)
        serial = SerialExecutor(trainer, layout, splits)
        batched = BatchedExecutor(trainer, layout, splits)

        def make_tasks(arena, seed):
            return [
                UpdateTask(
                    i,
                    arena.row(i).copy(),
                    np.random.default_rng(seed + i),
                    session=0,
                )
                for i in range(N_NODES)
            ]

        def load_arena(dtype):
            arena = StateArena(layout, N_NODES, dtype=dtype)
            for i in range(N_NODES):
                arena.load_state(
                    i,
                    {
                        k: v + 0.05 * rng.normal(size=v.shape)
                        for k, v in template.items()
                    },
                )
            return arena

        # Same math: the blocked path must reproduce the per-row path
        # bit for bit in float64 (same seeds, same sessions).
        arena64 = load_arena(np.float64)
        for (serial_vec, _), (batched_vec, _) in zip(
            serial.train_batch(make_tasks(arena64, 0)),
            batched.train_batch(make_tasks(arena64, 0)),
        ):
            np.testing.assert_array_equal(serial_vec, batched_vec)

        arena32 = load_arena(np.float32)
        serial_time = _best_of(
            lambda: serial.train_batch(make_tasks(arena32, 1)), reps=5
        )
        batched_time = run_once(
            benchmark,
            lambda: _best_of(
                lambda: batched.train_batch(make_tasks(arena32, 1)), reps=5
            ),
        )
        speedup = serial_time / batched_time
        _record(
            "training", N_NODES,
            serial_ms=serial_time * 1e3, batched_ms=batched_time * 1e3,
        )
        print_series(
            "training ms (per-row, batched)",
            [serial_time * 1e3, batched_time * 1e3],
        )
        print(f"batched training speedup: {speedup:.1f}x")
        assert speedup >= 2.0, (
            f"batched training only {speedup:.1f}x faster than the "
            f"per-row serial executor (required: 2x)"
        )
        serial.close()
        batched.close()


class TestDPTrainingThroughput:
    """The PR 6 gate: DP-SGD no longer falls back per row, so a DP
    tick must enjoy the same blocked speedup as a plain one."""

    def test_vectorized_dp_at_least_2x_faster(self, benchmark):
        """One tick's DP local updates at 64 nodes — per-sample
        clipping + Gaussian noise — per-row workspace reloads vs the
        tiled per-sample-gradient block.

        Correctness is gated in float64 (bit-identical, noise draws
        included); the timing race runs in float32."""
        n_per_node = 32
        model = build_model(
            "mlp", in_features=96, num_classes=100, hidden=(48, 24)
        )
        template = get_state(model)
        layout = StateLayout.from_state(template)
        train, _ = make_synthetic_tabular_dataset(
            "bench", 2600, 100, num_features=96, num_classes=100, seed=3
        )
        splits = make_node_splits(
            train, N_NODES, train_per_node=n_per_node, test_per_node=4, seed=3
        )
        config = TrainerConfig(
            learning_rate=0.05,
            momentum=0.9,
            weight_decay=5e-4,
            local_epochs=3,
            batch_size=8,
            dp=DPSGDConfig(clip_norm=1.0, noise_multiplier=0.7),
        )
        trainer = LocalTrainer(model, config)
        rng = np.random.default_rng(17)
        serial = SerialExecutor(trainer, layout, splits)
        batched = BatchedExecutor(trainer, layout, splits)

        def make_tasks(arena, seed):
            return [
                UpdateTask(
                    i,
                    arena.row(i).copy(),
                    np.random.default_rng(seed + i),
                    session=0,
                )
                for i in range(N_NODES)
            ]

        def load_arena(dtype):
            arena = StateArena(layout, N_NODES, dtype=dtype)
            for i in range(N_NODES):
                arena.load_state(
                    i,
                    {
                        k: v + 0.05 * rng.normal(size=v.shape)
                        for k, v in template.items()
                    },
                )
            return arena

        arena64 = load_arena(np.float64)
        for (serial_vec, _), (batched_vec, _) in zip(
            serial.train_batch(make_tasks(arena64, 0)),
            batched.train_batch(make_tasks(arena64, 0)),
        ):
            np.testing.assert_array_equal(serial_vec, batched_vec)
        assert batched.fallback_counts == {}, batched.fallback_counts

        arena32 = load_arena(np.float32)
        serial_time = _best_of(
            lambda: serial.train_batch(make_tasks(arena32, 1)), reps=5
        )
        batched_time = run_once(
            benchmark,
            lambda: _best_of(
                lambda: batched.train_batch(make_tasks(arena32, 1)), reps=5
            ),
        )
        speedup = serial_time / batched_time
        _record(
            "dp_training", N_NODES,
            serial_ms=serial_time * 1e3, batched_ms=batched_time * 1e3,
        )
        print_series(
            "dp training ms (per-row, batched)",
            [serial_time * 1e3, batched_time * 1e3],
        )
        print(f"vectorized DP-SGD speedup: {speedup:.1f}x")
        assert speedup >= 2.0, (
            f"vectorized DP-SGD only {speedup:.1f}x faster than the "
            f"per-row serial executor (required: 2x)"
        )
        serial.close()
        batched.close()


class TestShardedThroughput:
    """The PR 4 scale-out gate: partitioning arena rows across shard
    workers over the zero-copy shared arena must beat the
    single-process batched executor once real parallelism exists."""

    def _setup(self, dtype):
        n_per_node = 32
        builder = partial(
            build_model, "mlp", in_features=96, num_classes=100,
            hidden=(48, 24),
        )
        model = builder()
        template = get_state(model)
        layout = StateLayout.from_state(template)
        train, _ = make_synthetic_tabular_dataset(
            "bench", 4800, 100, num_features=96, num_classes=100, seed=3
        )
        splits = make_node_splits(
            train, N_NODES_SHARDED, train_per_node=n_per_node,
            test_per_node=4, seed=3,
        )
        config = TrainerConfig(
            learning_rate=0.05,
            momentum=0.9,
            weight_decay=5e-4,
            local_epochs=3,
            batch_size=8,
        )
        arena = StateArena(layout, N_NODES_SHARDED, dtype=dtype, shared=True)
        rng = np.random.default_rng(17)
        for i in range(N_NODES_SHARDED):
            arena.load_state(
                i,
                {
                    k: v + 0.05 * rng.normal(size=v.shape)
                    for k, v in template.items()
                },
            )
        return builder, model, layout, splits, config, arena

    @staticmethod
    def _make_tasks(arena, seed):
        return [
            UpdateTask(
                i,
                arena.row(i),
                np.random.default_rng(seed + i),
                session=0,
            )
            for i in range(N_NODES_SHARDED)
        ]

    def test_sharded_training_bit_identical_to_batched_float64(self):
        """Same tasks, same float64 results — rows travel through the
        shared segment instead of task pickles, so this also exercises
        the attach/write-back path end to end."""
        builder, model, layout, splits, config, arena = self._setup(
            np.float64
        )
        trainer = LocalTrainer(model, config)
        batched = BatchedExecutor(trainer, layout, splits)
        sharded = ShardedExecutor(
            builder, config, layout, splits, arena, n_shards=2
        )
        try:
            # Snapshot the start rows: the batched reference must train
            # from the same vectors the shard workers will read.
            start = arena.data.copy()
            batched_results = batched.train_batch(
                [
                    UpdateTask(
                        i, start[i].copy(), np.random.default_rng(i),
                        session=0,
                    )
                    for i in range(N_NODES_SHARDED)
                ]
            )
            sharded_results = sharded.train_batch(self._make_tasks(arena, 0))
            for (b_vec, b_rng), (s_vec, s_rng) in zip(
                batched_results, sharded_results
            ):
                np.testing.assert_array_equal(b_vec, s_vec)
                assert b_rng.random() == s_rng.random()
        finally:
            batched.close()
            sharded.close()
            arena.release()

    def test_sharded_training_at_least_1_5x_faster_than_batched(
        self, benchmark
    ):
        """One tick's local updates at 128 nodes: one-process blocked
        training vs >= 2 shard workers running the same blocked kernels
        over their row partitions. Timing runs in float32 (the arena
        dtype the engine is optimized for); requires real cores."""
        cpus = os.cpu_count() or 1
        if cpus < 2:
            pytest.skip(
                "sharded-vs-batched timing needs >= 2 CPUs; "
                f"this machine has {cpus}"
            )
        n_shards = min(4, cpus)
        builder, model, layout, splits, config, arena = self._setup(
            np.float32
        )
        trainer = LocalTrainer(model, config)
        batched = BatchedExecutor(trainer, layout, splits)
        sharded = ShardedExecutor(
            builder, config, layout, splits, arena, n_shards=n_shards
        )
        try:
            # Warm up the shard workers (model build, first attach).
            sharded.train_batch(self._make_tasks(arena, 0))
            batched_time = _best_of(
                lambda: batched.train_batch(self._make_tasks(arena, 1)),
                reps=5,
            )
            sharded_time = run_once(
                benchmark,
                lambda: _best_of(
                    lambda: sharded.train_batch(self._make_tasks(arena, 1)),
                    reps=5,
                ),
            )
        finally:
            batched.close()
            sharded.close()
            arena.release()
        speedup = batched_time / sharded_time
        _record(
            "training", N_NODES_SHARDED,
            batched_ms=batched_time * 1e3,
            sharded_ms=sharded_time * 1e3,
            n_shards=n_shards,
        )
        print_series(
            "training ms (batched, sharded)",
            [batched_time * 1e3, sharded_time * 1e3],
        )
        print(f"sharded training speedup: {speedup:.1f}x ({n_shards} shards)")
        assert speedup >= 1.5, (
            f"sharded training only {speedup:.1f}x faster than the "
            f"batched executor at {N_NODES_SHARDED} nodes with "
            f"{n_shards} shards (required: 1.5x)"
        )


class TestObserverThroughput:
    """The PR 6 observer gate: under executor="sharded" the round
    observation (global accuracy + member/non-member MPE scores per
    node) runs on the shard workers against their own arena rows,
    instead of the parent re-reading all of them."""

    def _setup(self, dtype):
        builder = partial(
            build_model, "mlp", in_features=96, num_classes=100,
            hidden=(48, 24),
        )
        model = builder()
        template = get_state(model)
        layout = StateLayout.from_state(template)
        train, _ = make_synthetic_tabular_dataset(
            "bench", 2600, 100, num_features=96, num_classes=100, seed=3
        )
        splits = make_node_splits(
            train, N_NODES, train_per_node=32, test_per_node=4, seed=3
        )
        config = TrainerConfig(learning_rate=0.05, batch_size=8)
        arena = StateArena(layout, N_NODES, dtype=dtype, shared=True)
        rng = np.random.default_rng(29)
        for i in range(N_NODES):
            arena.load_state(
                i,
                {
                    k: v + 0.05 * rng.normal(size=v.shape)
                    for k, v in template.items()
                },
            )
        x_global = rng.normal(size=(64, 96)).astype(dtype)
        y_global = rng.integers(0, 100, size=64)
        attack = {
            i: (
                rng.normal(size=(16, 96)).astype(dtype),
                rng.integers(0, 100, size=16),
                rng.normal(size=(16, 96)).astype(dtype),
                rng.integers(0, 100, size=16),
            )
            for i in range(N_NODES)
        }
        return builder, model, layout, splits, config, arena, (
            x_global, y_global, attack,
        )

    @staticmethod
    def _parent_round(evaluator, params, x_global, y_global, attack):
        rows = list(range(N_NODES))
        global_acc = evaluator.accuracy_rows(params, x_global, y_global)
        obs = evaluator.attack_observations(
            params,
            [attack[i][0] for i in rows] + [attack[i][2] for i in rows],
            [attack[i][1] for i in rows] + [attack[i][3] for i in rows],
            rows=rows * 2,
        )
        return global_acc, obs[:N_NODES], obs[N_NODES:]

    def test_sharded_observation_matches_parent(self, benchmark):
        """Scores coming back over the wire must agree with the
        parent's row-batch path at 1e-9 on the float64 arena. Also
        records the parent-path wall clock as the observer baseline
        (the sharded race needs >= 2 CPUs, see below)."""
        builder, model, layout, splits, config, arena, workload = (
            self._setup(np.float64)
        )
        x_global, y_global, attack = workload
        sharded = ShardedExecutor(
            builder, config, layout, splits, arena, n_shards=2
        )
        evaluator = BatchedEvaluator(model, layout=layout)
        try:
            sharded.observe_init(x_global, y_global, attack)
            raw = sharded.observe(
                {i: (None, None) for i in range(N_NODES)}
            )
            global_acc, train_obs, test_obs = self._parent_round(
                evaluator, arena.data, x_global, y_global, attack
            )
            for i in range(N_NODES):
                member, nonmember, train_acc, test_acc, g_acc = raw[i]
                np.testing.assert_allclose(
                    member, train_obs[i][0], atol=1e-9
                )
                np.testing.assert_allclose(
                    nonmember, test_obs[i][0], atol=1e-9
                )
                np.testing.assert_allclose(g_acc, global_acc[i], atol=1e-12)
                np.testing.assert_allclose(
                    train_acc, train_obs[i][1], atol=1e-12
                )
                np.testing.assert_allclose(
                    test_acc, test_obs[i][1], atol=1e-12
                )
            parent_time = run_once(
                benchmark,
                lambda: _best_of(
                    lambda: self._parent_round(
                        evaluator, arena.data, x_global, y_global, attack
                    ),
                    reps=5,
                ),
            )
        finally:
            sharded.close()
            arena.release()
        _record("observer", N_NODES, parent_ms=parent_time * 1e3)
        print_series("observer parent ms", [parent_time * 1e3])

    def test_sharded_observation_at_least_1_5x_faster(self, benchmark):
        """Parent row-batch observation vs >= 2 shard workers scoring
        their own rows in parallel, at 64 nodes on the float32 arena;
        requires real cores."""
        cpus = os.cpu_count() or 1
        if cpus < 2:
            pytest.skip(
                "sharded-vs-parent observation timing needs >= 2 CPUs; "
                f"this machine has {cpus}"
            )
        n_shards = min(4, cpus)
        builder, model, layout, splits, config, arena, workload = (
            self._setup(np.float32)
        )
        x_global, y_global, attack = workload
        sharded = ShardedExecutor(
            builder, config, layout, splits, arena, n_shards=n_shards
        )
        evaluator = BatchedEvaluator(model, layout=layout)
        plans = {i: (None, None) for i in range(N_NODES)}
        try:
            sharded.observe_init(x_global, y_global, attack)
            sharded.observe(plans)  # warm up workers
            parent_time = _best_of(
                lambda: self._parent_round(
                    evaluator, arena.data, x_global, y_global, attack
                ),
                reps=5,
            )
            sharded_time = run_once(
                benchmark,
                lambda: _best_of(lambda: sharded.observe(plans), reps=5),
            )
        finally:
            sharded.close()
            arena.release()
        speedup = parent_time / sharded_time
        _record(
            "observer", N_NODES,
            parent_ms=parent_time * 1e3,
            sharded_ms=sharded_time * 1e3,
            n_shards=n_shards,
        )
        print_series(
            "observer ms (parent, sharded)",
            [parent_time * 1e3, sharded_time * 1e3],
        )
        print(f"sharded observation speedup: {speedup:.1f}x ({n_shards} shards)")
        assert speedup >= 1.5, (
            f"sharded observation only {speedup:.1f}x faster than the "
            f"parent row-batch path at {N_NODES} nodes with "
            f"{n_shards} shards (required: 1.5x)"
        )


class TestExecutorEquivalence:
    def test_serial_and_process_runs_bit_identical(self, benchmark):
        """Fixed seed, same config: final accuracies and message counts
        must match bit for bit across executor backends."""
        base = dict(
            dataset="purchase100",
            n_train=600,
            n_test=150,
            num_features=96,
            mlp_hidden=(48, 24),
            n_nodes=8,
            view_size=2,
            rounds=3,
            train_per_node=24,
            test_per_node=12,
            max_global_test=96,
            max_attack_samples=48,
            local_epochs=1,
            batch_size=8,
            engine="flat",
            seed=11,
        )
        serial = run_study(StudyConfig(name="engine-serial", **base))
        parallel = run_once(
            benchmark,
            run_study,
            StudyConfig(
                name="engine-process", executor="process", n_workers=2, **base
            ),
        )
        s_last, p_last = serial.rounds[-1], parallel.rounds[-1]
        print_series(
            "serial acc per round",
            [r.global_test_accuracy for r in serial.rounds],
        )
        print_series(
            "process acc per round",
            [r.global_test_accuracy for r in parallel.rounds],
        )
        assert s_last.global_test_accuracy == p_last.global_test_accuracy
        assert s_last.mia_accuracy == p_last.mia_accuracy
        for s_round, p_round in zip(serial.rounds, parallel.rounds):
            assert s_round.global_test_accuracy == p_round.global_test_accuracy
        assert (
            serial.metadata["messages_dropped"]
            == parallel.metadata["messages_dropped"]
        )
