"""Ablation — early-overfitting mitigations (Section 5 recommendation).

The paper recommends "strategies to prevent early overfitting, such
as regularization [or] dynamic learning rates ... to limit the
persistent impact of initial vulnerabilities". This ablation runs the
same study with:

* no mitigation (Table 2 defaults),
* label smoothing 0.1 (regularization),
* lr decay 0.8 per local session (dynamic learning rate),
* both combined,

and checks the mitigations reduce peak MIA vulnerability without
collapsing utility.
"""

import numpy as np

from repro.experiments import run_many, scaled_config

from benchmarks.conftest import run_once


def test_ablation_early_overfitting_mitigations(benchmark, scale):
    grid = {
        "none": dict(),
        "smoothing": dict(label_smoothing=0.1),
        "lr-decay": dict(lr_decay=0.8),
        "both": dict(label_smoothing=0.1, lr_decay=0.8),
    }

    def run():
        configs = [
            scaled_config(
                "purchase100",
                scale,
                name=name,
                protocol="samo",
                view_size=2,
                local_epochs=3,
                seed=0,
                **knobs,
            )
            for name, knobs in grid.items()
        ]
        return run_many(configs)

    results = run_once(benchmark, run)

    print(f"\n{'mitigation':<11} {'max_mia':>8} {'final_mia':>10} "
          f"{'peak_gen':>9} {'max_test':>9}")
    stats = {}
    for name, result in results.items():
        gen = (
            result.series("local_train_accuracy")
            - result.series("local_test_accuracy")
        )
        stats[name] = {
            "max_mia": result.max_mia_accuracy,
            "final_mia": result.rounds[-1].mia_accuracy,
            "peak_gen": float(gen.max()),
            "max_test": result.max_test_accuracy,
        }
        s = stats[name]
        print(f"{name:<11} {s['max_mia']:>8.3f} {s['final_mia']:>10.3f} "
              f"{s['peak_gen']:>9.3f} {s['max_test']:>9.3f}")

    # Shape 1: the combined mitigation lowers peak vulnerability.
    assert stats["both"]["max_mia"] <= stats["none"]["max_mia"] + 0.01
    # Shape 2: at least one individual mitigation also helps.
    assert (
        min(stats["smoothing"]["max_mia"], stats["lr-decay"]["max_mia"])
        <= stats["none"]["max_mia"]
    )
    # Shape 3: mitigations reduce peak generalization error (their
    # mechanism of action).
    assert stats["both"]["peak_gen"] <= stats["none"]["peak_gen"] + 0.02
    # Shape 4: utility is not destroyed.
    assert stats["both"]["max_test"] >= stats["none"]["max_test"] * 0.5