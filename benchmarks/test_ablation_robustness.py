"""Ablation — robustness to message loss and node churn.

Gossip protocols are chosen for their resilience (Section 1 motivates
decentralization with scalability/resilience); this ablation injects
message loss and node churn and checks the system degrades gracefully:
training still converges and the privacy metrics remain well-defined.
It also measures how failures interact with mixing — lost messages
mean less mixing, so vulnerability should not DECREASE when links are
lossy.
"""

import numpy as np

from repro.experiments import run_many, scaled_config

from benchmarks.conftest import run_once


def test_ablation_failure_injection(benchmark, scale):
    grid = {
        "clean": dict(drop_prob=0.0, failure_prob=0.0),
        "lossy-30": dict(drop_prob=0.3, failure_prob=0.0),
        "churn-30": dict(drop_prob=0.0, failure_prob=0.3),
        "both-30": dict(drop_prob=0.3, failure_prob=0.3),
        "latent-20": dict(delay_ticks=20, delay_jitter=10),
    }

    def run():
        configs = [
            scaled_config(
                "purchase100",
                scale,
                name=name,
                protocol="samo",
                view_size=2,
                seed=0,
                **knobs,
            )
            for name, knobs in grid.items()
        ]
        return run_many(configs)

    results = run_once(benchmark, run)

    print(f"\n{'scenario':<10} {'final_mia':>10} {'max_test':>9} "
          f"{'msgs':>6} {'dropped':>8} {'skipped':>8}")
    for name, result in results.items():
        print(
            f"{name:<10} {result.rounds[-1].mia_accuracy:>10.3f} "
            f"{result.max_test_accuracy:>9.3f} {result.total_messages:>6} "
            f"{result.metadata['messages_dropped']:>8} "
            f"{result.metadata['wakes_skipped']:>8}"
        )

    clean = results["clean"]
    # Shape 1: failures actually happened where injected.
    assert results["lossy-30"].metadata["messages_dropped"] > 0
    assert results["churn-30"].metadata["wakes_skipped"] > 0
    assert clean.metadata["messages_dropped"] == 0

    # Shape 2: graceful degradation — every scenario still learns
    # (test accuracy above chance = 1/100) and the attack metrics stay
    # in range.
    for result in results.values():
        assert result.max_test_accuracy > 0.01
        assert 0.0 <= result.max_mia_accuracy <= 1.0

    # Shape 3: fewer delivered messages means less mixing; loss should
    # not reduce vulnerability below the clean run (tolerance for tiny
    # scale noise).
    assert (
        results["lossy-30"].rounds[-1].mia_accuracy
        >= clean.rounds[-1].mia_accuracy - 0.05
    )
