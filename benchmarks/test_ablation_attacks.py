"""Ablation — attack estimator choice (Section 2.5's justification).

The paper picks the Modified Prediction Entropy (MPE) attack as an
informative worst-case threshold attack. This ablation attacks the
SAME trained node models with four estimators (MPE / entropy /
confidence / loss) and verifies the paper's implicit ordering: the
label-aware estimators (MPE, confidence, loss) dominate plain
prediction entropy, and MPE is competitive with the best.
"""

import numpy as np

from repro.core import StudyConfig, VulnerabilityStudy
from repro.metrics.evaluation import predict_proba
from repro.nn.serialize import set_state
from repro.privacy import ATTACKS, run_attack

from benchmarks.conftest import run_once


def attack_all_nodes(study):
    """Attack every node's final model with every estimator."""
    accuracies = {name: [] for name in ATTACKS}
    rng = np.random.default_rng(0)
    for node in study.simulator.nodes:
        set_state(study.model, node.state)
        member_probs = predict_proba(study.model, node.train_x)
        nonmember_probs = predict_proba(study.model, node.test_x)
        for name in ATTACKS:
            report = run_attack(
                name,
                member_probs,
                node.train_y,
                nonmember_probs,
                node.test_y,
                rng=rng,
            )
            accuracies[name].append(report.accuracy)
    return {name: float(np.mean(vals)) for name, vals in accuracies.items()}


def test_ablation_attack_estimators(benchmark, scale):
    def run():
        study = VulnerabilityStudy(
            StudyConfig(
                name="attack-ablation",
                dataset="purchase100",
                n_train=800,
                n_test=200,
                num_features=128,
                n_nodes=8,
                view_size=2,
                protocol="samo",
                rounds=5,
                train_per_node=32,
                test_per_node=16,
                mlp_hidden=(64, 32),
                local_epochs=3,
                batch_size=16,
                seed=0,
            )
        )
        study.run()
        return attack_all_nodes(study)

    mean_acc = run_once(benchmark, run)

    print(f"\n{'attack':<12} {'mean accuracy':>14}")
    for name, acc in sorted(mean_acc.items(), key=lambda kv: -kv[1]):
        print(f"{name:<12} {acc:>14.3f}")

    # Shape 1: every estimator beats random guessing on overfit models.
    assert all(acc > 0.5 for acc in mean_acc.values())
    # Shape 2: MPE is within noise of the best estimator.
    best = max(mean_acc.values())
    assert mean_acc["mpe"] >= best - 0.03
    # Shape 3: the label-aware attacks dominate label-free entropy.
    assert mean_acc["mpe"] >= mean_acc["entropy"] - 0.01
