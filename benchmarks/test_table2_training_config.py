"""Table 2 — training configuration.

Verifies the configuration registry reproduces every Table 2 row and
that the paper-scale models hit the quoted parameter counts.
"""

from repro.experiments.configs import paper_table2_config, table2_rows
from repro.experiments.tables import render_rows
from repro.nn import build_cnn, build_mlp, build_resnet8, num_parameters

from benchmarks.conftest import run_once


def test_table2_training_configuration(benchmark):
    rows = run_once(benchmark, table2_rows)
    print("\nTable 2 (training configuration):")
    print(render_rows(rows))

    by_name = {r["dataset"]: r for r in rows}
    assert by_name["cifar10"] == {
        "dataset": "cifar10", "model": "CNN", "parameters": "124k",
        "learning_rate": 0.01, "momentum": 0.0, "weight_decay": 5e-4,
        "local_epochs": 3, "rounds": 250,
    }
    assert by_name["cifar100"]["learning_rate"] == 0.001
    assert by_name["purchase100"]["local_epochs"] == 10

    # Parameter counts at paper scale (order-of-magnitude match).
    cnn = num_parameters(build_cnn(3, 32, 10, width=16))
    resnet = num_parameters(build_resnet8(3, 100, width=64))
    mlp = num_parameters(build_mlp(600, 100, hidden=(1024, 512, 256)))
    print(f"\nInstantiated parameter counts: CNN={cnn:,} "
          f"ResNet-8={resnet:,} MLP={mlp:,}")
    assert 0.5 * 124_000 < cnn < 2 * 124_000
    assert 0.5 * 1_200_000 < resnet < 2 * 1_200_000
    assert 0.5 * 1_300_000 < mlp < 2 * 1_300_000

    # Paper-scale configs wire the rows into StudyConfigs.
    cfg = paper_table2_config("cifar100")
    assert cfg.n_nodes == 60
    assert cfg.rounds == 500
