"""Figure 7 (RQ6) — MIA vulnerability vs generalization error.

Paper shape: MIA vulnerability broadly grows with generalization
error, but the relationship is dataset-specific and NOT one-to-one:
the same generalization error can exhibit different MIA regimes.
"""

import numpy as np

from repro.experiments import figures

from benchmarks.conftest import run_once


def test_figure7_generalization_vs_mia(benchmark, scale):
    out = run_once(benchmark, figures.figure7, scale=scale)

    print()
    gens, mias = [], []
    for dataset, settings in out["datasets"].items():
        for setting, entry in settings.items():
            ge = entry["generalization_error"]
            mia = entry["mia_accuracy"]
            print(
                f"fig7 {dataset:<14} {setting:<8} "
                f"gen_err [{ge.min():.3f}, {ge.max():.3f}] "
                f"mia [{mia.min():.3f}, {mia.max():.3f}]"
            )
            gens.append(ge)
            mias.append(mia)

    all_gen = np.concatenate(gens)
    all_mia = np.concatenate(mias)
    # Shape: positive association between generalization error and MIA
    # across the pooled scatter (Spearman-like sign check via
    # correlation of ranks).
    if all_gen.std() > 1e-9 and all_mia.std() > 1e-9:
        rank_corr = np.corrcoef(
            np.argsort(np.argsort(all_gen)), np.argsort(np.argsort(all_mia))
        )[0, 1]
        print(f"pooled rank correlation: {rank_corr:.3f}")
        assert rank_corr > 0.0

    # All MIA values beat-or-match random guessing (balanced attack set).
    assert np.all(all_mia >= 0.5 - 1e-9)
