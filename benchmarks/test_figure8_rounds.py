"""Figure 8 (RQ6) — MIA accuracy and generalization error over rounds.

Paper shape: generalization error peaks early then declines, while the
MIA vulnerability acquired early persists — leakage introduced in an
earlier round is not mitigated by later generalization improvements.
"""

import numpy as np

from repro.experiments import figures

from benchmarks.conftest import print_series, run_once


def test_figure8_rounds_series(benchmark, scale):
    out = run_once(benchmark, figures.figure8, scale=scale)

    print()
    for setting, entry in out["settings"].items():
        print_series(f"fig8 {setting:<8} mia_acc ", entry["mia_accuracy"])
        print_series(f"fig8 {setting:<8} gen_err ", entry["generalization_error"])

    for setting, entry in out["settings"].items():
        mia = entry["mia_accuracy"]
        # Shape 1: vulnerability emerges and persists — the final MIA
        # stays above the starting level.
        assert mia[-1] >= mia[0] - 0.05
        # Shape 2: MIA beats random guessing by the end.
        assert mia[-1] > 0.5

    # Shape 3: once generalization error has peaked, MIA does not fall
    # proportionally (persistence of early leakage): the relative drop
    # in MIA from its peak is smaller than the relative drop in
    # gen-error from its peak.
    entry = out["settings"]["static"]
    ge, mia = entry["generalization_error"], entry["mia_accuracy"]
    if len(ge) >= 3 and ge.max() > 0:
        ge_drop = (ge.max() - ge[-1]) / ge.max()
        mia_drop = (mia.max() - mia[-1]) / mia.max()
        print(f"relative drops from peak: gen={ge_drop:.3f} mia={mia_drop:.3f}")
        assert mia_drop <= ge_drop + 0.05
