"""Figure 4 (RQ3) — canary-based worst-case auditing over rounds.

Paper shape: the targeted canary attack is extremely strong (TPR up to
100%); dynamic topologies reduce the maximum canary TPR in the
majority of datasets.
"""

import numpy as np

from repro.experiments import figures

from benchmarks.conftest import print_series, run_once


def test_figure4_canary_auditing(benchmark, scale):
    out = run_once(benchmark, figures.figure4, scale=scale, n_runs=2)

    print()
    peak = {"static": [], "dynamic": []}
    mean_tail = {"static": [], "dynamic": []}
    for dataset, settings in out["datasets"].items():
        for setting, entry in settings.items():
            print_series(
                f"fig4 {dataset:<14} {setting:<8} max_canary_tpr",
                entry["max_canary_tpr"],
            )
            peak[setting].append(entry["max_canary_tpr"].max())
            mean_tail[setting].append(entry["max_canary_tpr"][-1])

    print(f"peak canary TPR: static={np.mean(peak['static']):.3f} "
          f"dynamic={np.mean(peak['dynamic']):.3f}")

    # Shape 1: canaries are memorized — the attack finds strong signal.
    assert np.mean(peak["static"]) > 0.3
    # Shape 2: dynamic does not make worst-case leakage WORSE on
    # average (the paper observes a marginal-to-large reduction).
    assert np.mean(mean_tail["dynamic"]) <= np.mean(mean_tail["static"]) + 0.10
    # TPRs are proper rates.
    for entries in out["datasets"].values():
        for entry in entries.values():
            assert np.all(entry["max_canary_tpr"] <= 1.0)
            assert np.all(entry["max_canary_tpr"] >= 0.0)
