"""Throughput of the Campaign API's cross-study parallelism.

Acceptance property of the session/campaign PR: a 4-study
:class:`~repro.experiments.Campaign` run with a process pool on a
machine with >= 2 CPUs beats the serial ``run_many`` loop wall-clock
(the loop runs the same studies one after another in-process). Results
must be bit-identical between the two paths — parallelism across
studies, like parallelism within one, must never change numbers.

Skipped on single-CPU machines, where process parallelism cannot win
by construction (matching the sharded-executor gate). Wall clocks land
in ``BENCH_engine.json`` under the ``campaign`` section.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.study import StudyConfig
from repro.experiments import Campaign, run_many

from benchmarks.conftest import print_series, run_once, update_bench_json

N_STUDIES = 4

_BENCH: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    yield
    update_bench_json(_BENCH)


def _campaign_configs() -> list[StudyConfig]:
    """4 independent serial studies, each a couple of seconds of work."""
    base = StudyConfig(
        name="campaign-bench",
        dataset="purchase100",
        n_train=900,
        n_test=200,
        num_features=96,
        mlp_hidden=(64, 32),
        n_nodes=12,
        view_size=2,
        protocol="samo",
        rounds=3,
        train_per_node=32,
        test_per_node=16,
        max_global_test=128,
        max_attack_samples=64,
        local_epochs=2,
        batch_size=16,
    )
    return Campaign.from_grid(base, seed=list(range(N_STUDIES))).configs


class TestCampaignThroughput:
    def test_parallel_campaign_bit_identical_to_serial(self):
        """jobs=2 must reproduce the serial loop's numbers exactly:
        every study is seed-deterministic, so where it runs cannot
        matter."""
        configs = [
            c.with_overrides(rounds=2, n_nodes=8) for c in _campaign_configs()
        ]
        serial = run_many(configs)  # jobs=1, in-process
        parallel = Campaign(configs).run(jobs=2)
        assert list(serial) == list(parallel)
        for name in serial:
            np.testing.assert_array_equal(
                serial[name].series("mia_accuracy"),
                parallel[name].series("mia_accuracy"),
            )
            np.testing.assert_array_equal(
                serial[name].series("global_test_accuracy"),
                parallel[name].series("global_test_accuracy"),
            )
            assert serial[name].metadata == parallel[name].metadata

    def test_parallel_campaign_beats_serial_loop(self, benchmark):
        """The scale-out gate: N independent studies across >= 2
        processes finish faster than the same N in a serial loop."""
        cpus = os.cpu_count() or 1
        if cpus < 2:
            pytest.skip(
                f"campaign-vs-serial timing needs >= 2 CPUs; "
                f"this machine has {cpus}"
            )
        jobs = min(N_STUDIES, cpus)
        configs = _campaign_configs()

        start = time.perf_counter()
        serial = run_many(configs)
        serial_time = time.perf_counter() - start

        campaign = Campaign(configs)
        start = time.perf_counter()
        parallel = run_once(benchmark, campaign.run, jobs=jobs)
        parallel_time = time.perf_counter() - start

        for name in serial:
            np.testing.assert_array_equal(
                serial[name].series("mia_accuracy"),
                parallel[name].series("mia_accuracy"),
            )
        speedup = serial_time / parallel_time
        _BENCH["campaign"] = {
            f"n{N_STUDIES}": {
                "serial_ms": serial_time * 1e3,
                "parallel_ms": parallel_time * 1e3,
                "jobs": jobs,
            }
        }
        print_series(
            "campaign ms (serial loop, parallel)",
            [serial_time * 1e3, parallel_time * 1e3],
        )
        print(f"campaign speedup: {speedup:.1f}x ({jobs} jobs)")
        assert speedup > 1.0, (
            f"a {N_STUDIES}-study campaign with {jobs} jobs was not "
            f"faster than the serial run_many loop "
            f"({speedup:.2f}x; required: > 1x)"
        )
