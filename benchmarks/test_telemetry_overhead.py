"""Telemetry overhead gate: observing the round loop must be ~free.

The subsystem's perf contract: with `Telemetry(enabled=True)` the
engine takes per-phase timestamps, updates histograms and records
spans on every round — and the whole apparatus may cost at most 5% of
round wall-clock at 64 nodes versus the null-telemetry fast path
(which is a handful of `is None` checks).

Both studies run the identical deterministic round sequence (same
config, same seed), so round k does the same work on both simulators.
The race times the two paths *paired*: round k on one, round k on the
other, alternating which goes first. The gate is the minimum paired
difference — scheduler noise is one-sided (spikes, never speedups),
so the cleanest pair is the honest estimate of what the telemetry
apparatus itself costs, robust to machine-level drift that would bias
a sequential best-of-N. A small absolute slack term covers timer
jitter on machines where a round is only a few milliseconds.

The measured wall clocks merge into ``BENCH_engine.json`` under the
``telemetry_overhead`` section.
"""

from __future__ import annotations

import time

import pytest

from repro.core.study import Study, StudyConfig
from repro.telemetry import Telemetry

from benchmarks.conftest import print_series, run_once, update_bench_json

N_NODES = 64

_BENCH: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Merge whatever this module measured, even on partial runs."""
    yield
    update_bench_json(_BENCH)


def _config() -> StudyConfig:
    return StudyConfig(
        name="telemetry-overhead",
        dataset="purchase100",
        n_train=2600,
        n_test=400,
        num_features=96,
        mlp_hidden=(48, 24),
        n_nodes=N_NODES,
        view_size=4,
        rounds=64,  # headroom: the race consumes one round per rep
        ticks_per_round=120,
        train_per_node=32,
        test_per_node=8,
        max_global_test=96,
        max_attack_samples=48,
        local_epochs=1,
        batch_size=8,
        executor="batched",
        engine="flat",
        seed=23,
    )


def _timed_round(simulator) -> float:
    start = time.perf_counter()
    simulator.run_round()
    return time.perf_counter() - start


def _paired_rounds(plain_sim, instrumented_sim, reps: int):
    """Time round k on both simulators, alternating who goes first."""
    plain_times: list[float] = []
    instrumented_times: list[float] = []
    for rep in range(reps):
        if rep % 2 == 0:
            plain_times.append(_timed_round(plain_sim))
            instrumented_times.append(_timed_round(instrumented_sim))
        else:
            instrumented_times.append(_timed_round(instrumented_sim))
            plain_times.append(_timed_round(plain_sim))
    return plain_times, instrumented_times


class TestTelemetryOverhead:
    def test_instrumented_round_within_5_percent(self, benchmark):
        """Min paired round-k difference, telemetry on vs off."""
        reps = 9
        with Study(_config()) as plain, Study(
            _config(), telemetry=Telemetry(enabled=True)
        ) as instrumented:
            # Warm one round on each (lazy caches, first-touch pages).
            plain.simulator.run_round()
            instrumented.simulator.run_round()
            plain_times, instrumented_times = run_once(
                benchmark,
                lambda: _paired_rounds(
                    plain.simulator, instrumented.simulator, reps
                ),
            )
        plain_best = min(plain_times)
        instrumented_best = min(instrumented_times)
        overhead = min(
            i - p for p, i in zip(plain_times, instrumented_times)
        )
        overhead_pct = overhead / plain_best * 100.0
        _BENCH.setdefault("telemetry_overhead", {}).setdefault(
            f"n{N_NODES}", {}
        ).update(
            plain_ms=plain_best * 1e3,
            instrumented_ms=instrumented_best * 1e3,
            overhead_pct=overhead_pct,
        )
        print_series(
            "round ms (plain, instrumented)",
            [plain_best * 1e3, instrumented_best * 1e3],
        )
        print(f"telemetry overhead: {overhead_pct:+.2f}%")
        # 5% relative + 1ms absolute slack for timer jitter on
        # machines where a round is only a few milliseconds.
        assert overhead <= plain_best * 0.05 + 1e-3, (
            f"telemetry costs {overhead * 1e3:.2f}ms on a "
            f"{plain_best * 1e3:.2f}ms round ({overhead_pct:+.1f}%) — "
            f"must be <= 5% of round wall-clock"
        )
