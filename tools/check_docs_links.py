#!/usr/bin/env python
"""Fail on broken relative links in the documentation tree.

Scans README.md and docs/*.md (plus the other top-level .md files) for
markdown links `[text](target)` and verifies that every relative target
exists on disk. External links (http/https/mailto) and pure anchors
are skipped; an anchor suffix on a relative link is stripped before the
existence check. Exit status 1 lists every broken link.

Usage: python tools/check_docs_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Markdown inline links, tolerating one level of parentheses in text.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def doc_files(root: Path) -> list[Path]:
    files = sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        files += sorted(docs.glob("*.md"))
    return files


def broken_links(path: Path) -> list[str]:
    broken = []
    for target in LINK_RE.findall(path.read_text(encoding="utf-8")):
        if target.startswith(SKIP_PREFIXES):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    return broken


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(".")
    failures = 0
    checked = 0
    for path in doc_files(root):
        checked += 1
        for target in broken_links(path):
            print(f"{path}: broken link -> {target}")
            failures += 1
    if not checked:
        print("no markdown files found", file=sys.stderr)
        return 1
    print(f"checked {checked} files: {failures} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
