#!/usr/bin/env python
"""End-to-end smoke test of the study service over real sockets.

Boots the HTTP front end on an ephemeral port, submits a tiny study,
streams its round records over SSE, resubmits the same config and
verifies the response is a byte-identical cache hit that triggered no
additional simulator build, then shuts everything down and checks that
no worker processes were leaked.

Exit status 0 on success; any assertion failure is fatal.  Used by
`make serve-smoke` and CI.
"""

from __future__ import annotations

import http.client
import json
import multiprocessing
import sys
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import StudyService, make_server  # noqa: E402
from repro.service.sse import parse_sse_stream  # noqa: E402

SMOKE_PAYLOAD = {
    "dataset": "purchase100",
    "n_train": 600,
    "n_test": 150,
    "num_features": 64,
    "n_nodes": 6,
    "view_size": 2,
    "rounds": 2,
    "train_per_node": 24,
    "test_per_node": 12,
    "mlp_hidden": [32, 16],
    "local_epochs": 1,
    "batch_size": 12,
    "max_attack_samples": 32,
    "max_global_test": 64,
    "seed": 0,
    "name": "serve-smoke",
}


def request(port: int, method: str, path: str, body: bytes | None = None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def main() -> int:
    service = StudyService(job_workers=1)
    server = make_server(service, "127.0.0.1", 0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    print(f"serve-smoke: listening on 127.0.0.1:{port}")
    try:
        status, _, body = request(port, "GET", "/healthz")
        assert status == 200, f"healthz -> {status}"

        payload = json.dumps(SMOKE_PAYLOAD).encode("utf-8")
        status, headers, miss_body = request(port, "POST", "/studies", payload)
        assert status == 200, f"submit -> {status}: {miss_body!r}"
        assert headers["X-Cache"] == "miss", headers
        job_id = json.loads(miss_body)["id"]

        # Stream the run live over SSE: every round frame is a full
        # RoundRecord, and the stream closes with an `end` event.
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        conn.request("GET", f"/studies/{job_id}/stream")
        resp = conn.getresponse()
        assert resp.status == 200, f"stream -> {resp.status}"
        events = list(parse_sse_stream(iter(resp.readline, b"")))
        conn.close()
        rounds = [e for e in events if e.event == "round"]
        assert len(rounds) == SMOKE_PAYLOAD["rounds"], events
        for event in rounds:
            record = json.loads(event.data)
            assert 0.0 <= record["mia_accuracy"] <= 1.0, record
        assert events[-1].event == "end", events
        print(f"serve-smoke: streamed {len(rounds)} round frames")

        # Identical resubmission: byte-identical cache hit, zero builds.
        status, headers, hit_body = request(port, "POST", "/studies", payload)
        assert status == 200 and headers["X-Cache"] == "hit", headers
        assert hit_body == miss_body, "cache hit not byte-identical"
        assert service.manager.builds_performed == 1, (
            f"expected 1 build, saw {service.manager.builds_performed}"
        )
        print("serve-smoke: cache hit byte-identical, builds_performed=1")

        status, _, metrics = request(port, "GET", "/metrics")
        assert status == 200 and b"repro_requests_total" in metrics
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=30)
        service.close()
    assert multiprocessing.active_children() == [], "leaked worker processes"
    print("serve-smoke: clean shutdown, no leaked workers")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
