#!/usr/bin/env python
"""End-to-end smoke test of the study service over real sockets.

Boots the HTTP front end on an ephemeral port, submits a tiny study,
streams its round records over SSE, resubmits the same config and
verifies the response is a byte-identical cache hit that triggered no
additional simulator build, then shuts everything down and checks that
no worker processes were leaked.

A second leg exercises the durability contract with a *real* process
death: `repro serve --state-dir` runs as a subprocess, a study is
killed (SIGKILL) mid-run once at least two rounds are on disk, a fresh
subprocess restarts on the same state dir, and the job must come back
cancelled+resumable, replay its pre-crash frames over SSE, and resume
to a result bit-identical to an uninterrupted in-process run.

Exit status 0 on success; any assertion failure is fatal.  Used by
`make serve-smoke` and CI.
"""

from __future__ import annotations

import http.client
import json
import multiprocessing
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.study import StudyConfig, run_study  # noqa: E402
from repro.service import StudyService, make_server  # noqa: E402
from repro.service.sse import parse_sse_stream  # noqa: E402

SMOKE_PAYLOAD = {
    "dataset": "purchase100",
    "n_train": 600,
    "n_test": 150,
    "num_features": 64,
    "n_nodes": 6,
    "view_size": 2,
    "rounds": 2,
    "train_per_node": 24,
    "test_per_node": 12,
    "mlp_hidden": [32, 16],
    "local_epochs": 1,
    "batch_size": 12,
    "max_attack_samples": 32,
    "max_global_test": 64,
    "seed": 0,
    "name": "serve-smoke",
}


def request(
    port: int,
    method: str,
    path: str,
    body: bytes | None = None,
    headers: dict[str, str] | None = None,
):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        sent = {"Content-Type": "application/json"} if body else {}
        if headers:
            sent.update(headers)
        conn.request(method, path, body=body, headers=sent)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def spawn_server(state_dir: Path) -> tuple[subprocess.Popen, int]:
    """Start ``repro serve --state-dir`` as a subprocess; return its
    handle and bound (ephemeral) port, parsed from the startup line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", "serve",
         "--port", "0", "--job-workers", "1",
         "--state-dir", str(state_dir)],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    deadline = time.monotonic() + 60
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        if "listening on" in line:
            port = int(line.rsplit(":", 1)[1])
            return process, port
    process.kill()
    raise AssertionError("server subprocess never announced its port")


def wait_for_state(port: int, job_id: str, predicate, timeout: float = 120.0):
    """Poll the job snapshot until ``predicate(snapshot)`` holds."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _, body = request(port, "GET", f"/studies/{job_id}")
        assert status == 200, f"status poll -> {status}"
        snapshot = json.loads(body)
        if predicate(snapshot):
            return snapshot
        time.sleep(0.1)
    raise AssertionError(f"timed out waiting on job {job_id}")


def kill_restart_leg() -> None:
    """Kill -9 a durable server mid-study, restart, replay, resume."""
    # Rounds run in ~10 ms each; a 120-round horizon keeps the study
    # alive for ~1 s after the poll sees rounds_completed >= 2, so the
    # SIGKILL always lands mid-run.
    payload_dict = dict(SMOKE_PAYLOAD, rounds=120, name="serve-smoke-crash")
    payload = json.dumps(payload_dict).encode("utf-8")
    expected = run_study(StudyConfig.from_dict(payload_dict))
    expected_frames = [r.to_json() for r in expected.rounds]

    with tempfile.TemporaryDirectory(prefix="serve-smoke-state-") as tmp:
        state_dir = Path(tmp) / "state"
        trace_id = "serve-smoke-trace-1"
        process, port = spawn_server(state_dir)
        try:
            status, _, body = request(
                port, "POST", "/studies", payload,
                headers={"X-Request-ID": trace_id},
            )
            assert status == 200, f"submit -> {status}: {body!r}"
            job_id = json.loads(body)["id"]
            # Wait until at least two rounds (and their checkpoints)
            # are journaled, then die the way crashes do.
            wait_for_state(
                port, job_id, lambda s: s["rounds_completed"] >= 2
            )
        finally:
            process.kill()
            process.wait(timeout=30)
        print("serve-smoke: SIGKILLed the server mid-study")

        # The request id rode into the durable journal as the trace id,
        # so post-mortem debugging can correlate journal events with
        # client-side request logs.
        journal_events = [
            json.loads(line)
            for line in (state_dir / "journal.jsonl")
            .read_text(encoding="utf-8")
            .splitlines()
            if line.strip()
        ]
        traced = [
            e for e in journal_events
            if e.get("trace_id") == trace_id and e.get("job") == job_id
        ]
        assert traced, (
            f"no journal event carries trace id {trace_id!r}: "
            f"{journal_events[:3]}"
        )
        print("serve-smoke: journal events carry the request trace id")

        process, port = spawn_server(state_dir)
        try:
            snapshot = wait_for_state(port, job_id, lambda s: True)
            assert snapshot["state"] == "cancelled", snapshot
            assert snapshot["resumable"], snapshot
            replayed = snapshot["rounds_completed"]
            assert replayed >= 2, snapshot

            # A post-restart subscriber replays every pre-crash frame.
            conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
            conn.request("GET", f"/studies/{job_id}/stream")
            resp = conn.getresponse()
            frames = [
                e.data
                for e in parse_sse_stream(iter(resp.readline, b""))
                if e.event == "round"
            ]
            conn.close()
            assert frames == expected_frames[:replayed], (
                "pre-crash replay diverged from the uninterrupted run"
            )
            print(f"serve-smoke: restart replayed {replayed} frames")

            status, _, body = request(
                port, "POST", f"/studies/{job_id}/resume"
            )
            assert status == 202, f"resume -> {status}: {body!r}"
            wait_for_state(port, job_id, lambda s: s["state"] == "done")
            status, _, result = request(
                port, "GET", f"/studies/{job_id}/result"
            )
            assert status == 200, f"result -> {status}"
            assert result.decode("utf-8") == expected.to_json(), (
                "resumed result not bit-identical to uninterrupted run"
            )
            print("serve-smoke: resume after crash is bit-identical")

            # The restarted process built its own telemetry registry;
            # the resumed rounds must show up in its /metrics too.
            status, _, metrics = request(port, "GET", "/metrics")
            assert status == 200, f"metrics -> {status}"
            assert b"repro_engine_phase_ms" in metrics, (
                "restarted server /metrics lacks engine series"
            )
            assert b"repro_study_round_ms" in metrics, (
                "restarted server /metrics lacks study round series"
            )
            print("serve-smoke: restarted server exports engine metrics")
        finally:
            process.kill()
            process.wait(timeout=30)


def main() -> int:
    service = StudyService(job_workers=1)
    server = make_server(service, "127.0.0.1", 0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    print(f"serve-smoke: listening on 127.0.0.1:{port}")
    try:
        status, _, body = request(port, "GET", "/healthz")
        assert status == 200, f"healthz -> {status}"

        payload = json.dumps(SMOKE_PAYLOAD).encode("utf-8")
        status, headers, miss_body = request(port, "POST", "/studies", payload)
        assert status == 200, f"submit -> {status}: {miss_body!r}"
        assert headers["X-Cache"] == "miss", headers
        job_id = json.loads(miss_body)["id"]

        # Stream the run live over SSE: every round frame is a full
        # RoundRecord, and the stream closes with an `end` event.
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        conn.request("GET", f"/studies/{job_id}/stream")
        resp = conn.getresponse()
        assert resp.status == 200, f"stream -> {resp.status}"
        events = list(parse_sse_stream(iter(resp.readline, b"")))
        conn.close()
        rounds = [e for e in events if e.event == "round"]
        assert len(rounds) == SMOKE_PAYLOAD["rounds"], events
        for event in rounds:
            record = json.loads(event.data)
            assert 0.0 <= record["mia_accuracy"] <= 1.0, record
        assert events[-1].event == "end", events
        print(f"serve-smoke: streamed {len(rounds)} round frames")

        # Identical resubmission: byte-identical cache hit, zero builds.
        status, headers, hit_body = request(port, "POST", "/studies", payload)
        assert status == 200 and headers["X-Cache"] == "hit", headers
        assert hit_body == miss_body, "cache hit not byte-identical"
        assert service.manager.builds_performed == 1, (
            f"expected 1 build, saw {service.manager.builds_performed}"
        )
        print("serve-smoke: cache hit byte-identical, builds_performed=1")

        # One scrape carries the HTTP middleware families *and* the
        # engine registry the study just filled in.
        status, _, metrics = request(port, "GET", "/metrics")
        assert status == 200 and b"repro_requests_total" in metrics
        assert b"repro_engine_phase_ms" in metrics, (
            "engine phase histograms missing from /metrics"
        )
        assert b"repro_study_round_ms" in metrics, (
            "study round histogram missing from /metrics"
        )
        print("serve-smoke: /metrics merges HTTP and engine series")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=30)
        service.close()
    assert multiprocessing.active_children() == [], "leaked worker processes"
    print("serve-smoke: clean shutdown, no leaked workers")

    kill_restart_leg()
    print("serve-smoke: kill -> restart -> resume leg passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
