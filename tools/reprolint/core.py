"""Shared infrastructure for the reprolint rule families.

The model is two-pass:

1. a :class:`Project` pass reads every target file once and collects
   cross-module facts (today: the set of classes that define
   ``close()``, including subclasses, for the lifecycle rules);
2. a per-module pass parses each file and runs every rule whose scope
   matches the module's path (:class:`ModuleContext`).

Scopes are derived from repo-relative paths, so the fixture corpus
under ``tests/analysis/fixtures/`` can mirror the real tree and
exercise the scoping logic itself (the driver is pointed at the
fixture directory as its root).

Suppressions are inline comments on the flagged line::

    time.time()  # reprolint: allow[det-wall-clock] -- cache TTLs want wall time

A suppression must name the rule *and* carry a ``-- reason``; one
without a reason is itself a finding (``bad-suppression``), so the
"every suppression is justified" contract is mechanically enforced.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import PurePosixPath

__all__ = [
    "Finding",
    "ModuleContext",
    "Project",
    "Rule",
    "all_rules",
    "analyze_source",
    "parse_suppressions",
    "parent_map",
    "DETERMINISTIC_PACKAGES",
    "LOCK_PACKAGES",
]

# Packages whose fixed-seed results must be bit-identical across
# executors: no wall clock, no ambient randomness, no set-order
# dependence (ROADMAP "Recent", PRs 3-6).
DETERMINISTIC_PACKAGES = (
    "src/repro/gossip",
    "src/repro/nn",
    "src/repro/privacy",
    "src/repro/core",
    "src/repro/data",
    "src/repro/graph",
    "src/repro/metrics",
)

# Packages holding the service/telemetry concurrency layer whose lock
# discipline PR 8's race sweep established.
LOCK_PACKAGES = (
    "src/repro/service",
    "src/repro/telemetry",
)


@dataclass(frozen=True)
class Finding:
    """One ``file:line rule message`` diagnostic."""

    path: str  # repo-relative, forward slashes
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line} {self.rule} {self.message}"

    def baseline_key(self) -> str:
        """Line-number-free identity used by the baseline file, so a
        baselined finding survives unrelated edits above it."""
        return f"{self.path}::{self.rule}::{self.message}"


@dataclass
class ModuleContext:
    """What the rules need to know about one module."""

    path: str  # repo-relative, forward slashes
    tree: ast.Module
    source: str
    parents: dict[ast.AST, ast.AST]
    project: "Project"

    @property
    def in_deterministic_package(self) -> bool:
        return self.path.startswith(DETERMINISTIC_PACKAGES)

    @property
    def in_lock_package(self) -> bool:
        return self.path.startswith(LOCK_PACKAGES)

    @property
    def in_source_tree(self) -> bool:
        return self.path.startswith("src/")

    def ancestors(self, node: ast.AST):
        """Yield ``(ancestor, direct_child_on_the_path)`` pairs, nearest
        first — enough to ask "which branch of that If am I in?"."""
        child = node
        parent = self.parents.get(child)
        while parent is not None:
            yield parent, child
            child = parent
            parent = self.parents.get(child)

    def enclosing_function(self, node: ast.AST):
        for ancestor, _ in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None


class Rule:
    """One named check. Subclasses set ``name``/``summary`` and
    implement :meth:`check`, yielding :class:`Finding`\\ s."""

    name = ""
    summary = ""

    def applies(self, ctx: ModuleContext) -> bool:  # pragma: no cover - trivial
        return True

    def check(self, ctx: ModuleContext):  # pragma: no cover - interface
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(ctx.path, getattr(node, "lineno", 1), self.name, message)


# -- project pass -------------------------------------------------------


class Project:
    """Cross-module facts gathered before any rule runs.

    ``closeable_classes`` maps class name -> defining module for every
    class (in ``src/``) that defines or inherits a ``close`` method;
    the lifecycle rules treat instantiating one of these as taking on
    a release obligation.
    """

    def __init__(self) -> None:
        self.closeable_classes: dict[str, str] = {}
        self._bases: dict[str, list[str]] = {}
        self._defined_in: dict[str, str] = {}

    def scan(self, path: str, tree: ast.Module) -> None:
        if not path.startswith("src/"):
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            self._defined_in.setdefault(node.name, path)
            self._bases[node.name] = [
                base.id if isinstance(base, ast.Name) else getattr(base, "attr", "")
                for base in node.bases
            ]
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "close"
                ):
                    self.closeable_classes[node.name] = path

    def finalize(self) -> None:
        """Propagate closeability to subclasses (by base name, to a
        fixpoint — the repo has no diamond deeper than a few levels)."""
        changed = True
        while changed:
            changed = False
            for name, bases in self._bases.items():
                if name in self.closeable_classes:
                    continue
                if any(base in self.closeable_classes for base in bases):
                    self.closeable_classes[name] = self._defined_in.get(name, "")
                    changed = True


# -- suppressions -------------------------------------------------------

_ALLOW_RE = re.compile(
    r"reprolint:\s*allow\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<reason>\S.*))?"
)


@dataclass
class Suppression:
    line: int
    rules: tuple[str, ...]
    reason: str
    used: bool = False


def parse_suppressions(source: str, path: str):
    """Extract ``# reprolint: allow[...] -- reason`` comments.

    Returns ``(suppressions_by_line, findings)`` where findings are
    ``bad-suppression`` diagnostics for malformed ones (no rule name,
    or no reason).
    """
    by_line: dict[int, list[Suppression]] = {}
    findings: list[Finding] = []
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = []
    for line, text in comments:
        # Only a bracketed allow-directive counts — prose that merely
        # mentions the tool (docs, comments, Makefile help) is ignored.
        if re.search(r"reprolint:\s*allow\[", text) is None:
            continue
        match = _ALLOW_RE.search(text)
        if match is None:
            findings.append(
                Finding(
                    path,
                    line,
                    "bad-suppression",
                    "unrecognized reprolint directive; use "
                    "'# reprolint: allow[rule] -- reason'",
                )
            )
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        reason = (match.group("reason") or "").strip()
        if not rules or not reason:
            findings.append(
                Finding(
                    path,
                    line,
                    "bad-suppression",
                    "suppression must name a rule and a reason: "
                    "'# reprolint: allow[rule] -- reason'",
                )
            )
            continue
        by_line.setdefault(line, []).append(Suppression(line, rules, reason))
    return by_line, findings


# -- per-module analysis ------------------------------------------------


def parent_map(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def all_rules() -> list[Rule]:
    """Every registered rule, instantiated (import-cycle-free)."""
    from tools.reprolint import determinism, lifecycle, locks, purity

    rules: list[Rule] = []
    for module in (determinism, locks, lifecycle, purity):
        rules.extend(cls() for cls in module.RULES)
    return rules


def analyze_source(
    source: str,
    path: str,
    project: Project | None = None,
    rules: list[Rule] | None = None,
) -> list[Finding]:
    """Run every applicable rule over one module's source.

    Suppressed findings are dropped here; malformed suppressions come
    back as ``bad-suppression`` findings. A syntax error yields a
    single ``parse-error`` finding instead of crashing the run.
    """
    path = str(PurePosixPath(path))
    if project is None:
        project = Project()
        try:
            project.scan(path, ast.parse(source))
        except SyntaxError:
            pass
        project.finalize()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(path, exc.lineno or 1, "parse-error", f"syntax error: {exc.msg}")
        ]
    ctx = ModuleContext(
        path=path,
        tree=tree,
        source=source,
        parents=parent_map(tree),
        project=project,
    )
    suppressions, findings = parse_suppressions(source, path)
    for rule in rules if rules is not None else all_rules():
        if not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            for supp in suppressions.get(finding.line, []):
                if finding.rule in supp.rules:
                    supp.used = True
                    break
            else:
                findings.append(finding)
    return sorted(findings, key=lambda f: (f.line, f.rule, f.message))
