"""Resource-lifecycle rules (the ``lifecycle-*`` family).

The project pass collects every class in ``src/`` that defines or
inherits ``close()`` — SharedArena, the executors, GossipSimulator,
Study, JobManager, JobJournal, StudyService. Instantiating one takes
on a release obligation (PR 4's shared-memory segments leak into
``/dev/shm`` if dropped; executors leak worker processes), so
``lifecycle-unmanaged`` flags a bare constructor call unless the
obligation is visibly discharged or handed off:

* ``with X(...)`` (directly or via ``closing(...)``/``ExitStack``);
* the bound name is ``.close()``d in a ``finally`` block, registered
  with ``weakref.finalize``/``addCleanup``/``addfinalizer``, or
  ``yield``ed / ``return``ed (pytest fixtures and factories hand the
  obligation to their caller);
* the value is returned, yielded, passed into another call, or stored
  on an attribute (the receiving object owns it now);
* test modules only: a plain later ``name.close()`` in the same scope
  also counts — tests exercise failure paths on purpose and pytest
  reports the exception either way.

Anything else needs an inline suppression stating why the leak is
impossible.
"""

from __future__ import annotations

import ast

from tools.reprolint.core import ModuleContext, Rule

__all__ = ["RULES"]

_FINALIZER_FUNCS = {"finalize", "addCleanup", "addfinalizer", "register"}


def _call_class_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _bound_name(ctx: ModuleContext, call: ast.Call) -> str | None:
    """The simple name the call result is assigned to, if any."""
    parent = ctx.parents.get(call)
    if isinstance(parent, (ast.Assign, ast.AnnAssign)):
        targets = parent.targets if isinstance(parent, ast.Assign) else [parent.target]
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            return targets[0].id
    return None


def _name_used(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(node)
    )


def _closed_in_finally(scope: ast.AST, name: str) -> bool:
    for node in ast.walk(scope):
        if isinstance(node, ast.Try):
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in ("close", "release", "shutdown")
                        and _name_used(sub.func.value, name)
                    ):
                        return True
    return False


def _registered_finalizer(scope: ast.AST, name: str) -> bool:
    for node in ast.walk(scope):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        fn_name = fn.attr if isinstance(fn, ast.Attribute) else getattr(fn, "id", "")
        if fn_name in _FINALIZER_FUNCS and any(
            _name_used(arg, name) for arg in node.args
        ):
            return True
    return False


def _escapes_scope(scope: ast.AST, name: str) -> bool:
    """yielded / returned / stored on an attribute or container —
    the obligation moved to whoever receives it."""
    for node in ast.walk(scope):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is not None and _name_used(value, name):
                return True
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)) and _name_used(
                    node.value, name
                ):
                    return True
        if isinstance(node, ast.With):
            for item in node.items:
                if _name_used(item.context_expr, name):
                    return True
    return False


def _closed_anywhere(scope: ast.AST, name: str) -> bool:
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("close", "release", "shutdown")
            and _name_used(node.func.value, name)
        ):
            return True
    return False


class UnmanagedResourceRule(Rule):
    name = "lifecycle-unmanaged"
    summary = (
        "close()-owning classes must be constructed under with/"
        "try-finally/finalize (or visibly hand off ownership)"
    )

    def check(self, ctx: ModuleContext):
        closeable = ctx.project.closeable_classes
        if not closeable:
            return
        is_test_module = not ctx.path.startswith("src/")
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            cls = _call_class_name(node)
            if cls not in closeable:
                continue
            if self._discharged(ctx, node, is_test_module):
                continue
            yield self.finding(
                ctx,
                node,
                f"{cls} owns a close(); construct it under `with`, close "
                "it in a `finally`, or register weakref.finalize — a "
                "dropped instance leaks processes or /dev/shm segments",
            )

    def _discharged(
        self, ctx: ModuleContext, call: ast.Call, is_test_module: bool
    ) -> bool:
        parent = ctx.parents.get(call)
        # with X(...) / return X(...) / yield X(...) / f(X(...)) /
        # self.x = X(...) / [X(...)] / {k: X(...)} / X(...).close()
        if isinstance(parent, ast.withitem):
            return True
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom, ast.Lambda)):
            return True
        # A bare constructor statement inside `with pytest.raises(...)`
        # is asserting the constructor fails — nothing to release.
        if isinstance(parent, ast.Expr) and self._under_pytest_raises(ctx, call):
            return True
        if isinstance(parent, (ast.Call, ast.Starred, ast.keyword)):
            return True
        if isinstance(parent, (ast.List, ast.Tuple, ast.Dict, ast.Set)):
            return True
        if isinstance(parent, ast.Attribute):
            return True  # immediately-consumed chain, incl. X(...).close()
        if isinstance(parent, ast.Assign) and any(
            isinstance(t, (ast.Attribute, ast.Subscript)) for t in parent.targets
        ):
            return True
        if isinstance(parent, ast.AnnAssign) and isinstance(
            parent.target, (ast.Attribute, ast.Subscript)
        ):
            return True
        name = _bound_name(ctx, call)
        if name is None:
            return False
        scope = ctx.enclosing_function(call) or ctx.tree
        if _closed_in_finally(scope, name):
            return True
        if _registered_finalizer(scope, name):
            return True
        if _escapes_scope(scope, name):
            return True
        if is_test_module and _closed_anywhere(scope, name):
            return True
        return False

    @staticmethod
    def _under_pytest_raises(ctx: ModuleContext, node: ast.AST) -> bool:
        for ancestor, _ in ctx.ancestors(node):
            if not isinstance(ancestor, ast.With):
                continue
            for item in ancestor.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    fn = expr.func
                    name = fn.attr if isinstance(fn, ast.Attribute) else getattr(fn, "id", "")
                    if name == "raises":
                        return True
        return False


RULES = [UnmanagedResourceRule]
