"""Purity rules (the ``purity-*`` family).

* ``purity-mutable-default`` (repo-wide) — a mutable default argument
  (``def f(x=[])``) is shared across calls; the classic aliasing trap.
* ``purity-config-field`` (``src/``) — fields of config dataclasses
  (``*Config`` / ``ConfigGroup`` subclasses) must be JSON-round-
  trippable: ``config_hash`` canonicalizes ``to_dict()`` output, so a
  field that cannot survive JSON breaks the dedup/cache/journal
  contract silently.
* ``purity-telemetry-field`` (``src/``) — telemetry travels BY
  REFERENCE (PR 9): a ``Telemetry``/``Tracer``/``MetricsRegistry``
  object on a ``*Config`` or ``*Task`` dataclass would ride into
  ``config_hash``, the response cache and the shard wire codec.
  Annotations are the statically visible surface of that contract.
"""

from __future__ import annotations

import ast

from tools.reprolint.core import ModuleContext, Rule

__all__ = ["RULES"]

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "Counter", "deque"}

_JSON_SCALARS = {"int", "float", "str", "bool", "None", "NoneType"}
_JSON_CONTAINERS = {
    "tuple",
    "list",
    "dict",
    "Tuple",
    "List",
    "Dict",
    "Optional",
    "Union",
    "Sequence",
    "Mapping",
    "FrozenSet",
    "frozenset",
}

_TELEMETRY_TYPES = {"Telemetry", "Tracer", "MetricsRegistry", "Span", "NullTelemetry"}


def _annotation_names(node: ast.expr):
    """Leaf names of an annotation (handles strings, subscripts, | unions)."""
    if isinstance(node, ast.Constant):
        if node.value is None:
            yield "None"
        elif isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval")
            except SyntaxError:
                yield node.value
            else:
                yield from _annotation_names(parsed.body)
        return
    if isinstance(node, ast.Name):
        yield node.id
        return
    if isinstance(node, ast.Attribute):
        yield node.attr
        return
    if isinstance(node, ast.Subscript):
        yield from _annotation_names(node.value)
        yield from _annotation_names(node.slice)
        return
    if isinstance(node, ast.Tuple):
        for elt in node.elts:
            yield from _annotation_names(elt)
        return
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        yield from _annotation_names(node.left)
        yield from _annotation_names(node.right)
        return
    if isinstance(node, ast.Constant) and node.value is Ellipsis:
        return


def _json_clean(annotation: ast.expr) -> bool:
    names = [
        name
        for name in _annotation_names(annotation)
        if name not in ("...", "Ellipsis")
    ]
    if not names:
        return True
    # A nested `*Config` group serializes through its own to_dict(),
    # so it is JSON-clean by recursion (its fields get their own check).
    return all(
        name in _JSON_SCALARS
        or name in _JSON_CONTAINERS
        or name.endswith("Config")
        for name in names
    )


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else getattr(target, "id", "")
        if name == "dataclass":
            return True
    return False


def _config_classes(ctx: ModuleContext):
    """Dataclasses participating in the config contract: ``*Config``
    names or ``ConfigGroup`` descendants."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not _is_dataclass(node):
            continue
        base_names = {
            base.id if isinstance(base, ast.Name) else getattr(base, "attr", "")
            for base in node.bases
        }
        if node.name.endswith("Config") or "ConfigGroup" in base_names:
            yield node


class MutableDefaultRule(Rule):
    name = "purity-mutable-default"
    summary = "no mutable default arguments"

    def check(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                    kind = type(default).__name__.lower()
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument ({kind} literal) is "
                        "shared across calls; default to None and build "
                        "inside the function",
                    )
                elif (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CALLS
                ):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument ({default.func.id}()) is "
                        "shared across calls; default to None and build "
                        "inside the function",
                    )


class ConfigFieldTypeRule(Rule):
    name = "purity-config-field"
    summary = "config dataclass fields must be JSON-round-trippable"

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_source_tree

    def check(self, ctx: ModuleContext):
        for cls in _config_classes(ctx):
            for stmt in cls.body:
                if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                    stmt.target, ast.Name
                ):
                    continue
                if stmt.target.id.startswith("_"):
                    continue
                if isinstance(stmt.annotation, ast.Name) and stmt.annotation.id == "ClassVar":
                    continue
                if (
                    isinstance(stmt.annotation, ast.Subscript)
                    and "ClassVar" in set(_annotation_names(stmt.annotation.value))
                ):
                    continue
                if not _json_clean(stmt.annotation):
                    rendered = ast.unparse(stmt.annotation)
                    yield self.finding(
                        ctx,
                        stmt,
                        f"{cls.name}.{stmt.target.id}: {rendered} does not "
                        "survive a JSON round trip; config_hash / the "
                        "journal / the response cache all canonicalize "
                        "configs through to_dict()",
                    )


class TelemetryFieldRule(Rule):
    name = "purity-telemetry-field"
    summary = "no telemetry objects on *Config / *Task dataclasses"

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_source_tree

    def check(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not (node.name.endswith("Config") or node.name.endswith("Task")):
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                    stmt.target, ast.Name
                ):
                    continue
                names = set(_annotation_names(stmt.annotation))
                hit = names & _TELEMETRY_TYPES
                if hit:
                    yield self.finding(
                        ctx,
                        stmt,
                        f"{node.name}.{stmt.target.id} carries a telemetry "
                        f"object ({', '.join(sorted(hit))}); telemetry "
                        "travels by reference, never inside configs or "
                        "task payloads (PR 9 purity contract)",
                    )


class ConfigTelemetryImportRule(Rule):
    name = "purity-config-import"
    summary = "core/config.py must not import repro.telemetry"

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.path == "src/repro/core/config.py"

    def check(self, ctx: ModuleContext):
        for node in ast.walk(ctx.tree):
            imported = ""
            if isinstance(node, ast.Import):
                imported = ",".join(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom):
                imported = node.module or ""
            if "telemetry" in imported:
                yield self.finding(
                    ctx,
                    node,
                    "the config layer must stay telemetry-free so "
                    "config_hash can never observe instrumentation",
                )


RULES = [
    MutableDefaultRule,
    ConfigFieldTypeRule,
    TelemetryFieldRule,
    ConfigTelemetryImportRule,
]
