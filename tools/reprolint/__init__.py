"""reprolint — the repo's invariant checker.

Every rule here is a postmortem made permanent: the determinism
contract the executor-equivalence suites assert dynamically (PRs 3-6),
the service-layer race sweep of PR 8, the SharedArena/executor close
discipline of PR 4, and PR 9's telemetry-travels-by-reference purity
rule. ``make lint`` runs it over the whole tree; a new violation of
any of these invariants fails CI before it can ship.

Stdlib-only (``ast`` + ``argparse``); see ``docs/static-analysis.md``
for the rule catalog and suppression syntax.
"""

from tools.reprolint.core import (
    Finding,
    ModuleContext,
    Project,
    Rule,
    all_rules,
    analyze_source,
)
from tools.reprolint.driver import main

__all__ = [
    "Finding",
    "ModuleContext",
    "Project",
    "Rule",
    "all_rules",
    "analyze_source",
    "main",
]

__version__ = "1.0"
