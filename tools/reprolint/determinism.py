"""Determinism rules (the ``det-*`` family).

Scope: the deterministic packages (``gossip``, ``nn``, ``privacy``,
``core``, ``data``, ``graph``, ``metrics``) — everything the
executor-equivalence suites promise is bit-identical under a fixed
seed. Ambient nondeterminism there is a bug by definition:

* ``det-wall-clock`` — ``time.time()``/``time_ns``, ``datetime.now``/
  ``utcnow``/``today``, ``date.today``, ``time.localtime``: results
  must never depend on when the run happened.
* ``det-perf-counter`` — ``perf_counter`` is timing-only and allowed,
  but only under the telemetry-guard idiom (inside the live branch of
  an ``x is [not] None`` check, the shape PR 9 instrumented the round
  loop with), so the un-instrumented hot path provably takes no clock
  readings.
* ``det-random`` — the stdlib ``random`` module (global, seed-shared
  state) and numpy's legacy global API (``np.random.rand`` etc.) are
  banned; randomness flows through explicitly seeded
  ``np.random.Generator`` objects.
* ``det-unseeded-rng`` — ``np.random.default_rng()`` with no (or a
  ``None``) seed pulls OS entropy; every generator must derive from
  the study seed.
* ``det-set-iter`` — iterating a ``set`` directly (for/comprehension)
  feeds hash-order into whatever the loop drives; wrap it in
  ``sorted(...)`` like the engine's neighbor loops do.
"""

from __future__ import annotations

import ast

from tools.reprolint.core import Finding, ModuleContext, Rule

__all__ = ["RULES"]


def _import_table(tree: ast.Module) -> tuple[dict[str, str], dict[str, tuple[str, str]]]:
    """Map local names to modules: ``modules[alias] = module`` for
    ``import m [as alias]``; ``members[alias] = (module, name)`` for
    ``from m import name [as alias]``."""
    modules: dict[str, str] = {}
    members: dict[str, tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                modules[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                members[alias.asname or alias.name] = (node.module, alias.name)
    return modules, members


def _resolve_call(
    func: ast.expr,
    modules: dict[str, str],
    members: dict[str, tuple[str, str]],
) -> str | None:
    """Dotted origin of a called name, e.g. ``time.time`` whether it
    was reached via ``import time`` or ``from time import time``."""
    if isinstance(func, ast.Name):
        if func.id in members:
            module, name = members[func.id]
            return f"{module}.{name}"
        return None
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.reverse()
    root = node.id
    if root in modules:
        return ".".join([modules[root]] + parts)
    if root in members:
        module, name = members[root]
        return ".".join([f"{module}.{name}"] + parts)
    return None


_WALL_CLOCK = {
    "time.time": "time.time() is wall-clock",
    "time.time_ns": "time.time_ns() is wall-clock",
    "time.localtime": "time.localtime() is wall-clock",
    "time.ctime": "time.ctime() is wall-clock",
    "time.gmtime": "time.gmtime() is wall-clock",
    "time.monotonic": "time.monotonic() reads a clock",
    "time.monotonic_ns": "time.monotonic_ns() reads a clock",
    "datetime.datetime.now": "datetime.now() is wall-clock",
    "datetime.datetime.utcnow": "datetime.utcnow() is wall-clock",
    "datetime.datetime.today": "datetime.today() is wall-clock",
    "datetime.date.today": "date.today() is wall-clock",
}

_PERF_COUNTER = {"time.perf_counter", "time.perf_counter_ns"}


def _is_none_test(test: ast.expr) -> tuple[bool, bool]:
    """(is_a_none_test, is_not_variant) for ``x is [not] None``."""
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.Is, ast.IsNot))
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        return True, isinstance(test.ops[0], ast.IsNot)
    return False, False


def _none_guard_allows(ctx: ModuleContext, node: ast.AST) -> bool:
    """True when ``node`` sits in the live branch of an
    ``x is [not] None`` conditional — the telemetry-guard idiom.

    Both guard spellings count: the lexical branch (``if tel is not
    None: ...timing...``, or the ``else`` of an ``is None`` test) and
    the early-return shape (``if tel is None: <handle>; return`` above
    the timing code in the same suite).
    """
    for ancestor, child in ctx.ancestors(node):
        if isinstance(ancestor, (ast.If, ast.IfExp)):
            is_guard, is_not = _is_none_test(ancestor.test)
            if not is_guard:
                continue
            if isinstance(ancestor, ast.If):
                in_body = any(child is stmt for stmt in ancestor.body)
                in_orelse = any(child is stmt for stmt in ancestor.orelse)
            else:
                in_body = child is ancestor.body
                in_orelse = child is ancestor.orelse
            if in_body if is_not else in_orelse:
                return True
        # Early-return guard: a preceding `if x is None: ...; return`
        # (or raise/continue) in the same statement suite dominates
        # everything after it.
        body = getattr(ancestor, "body", None)
        if isinstance(body, list) and child in body:
            for stmt in body[: body.index(child)]:
                if not isinstance(stmt, ast.If) or stmt.orelse:
                    continue
                is_guard, is_not = _is_none_test(stmt.test)
                if (
                    is_guard
                    and not is_not
                    and stmt.body
                    and isinstance(
                        stmt.body[-1], (ast.Return, ast.Raise, ast.Continue)
                    )
                ):
                    return True
    return False


class WallClockRule(Rule):
    name = "det-wall-clock"
    summary = (
        "no wall-clock reads (time.time, datetime.now, ...) in the "
        "deterministic packages"
    )

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_deterministic_package

    def check(self, ctx: ModuleContext):
        modules, members = _import_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = _resolve_call(node.func, modules, members)
            if origin is None:
                continue
            if origin in _WALL_CLOCK:
                yield self.finding(
                    ctx,
                    node,
                    f"{_WALL_CLOCK[origin]}; deterministic code must not "
                    "read clocks (use the study seed / round counter)",
                )


class PerfCounterRule(Rule):
    name = "det-perf-counter"
    summary = (
        "perf_counter only under the telemetry-guard idiom "
        "(`x is not None` branch)"
    )

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_deterministic_package

    def check(self, ctx: ModuleContext):
        modules, members = _import_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = _resolve_call(node.func, modules, members)
            if origin in _PERF_COUNTER and not _none_guard_allows(ctx, node):
                yield self.finding(
                    ctx,
                    node,
                    "perf_counter outside a telemetry guard; time only "
                    "inside the live branch of an `x is not None` check "
                    "so the un-instrumented path reads no clocks",
                )


_NP_RANDOM_OK = {
    # Explicitly-seeded constructors and types, not ambient state.
    "Generator",
    "default_rng",  # separately checked for a seed argument
    "SeedSequence",
    "BitGenerator",
    "Philox",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "SFC64",
    "RandomState",  # constructor takes a seed; bare module calls are the trap
}


class RandomRule(Rule):
    name = "det-random"
    summary = (
        "no stdlib `random` or numpy legacy global RNG in the "
        "deterministic packages"
    )

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_deterministic_package

    def check(self, ctx: ModuleContext):
        modules, members = _import_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = _resolve_call(node.func, modules, members)
            if origin is None:
                continue
            parts = origin.split(".")
            if parts[0] == "random":
                yield self.finding(
                    ctx,
                    node,
                    f"stdlib random ({origin}) shares hidden global state; "
                    "use an explicitly seeded np.random.Generator",
                )
            elif (
                len(parts) == 3
                and parts[0] == "numpy"
                and parts[1] == "random"
                and parts[2] not in _NP_RANDOM_OK
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"numpy legacy global RNG (np.random.{parts[2]}) is "
                    "process-global state; draw from a seeded Generator",
                )


class UnseededRngRule(Rule):
    name = "det-unseeded-rng"
    summary = "np.random.default_rng() must be seeded"

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_deterministic_package

    def check(self, ctx: ModuleContext):
        modules, members = _import_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = _resolve_call(node.func, modules, members)
            if origin != "numpy.random.default_rng":
                continue
            unseeded = not node.args and not node.keywords
            if node.args and (
                isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            ):
                unseeded = True
            if unseeded:
                yield self.finding(
                    ctx,
                    node,
                    "default_rng() without a seed pulls OS entropy; derive "
                    "every generator from the study seed",
                )


def _is_set_expr(node: ast.expr, assigned: dict[str, ast.expr]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.Name) and node.id in assigned:
        return _is_set_expr(assigned[node.id], {})
    return False


class SetIterationRule(Rule):
    name = "det-set-iter"
    summary = "no direct iteration over sets (hash order); sort first"

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_deterministic_package

    def check(self, ctx: ModuleContext):
        # Per-function map of names assigned a set-valued expression.
        assigned: dict[str, ast.expr] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and _is_set_expr(node.value, {}):
                    assigned[target.id] = node.value
        iter_sites: list[tuple[ast.AST, ast.expr]] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_sites.append((node, node.iter))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    iter_sites.append((node, gen.iter))
        for node, iterable in iter_sites:
            # Membership tests like `if x in {...}` are order-free and
            # not reported; only the loop iterable position is.
            if _is_set_expr(iterable, assigned):
                yield self.finding(
                    ctx,
                    node,
                    "iterating a set feeds hash order into the loop; wrap "
                    "it in sorted(...) so downstream RNG draws see a "
                    "stable order",
                )


class EnvRandomizationRule(Rule):
    name = "det-hash-seed"
    summary = "no os.environ-dependent hashing/order tricks"

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_deterministic_package

    def check(self, ctx: ModuleContext):
        modules, members = _import_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = _resolve_call(node.func, modules, members)
            if origin == "uuid.uuid4":
                yield self.finding(
                    ctx,
                    node,
                    "uuid4() is OS entropy; derive ids from the study "
                    "seed or a counter",
                )


RULES = [
    WallClockRule,
    PerfCounterRule,
    RandomRule,
    UnseededRngRule,
    SetIterationRule,
    EnvRandomizationRule,
]
