"""Command-line driver: ``python -m tools.reprolint [paths...]``.

* discovers ``*.py`` under the given paths (default: ``src tests
  benchmarks examples tools``), skipping ``__pycache__`` and the
  analyzer's own fixture corpus (which violates rules on purpose);
* runs the project pass, then every rule over every module;
* subtracts the checked-in baseline (``tools/reprolint/baseline.json``,
  line-number-free keys so unrelated edits don't churn it) and prints
  the rest as ``file:line rule message``.

Exit codes: 0 clean, 1 findings, 2 usage / internal error.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
from pathlib import Path

from tools.reprolint.core import Finding, Project, all_rules, analyze_source

__all__ = ["main", "run", "discover_files", "load_baseline"]

DEFAULT_TARGETS = ("src", "tests", "benchmarks", "examples", "tools")
DEFAULT_BASELINE = "tools/reprolint/baseline.json"
# The fixture corpus exists to violate the rules; the real run must
# not read it (the analyzer's own tests point a root at it instead).
DEFAULT_EXCLUDES = ("tests/analysis/fixtures",)


def discover_files(root: Path, targets, excludes) -> list[Path]:
    files: list[Path] = []
    for target in targets:
        path = (root / target).resolve()
        if path.is_file() and path.suffix == ".py":
            files.append(path)
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such target: {target}")
        files.extend(sorted(path.rglob("*.py")))
    out = []
    for path in files:
        rel = path.relative_to(root).as_posix()
        if "__pycache__" in rel:
            continue
        if any(rel.startswith(exc) for exc in excludes):
            continue
        out.append(path)
    return out


def load_baseline(path: Path) -> dict[str, int]:
    """Baseline = mapping of finding key -> allowed count."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text())
    if isinstance(data, list):
        counts: dict[str, int] = {}
        for key in data:
            counts[key] = counts.get(key, 0) + 1
        return counts
    raise ValueError(
        f"baseline {path} must be a JSON list of 'path::rule::message' keys"
    )


def write_baseline(path: Path, findings: list[Finding]) -> None:
    keys = sorted(finding.baseline_key() for finding in findings)
    path.write_text(json.dumps(keys, indent=2) + "\n")


def run(
    root: Path,
    targets,
    baseline_path: Path | None,
    select: set[str] | None = None,
    excludes=DEFAULT_EXCLUDES,
    out=None,
    write_baseline_to: Path | None = None,
) -> int:
    # Resolved at call time, not def time, so test harnesses that swap
    # sys.stdout (pytest capsys) see the output.
    out = out if out is not None else sys.stdout
    root = root.resolve()
    files = discover_files(root, targets, excludes)
    rules = all_rules()
    if select:
        known = {rule.name for rule in rules}
        unknown = select - known
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.name in select]

    project = Project()
    sources: dict[Path, str] = {}
    for path in files:
        text = path.read_text(encoding="utf-8")
        sources[path] = text
        try:
            project.scan(path.relative_to(root).as_posix(), ast.parse(text))
        except SyntaxError:
            pass  # surfaces as a parse-error finding below
    project.finalize()

    findings: list[Finding] = []
    for path in files:
        rel = path.relative_to(root).as_posix()
        findings.extend(analyze_source(sources[path], rel, project, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    if write_baseline_to is not None:
        write_baseline(write_baseline_to, findings)
        print(
            f"wrote {len(findings)} finding(s) to baseline {write_baseline_to}",
            file=out,
        )
        return 0

    remaining: list[Finding] = []
    budget = dict(load_baseline(baseline_path)) if baseline_path else {}
    for finding in findings:
        key = finding.baseline_key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            continue
        remaining.append(finding)

    for finding in remaining:
        print(finding.render(), file=out)
    if remaining:
        print(
            f"reprolint: {len(remaining)} finding(s) in {len(files)} file(s)",
            file=out,
        )
        return 1
    print(f"reprolint: clean ({len(files)} files)", file=out)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="AST-based invariant checker for this repo "
        "(determinism, lock discipline, lifecycle, purity).",
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=list(DEFAULT_TARGETS),
        help="files or directories to check (default: %(default)s)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root that scoping paths are relative to (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="baseline file of accepted findings (default: %(default)s)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write all current findings to the baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        default="",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=list(DEFAULT_EXCLUDES),
        help="path prefix to skip (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name:24} {rule.summary}")
        return 0

    root = Path(args.root)
    baseline = None if args.no_baseline else root / args.baseline
    select = {part.strip() for part in args.select.split(",") if part.strip()}
    try:
        return run(
            root,
            args.targets,
            baseline,
            select=select or None,
            excludes=tuple(args.exclude),
            write_baseline_to=(root / args.baseline) if args.write_baseline else None,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2


def cli() -> int:  # pragma: no cover
    """``python -m tools.reprolint`` entry point.

    A downstream ``| head`` closing stdout early must not crash the
    checker with a BrokenPipeError traceback.
    """
    try:
        return main()
    except BrokenPipeError:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(cli())
