"""Lock-discipline rules (the ``lock-*`` family).

Scope: ``src/repro/service`` + ``src/repro/telemetry`` — the
thread-concurrent layer whose four races PR 8 fixed by hand. The rules
are the static encoding of that sweep:

* ``lock-order-cycle`` — a per-project lock-acquisition graph is built
  from lexically nested ``with <lock>:`` blocks (locks are identified
  as ``Class.attr`` for ``self._lock``-style attributes, ``*.attr``
  for locks reached through another object). A cycle in that graph is
  a deadlock waiting for the right interleaving.
* ``lock-blocking-call`` — blocking work (file I/O, journal writes,
  ``subprocess``/executor calls, sleeps, joins, user callbacks)
  performed while holding a lock serializes every other thread behind
  a syscall. ``Condition.wait``/``wait_for``/``notify`` are exempt —
  they are *why* the lock is held.

A ``with`` context expression counts as a lock when its attribute name
looks like one: ``lock``, ``cond``, ``cv``, ``mutex`` or any name
containing ``lock``/``cond`` (the repo's conventions: ``_lock``,
``_cond``).
"""

from __future__ import annotations

import ast

from tools.reprolint.core import ModuleContext, Rule

__all__ = ["RULES"]

_LOCKISH = ("lock", "cond", "mutex", "_cv")


def _lock_attr_name(expr: ast.expr) -> str | None:
    """The attribute name if ``expr`` looks like a lock, else None."""
    if isinstance(expr, ast.Attribute):
        attr = expr.attr.lower()
        if any(part in attr for part in _LOCKISH) or attr == "cv":
            return expr.attr
    if isinstance(expr, ast.Name):
        name = expr.id.lower()
        if any(part in name for part in _LOCKISH) or name == "cv":
            return expr.id
    return None


def _lock_label(expr: ast.expr, class_name: str) -> str | None:
    """Stable identity for a lock expression.

    ``self.X`` -> ``Class.X`` (instances of one class share a
    discipline); anything else -> ``*.X`` (attribute name only — we
    cannot know the owner's class statically, so all non-self locks
    with one attribute name collapse into a single node, which errs
    toward reporting)."""
    attr = _lock_attr_name(expr)
    if attr is None:
        return None
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return f"{class_name}.{attr}"
    return f"*.{attr}"


# Call shapes that block (or run arbitrary user code) and therefore
# must not happen while holding a lock.
_BLOCKING_FUNCS = {"open", "print", "input"}
_BLOCKING_MODULES = ("subprocess", "shutil", "socket", "requests", "urllib")
_BLOCKING_DOTTED = {
    "os.replace",
    "os.rename",
    "os.fsync",
    "os.remove",
    "os.unlink",
    "os.makedirs",
    "time.sleep",
    "json.dump",
}
_BLOCKING_METHODS = {
    # file/path I/O
    "write_text",
    "read_text",
    "write_bytes",
    "read_bytes",
    "mkdir",
    "rmdir",
    "touch",
    "fsync",
    # pools / threads / queues
    "submit",
    "shutdown",
    "join",
    "result",
    "terminate",
    # journal / persistence layer (PR 8: journal outside the locks)
    "record",
    "compact",
    "checkpoint",
}
# Held-lock methods that *release* while blocking, or are the point of
# holding the lock at all.
_CONDITION_METHODS = {"wait", "wait_for", "notify", "notify_all", "acquire", "release"}


def _dotted(expr: ast.expr) -> str | None:
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return ".".join(parts)
    return None


def _blocking_reason(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        if func.id in _BLOCKING_FUNCS:
            return f"{func.id}() blocks on I/O"
        return None
    if isinstance(func, ast.Attribute):
        if func.attr in _CONDITION_METHODS:
            return None
        dotted = _dotted(func)
        if dotted is not None:
            root = dotted.split(".")[0]
            if root in _BLOCKING_MODULES:
                return f"{dotted}() blocks on I/O"
            if dotted in _BLOCKING_DOTTED:
                return f"{dotted}() blocks on I/O"
        if func.attr in _BLOCKING_METHODS:
            return f".{func.attr}() blocks (I/O, pool or journal work)"
        if func.attr.startswith("on_") or func.attr.startswith("_on_"):
            return f".{func.attr}() runs a user callback"
    return None


class _ClassLockVisitor(ast.NodeVisitor):
    """Collect, for one class, lock-nesting edges and blocking calls
    under held locks. ``with`` statements are walked with an explicit
    held-lock stack, so only *lexical* nesting counts."""

    def __init__(self, class_name: str):
        self.class_name = class_name
        # (outer_label, inner_label, node-of-inner-with)
        self.edges: list[tuple[str, str, ast.With]] = []
        # (lock_label, call node, reason)
        self.blocking: list[tuple[str, ast.Call, str]] = []
        self._held: list[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Nested classes get their own visitor from the rule driver.
        if node.name == self.class_name:
            self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        labels = []
        for item in node.items:
            label = _lock_label(item.context_expr, self.class_name)
            if label is not None:
                labels.append(label)
        for label in labels:
            if self._held and self._held[-1] != label:
                self.edges.append((self._held[-1], label, node))
        self._held.extend(labels)
        self.generic_visit(node)
        for _ in labels:
            self._held.pop()

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        if self._held:
            reason = _blocking_reason(node)
            if reason is not None:
                self.blocking.append((self._held[-1], node, reason))
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A nested function body does not run under the enclosing
        # lock at definition time (it may run later, unlocked).
        held, self._held = self._held, []
        self.generic_visit(node)
        self._held = held

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        held, self._held = self._held, []
        self.generic_visit(node)
        self._held = held


def _class_visitors(ctx: ModuleContext):
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            visitor = _ClassLockVisitor(node.name)
            visitor.generic_visit(node)
            yield node, visitor


class LockOrderRule(Rule):
    name = "lock-order-cycle"
    summary = "no cycles in the lock-acquisition order graph"

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_lock_package

    def check(self, ctx: ModuleContext):
        edges: dict[str, set[str]] = {}
        sites: dict[tuple[str, str], ast.With] = {}
        for _, visitor in _class_visitors(ctx):
            for outer, inner, node in visitor.edges:
                edges.setdefault(outer, set()).add(inner)
                sites.setdefault((outer, inner), node)

        def reachable(src: str, dst: str, seen: set[str]) -> bool:
            if src == dst:
                return True
            seen.add(src)
            return any(
                reachable(nxt, dst, seen)
                for nxt in edges.get(src, ())
                if nxt not in seen
            )

        reported: set[tuple[str, str]] = set()
        for (outer, inner), node in sorted(
            sites.items(), key=lambda kv: kv[1].lineno
        ):
            if (inner, outer) in reported:
                continue
            if reachable(inner, outer, set()):
                reported.add((outer, inner))
                yield self.finding(
                    ctx,
                    node,
                    f"acquiring {inner} while holding {outer} closes an "
                    f"ordering cycle ({inner} -> ... -> {outer} exists "
                    "elsewhere); pick one global order",
                )


class BlockingUnderLockRule(Rule):
    name = "lock-blocking-call"
    summary = "no blocking work (I/O, journal, pools, callbacks) under a lock"

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_lock_package

    def check(self, ctx: ModuleContext):
        for _, visitor in _class_visitors(ctx):
            for label, node, reason in visitor.blocking:
                yield self.finding(
                    ctx,
                    node,
                    f"{reason} while holding {label}; move it outside "
                    "the critical section (PR 8 race-sweep discipline)",
                )


RULES = [LockOrderRule, BlockingUnderLockRule]
