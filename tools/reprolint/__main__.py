"""Entry point: ``python -m tools.reprolint``."""

import sys

from tools.reprolint.driver import cli

sys.exit(cli())
