# Marks tools/ as a package so `python -m tools.reprolint` resolves
# from the repo root without PYTHONPATH games.
