"""Smoke-run every script in examples/ at tiny scale.

Each example honors ``REPRO_EXAMPLES_SCALE=smoke`` by shrinking its
rounds/nodes/sweeps to seconds of work; this runner executes them all
in subprocesses with that knob set (and ``src/`` on the path), failing
on the first non-zero exit. Wired into ``make examples`` and CI so the
documented entry points cannot rot.

Usage:  python tools/run_examples.py [pattern ...]
        (patterns filter by substring of the script name)
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"


def main(argv: list[str]) -> int:
    scripts = sorted(EXAMPLES.glob("*.py"))
    if argv:
        scripts = [s for s in scripts if any(pat in s.name for pat in argv)]
    if not scripts:
        print("no example scripts matched", file=sys.stderr)
        return 2
    env = dict(os.environ)
    env["REPRO_EXAMPLES_SCALE"] = "smoke"
    src = str(REPO / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    failures = []
    for script in scripts:
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, str(script)],
            env=env,
            cwd=REPO,
            capture_output=True,
            text=True,
        )
        elapsed = time.perf_counter() - start
        status = "ok" if proc.returncode == 0 else f"FAIL ({proc.returncode})"
        print(f"{script.name:<32} {status:>9}  {elapsed:6.1f}s")
        if proc.returncode != 0:
            failures.append(script.name)
            sys.stdout.write(proc.stdout)
            sys.stderr.write(proc.stderr)
    if failures:
        print(f"\n{len(failures)} example(s) failed: {', '.join(failures)}")
        return 1
    print(f"\nall {len(scripts)} examples passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
