"""Tests for the ASCII chart renderer."""

import numpy as np
import pytest

from repro.experiments.plots import ascii_chart, sparkline


class TestSparkline:
    def test_length_capped_at_width(self):
        assert len(sparkline(np.arange(500), width=40)) == 40

    def test_short_series_kept_as_is(self):
        assert len(sparkline([1, 2, 3], width=40)) == 3

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline(np.linspace(0, 1, 10))
        levels = " .:-=+*#%@"
        ranks = [levels.index(ch) for ch in line]
        assert all(b >= a for a, b in zip(ranks, ranks[1:]))

    def test_constant_series(self):
        line = sparkline([5.0] * 10)
        assert len(set(line)) == 1

    def test_empty_and_nan(self):
        assert sparkline([]) == ""
        assert sparkline([np.nan, np.nan]) == ""


class TestAsciiChart:
    def test_contains_legend_and_axis(self):
        chart = ascii_chart({"a": np.linspace(0, 1, 20)})
        assert "o=a" in chart
        assert "1.000" in chart
        assert "0.000" in chart

    def test_multiple_series_distinct_markers(self):
        chart = ascii_chart(
            {"up": np.linspace(0, 1, 20), "down": np.linspace(1, 0, 20)}
        )
        assert "o=up" in chart
        assert "x=down" in chart

    def test_logy_for_decay(self):
        chart = ascii_chart(
            {"decay": np.logspace(0, -8, 30)}, logy=True
        )
        assert "e-0" in chart or "e+0" in chart  # scientific labels

    def test_empty(self):
        assert ascii_chart({}) == "(no series)"
        assert "(no finite data)" in ascii_chart({"a": np.array([np.nan])})

    def test_dimensions(self):
        chart = ascii_chart({"a": np.arange(10)}, width=30, height=6)
        lines = chart.splitlines()
        assert len(lines) == 6 + 2  # rows + axis + legend
        assert all("|" in l for l in lines[:6])
