"""Tests for the Campaign API (sweeps, parallelism, resume)."""

import numpy as np
import pytest

from repro import StudyConfig
from repro.experiments import Campaign, load_result, run_many


def tiny_config(**overrides):
    base = dict(
        name="camp",
        dataset="purchase100",
        n_train=600,
        n_test=150,
        num_features=64,
        n_nodes=6,
        view_size=2,
        protocol="samo",
        rounds=2,
        train_per_node=24,
        test_per_node=12,
        mlp_hidden=(32, 16),
        local_epochs=1,
        batch_size=12,
        max_attack_samples=32,
        max_global_test=64,
        seed=1,
    )
    base.update(overrides)
    return StudyConfig(**base)


class TestSweepBuilders:
    def test_from_grid_cartesian_product(self):
        campaign = Campaign.from_grid(
            tiny_config(), seed=[0, 1], protocol=["samo", "base_gossip"]
        )
        assert len(campaign.configs) == 4
        names = [c.name for c in campaign.configs]
        assert names[0] == "camp-seed=0-protocol=samo"
        assert len(set(names)) == 4
        assert {(c.seed, c.protocol) for c in campaign.configs} == {
            (0, "samo"),
            (0, "base_gossip"),
            (1, "samo"),
            (1, "base_gossip"),
        }

    def test_from_zip_elementwise(self):
        campaign = Campaign.from_zip(
            tiny_config(), seed=[0, 1], view_size=[2, 3]
        )
        assert [(c.seed, c.view_size) for c in campaign.configs] == [
            (0, 2),
            (1, 3),
        ]

    def test_from_zip_rejects_unequal_lengths(self):
        with pytest.raises(ValueError, match="equal lengths"):
            Campaign.from_zip(tiny_config(), seed=[0, 1], view_size=[2])

    def test_unknown_axis_rejected_with_valid_fields(self):
        with pytest.raises(ValueError, match="n_nodes"):
            Campaign.from_grid(tiny_config(), nodes=[4, 8])

    def test_group_axis_sweeps_whole_groups(self):
        from repro.core.config import PrivacyConfig

        campaign = Campaign.from_grid(
            tiny_config(),
            privacy=[PrivacyConfig(), PrivacyConfig(dp_epsilon=10.0)],
        )
        assert [c.dp_epsilon for c in campaign.configs] == [None, 10.0]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Campaign([tiny_config(), tiny_config()])

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Campaign([])


class TestExecution:
    def test_run_matches_run_many_bitwise(self):
        configs = [tiny_config(name=f"c{i}", seed=i) for i in range(2)]
        serial = run_many(configs)
        campaign = Campaign(configs).run(jobs=1)
        assert list(serial) == list(campaign) == ["c0", "c1"]
        for name in serial:
            np.testing.assert_array_equal(
                serial[name].series("mia_accuracy"),
                campaign[name].series("mia_accuracy"),
            )

    def test_parallel_jobs_bit_identical_to_serial(self):
        configs = [tiny_config(name=f"p{i}", seed=i) for i in range(2)]
        serial = Campaign(configs).run(jobs=1)
        parallel = Campaign(configs).run(jobs=2)
        for name in serial:
            np.testing.assert_array_equal(
                serial[name].series("mia_accuracy"),
                parallel[name].series("mia_accuracy"),
            )
            np.testing.assert_array_equal(
                serial[name].series("global_test_accuracy"),
                parallel[name].series("global_test_accuracy"),
            )
            assert serial[name].metadata == parallel[name].metadata

    def test_default_jobs_respects_per_study_demand(self):
        serial = Campaign([tiny_config(name=f"s{i}") for i in range(3)])
        assert 1 <= serial.default_jobs() <= 3
        # A sharded study occupies n_shards processes; the campaign must
        # not stack campaign-level jobs on top of them.
        import os

        sharded = Campaign(
            [
                tiny_config(name=f"sh{i}", executor="sharded", n_shards=4)
                for i in range(3)
            ]
        )
        assert sharded.default_jobs() <= max(1, (os.cpu_count() or 1) // 4)

    def test_run_many_empty_list_returns_empty_dict(self):
        assert run_many([]) == {}


class TestResume:
    def test_results_persisted_and_loaded(self, tmp_path):
        configs = [tiny_config(name=f"r{i}", seed=i) for i in range(2)]
        campaign = Campaign(configs, out_dir=tmp_path)
        results = campaign.run(jobs=1)
        for config in configs:
            path = campaign.result_path(config.name)
            assert path.exists()
            np.testing.assert_array_equal(
                load_result(path).series("mia_accuracy"),
                results[config.name].series("mia_accuracy"),
            )

    def test_rerun_loads_from_disk_instead_of_recomputing(self, tmp_path):
        configs = [tiny_config(name=f"d{i}", seed=i) for i in range(2)]
        campaign = Campaign(configs, out_dir=tmp_path)
        campaign.run(jobs=1)
        # Poison one persisted result; a re-run must surface the
        # poisoned value (proof it loaded instead of recomputing).
        path = campaign.result_path("d0")
        path.write_text(
            path.read_text().replace('"config_name": "d0"', '"config_name": "poison"')
        )
        rerun = Campaign(configs, out_dir=tmp_path).run(jobs=1)
        assert rerun["d0"].config_name == "poison"
        assert rerun["d1"].config_name == "d1"

    def test_resume_with_changed_base_config_rejected(self, tmp_path):
        """Names encode only sweep axes; the manifest must catch a
        changed base config instead of serving stale results."""
        Campaign([tiny_config(name="x")], out_dir=tmp_path).run(jobs=1)
        changed = [tiny_config(name="x", rounds=3)]
        with pytest.raises(ValueError, match="different"):
            Campaign(changed, out_dir=tmp_path).run(jobs=1)

    def test_corrupt_result_file_is_recomputed(self, tmp_path):
        configs = [tiny_config(name="k")]
        campaign = Campaign(configs, out_dir=tmp_path)
        campaign.run(jobs=1)
        campaign.result_path("k").write_text("{truncated")
        rerun = Campaign(configs, out_dir=tmp_path).run(jobs=1)
        assert rerun["k"].config_name == "k"
        assert load_result(campaign.result_path("k")).config_name == "k"

    def test_failed_study_does_not_discard_finished_siblings(self, tmp_path):
        """One crashing study must still let every other study finish
        AND persist (they are the resume set); the failure propagates
        afterwards."""
        configs = [
            tiny_config(name="ok0", seed=0),
            # Infeasible DP budget: raises inside run_study's build.
            tiny_config(name="doomed", dp_epsilon=1e-9),
            tiny_config(name="ok1", seed=1),
        ]
        campaign = Campaign(configs, out_dir=tmp_path)
        with pytest.raises(ValueError, match="epsilon"):
            campaign.run(jobs=2)
        assert campaign.result_path("ok0").exists()
        assert campaign.result_path("ok1").exists()
        assert not campaign.result_path("doomed").exists()
        # The resume only has the doomed study left; fixing it (fresh
        # dir aside, here we just drop it) reuses the persisted pair.
        survivors = Campaign(configs[::2], out_dir=tmp_path).run(jobs=1)
        assert set(survivors) == {"ok0", "ok1"}

    def test_partial_directory_runs_only_missing(self, tmp_path):
        configs = [tiny_config(name=f"m{i}", seed=i) for i in range(2)]
        campaign = Campaign(configs, out_dir=tmp_path)
        campaign.run(jobs=1)
        campaign.result_path("m1").unlink()
        rerun = Campaign(configs, out_dir=tmp_path).run(jobs=1)
        assert set(rerun) == {"m0", "m1"}
        assert campaign.result_path("m1").exists()  # recomputed + saved


class TestCampaignTiming:
    """Regression: campaign queue-wait/wall histograms must be fed from
    the monotonic clock, not ``time.time()``. A backwards wall-clock
    step (NTP slew, manual adjustment) used to record negative queue
    waits and garbage wall times."""

    @staticmethod
    def _install_clocks(monkeypatch):
        """Monotonic fake perf_counter (+1 s per call) next to a
        wall clock that steps BACKWARDS 100 s per read. If the runner
        ever regresses to ``time.time()``, the recorded durations go
        negative and the exact-value asserts below fail."""
        import time as time_module

        from repro.experiments import runner

        mono = {"now": 100.0}

        def fake_perf_counter():
            mono["now"] += 1.0
            return mono["now"]

        wall = {"now": 1e9}

        def fake_wall_clock():
            wall["now"] -= 100.0
            return wall["now"]

        monkeypatch.setattr(runner, "perf_counter", fake_perf_counter)
        monkeypatch.setattr(time_module, "time", fake_wall_clock)
        return runner

    def test_serial_histograms_record_monotonic_durations(self, monkeypatch):
        from repro.metrics.records import RunResult
        from repro.telemetry import Telemetry

        runner = self._install_clocks(monkeypatch)
        monkeypatch.setattr(
            runner, "run_study", lambda config: RunResult(config_name=config.name)
        )
        tel = Telemetry()
        configs = [tiny_config(name=f"t{i}") for i in range(2)]
        Campaign(configs, telemetry=tel).run(jobs=1)

        queue = tel.registry.get("repro_campaign_queue_wait_ms")
        wall = tel.registry.get("repro_campaign_study_wall_ms")
        # Clock trace: submit=101; t0 starts=102, ends=103; t1
        # starts=104, ends=105 — so queue waits are 1 s and 3 s and
        # each study's wall time is exactly 1 s.
        assert queue.count(study="t0") == 1
        assert queue.sum(study="t0") == pytest.approx(1_000.0)
        assert queue.sum(study="t1") == pytest.approx(3_000.0)
        assert wall.sum(study="t0") == pytest.approx(1_000.0)
        assert wall.sum(study="t1") == pytest.approx(1_000.0)

    def test_run_study_timed_wrapper_is_wall_clock_immune(self, monkeypatch):
        from repro.metrics.records import RunResult

        runner = self._install_clocks(monkeypatch)
        monkeypatch.setattr(
            runner, "run_study", lambda config: RunResult(config_name=config.name)
        )
        submitted = runner.perf_counter()  # 101
        result, wait_s, wall_s = runner._run_study_timed(
            tiny_config(name="w"), submitted
        )
        assert result.config_name == "w"
        assert wait_s == pytest.approx(1.0)  # started at 102
        assert wall_s == pytest.approx(1.0)  # finished at 103
        assert wait_s >= 0.0 and wall_s >= 0.0
