"""Tests for experiment configuration presets."""

import pytest

from repro.experiments import (
    SCALES,
    dataset_model_summary,
    paper_table2_config,
    scaled_config,
    table2_rows,
)


class TestScaledConfig:
    @pytest.mark.parametrize("dataset", ["cifar10", "cifar100", "fashion_mnist", "purchase100"])
    @pytest.mark.parametrize("scale", ["tiny", "small"])
    def test_all_presets_build(self, dataset, scale):
        config = scaled_config(dataset, scale)
        assert config.dataset == dataset
        assert config.n_nodes == SCALES[scale].n_nodes

    def test_table2_hyperparams_applied(self):
        config = scaled_config("purchase100", "tiny")
        assert config.learning_rate == 0.01
        assert config.momentum == 0.9
        assert config.weight_decay == 5e-4

    def test_cifar10_has_zero_momentum(self):
        """Table 2: CIFAR-10 trains with momentum 0."""
        assert scaled_config("cifar10", "tiny").momentum == 0.0

    def test_local_epoch_cap_at_tiny_scale(self):
        # Purchase100 uses 10 local epochs in the paper; tiny caps at 2.
        assert scaled_config("purchase100", "tiny").local_epochs == 2
        assert paper_table2_config("purchase100").local_epochs == 10

    def test_overrides_forwarded(self):
        config = scaled_config("cifar10", "tiny", dynamic=True, view_size=4)
        assert config.dynamic
        assert config.view_size == 4

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            scaled_config("mnist", "tiny")

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            scaled_config("cifar10", "huge")


class TestPaperScale:
    def test_150_nodes_default(self):
        assert paper_table2_config("cifar10").n_nodes == 150

    def test_cifar100_uses_60_nodes(self):
        """Figure captions: '150 nodes (60 nodes on CIFAR100)'."""
        assert paper_table2_config("cifar100").n_nodes == 60

    def test_paper_rounds_match_table2(self):
        assert paper_table2_config("cifar10").rounds == 250
        assert paper_table2_config("cifar100").rounds == 500
        assert paper_table2_config("purchase100").rounds == 250

    def test_paper_image_size(self):
        assert paper_table2_config("cifar10").image_size == 32


class TestTables:
    def test_table2_has_four_rows(self):
        rows = table2_rows()
        assert len(rows) == 4
        assert {r["dataset"] for r in rows} == {
            "cifar10", "cifar100", "fashion_mnist", "purchase100"
        }

    def test_table2_values_match_paper(self):
        by_name = {r["dataset"]: r for r in table2_rows()}
        assert by_name["cifar100"]["learning_rate"] == 0.001
        assert by_name["cifar100"]["local_epochs"] == 5
        assert by_name["cifar100"]["rounds"] == 500
        assert by_name["purchase100"]["local_epochs"] == 10
        assert all(r["weight_decay"] == 5e-4 for r in table2_rows())

    def test_table1_characteristics(self):
        rows = dataset_model_summary()
        by_name = {r["dataset"]: r for r in rows}
        assert by_name["cifar10"]["train_set"] == 50_000
        assert by_name["purchase100"]["train_set"] == 157_859
        assert by_name["purchase100"]["classes"] == 100
        assert by_name["fashion_mnist"]["input_size"] == (28, 28, 1)
