"""Tests for figure data generators (structure + basic sanity).

Full qualitative-shape comparisons against the paper run in
``benchmarks/``; here each generator is exercised at tiny scale on a
reduced grid to verify structure, determinism and invariants.
"""

import numpy as np
import pytest

from repro.experiments import figures


class TestTradeoffSeries:
    def test_keys_and_lengths(self):
        from repro.experiments import scaled_config, run_experiment

        result = run_experiment(
            scaled_config("purchase100", "tiny", rounds=2, name="ts")
        )
        series = figures.tradeoff_series(result)
        assert set(series) == {
            "test_accuracy",
            "mia_accuracy",
            "mia_tpr_at_1_fpr",
            "generalization_error",
        }
        assert all(len(v) == 2 for v in series.values())


class TestFigure2:
    def test_structure(self):
        out = figures.figure2(scale="tiny", datasets=("purchase100",))
        assert out["view_size"] == 5
        series = out["datasets"]["purchase100"]
        assert set(series) == {"base_gossip", "samo"}
        for proto in series.values():
            assert np.all(proto["mia_accuracy"] >= 0)


class TestFigure3:
    def test_structure(self):
        out = figures.figure3(scale="tiny", datasets=("purchase100",))
        series = out["datasets"]["purchase100"]
        assert set(series) == {"static", "dynamic"}


class TestFigure4:
    def test_structure_and_ranges(self):
        out = figures.figure4(
            scale="tiny", datasets=("purchase100",), n_runs=2
        )
        per_setting = out["datasets"]["purchase100"]
        for setting in ("static", "dynamic"):
            entry = per_setting[setting]
            assert entry["runs"].shape[0] == 2
            assert np.all(entry["max_canary_tpr"] >= entry["mean_canary_tpr"] - 1e-12)
            assert np.all(entry["max_canary_tpr"] <= 1.0)

    def test_canaries_are_memorized(self):
        """The canary attack should find strong signal at some round."""
        out = figures.figure4(
            scale="tiny", datasets=("purchase100",), n_runs=1
        )
        static = out["datasets"]["purchase100"]["static"]["max_canary_tpr"]
        assert static.max() > 0.2


class TestFigure5:
    def test_structure(self):
        out = figures.figure5(scale="tiny", view_sizes=(2, 5))
        for setting in ("static", "dynamic"):
            rows = out["settings"][setting]
            assert [r["view_size"] for r in rows] == [2, 5]
            for row in rows:
                assert 0 <= row["max_mia_accuracy"] <= 1
                assert row["models_sent_per_node"] > 0

    def test_larger_view_costs_more_messages(self):
        out = figures.figure5(scale="tiny", view_sizes=(2, 5))
        rows = out["settings"]["static"]
        assert rows[1]["models_sent_per_node"] > rows[0]["models_sent_per_node"]

    def test_default_view_sizes_respect_node_count(self):
        out = figures.figure5(scale="tiny")
        assert all(k < 8 for k in out["view_sizes"])


class TestFigure6:
    def test_structure(self):
        out = figures.figure6(scale="tiny", betas=(None, 0.1))
        assert set(out["series"]) == {
            "iid-static",
            "iid-dynamic",
            "beta=0.1-static",
            "beta=0.1-dynamic",
        }


class TestFigure7:
    def test_structure(self):
        out = figures.figure7(scale="tiny", datasets=("purchase100",))
        entry = out["datasets"]["purchase100"]["static"]
        assert len(entry["generalization_error"]) == len(entry["mia_accuracy"])


class TestFigure8:
    def test_structure(self):
        out = figures.figure8(scale="tiny")
        for setting in ("static", "dynamic"):
            entry = out["settings"][setting]
            assert len(entry["rounds"]) == len(entry["mia_accuracy"])


class TestFigure9:
    def test_structure(self):
        out = figures.figure9(scale="tiny", epsilons=(50.0, None))
        assert len(out["rows"]) == 4  # 2 budgets x 2 settings
        for row in out["rows"]:
            assert row["setting"] in ("static", "dynamic")
            if row["epsilon"] is None:
                assert row["noise_multiplier"] == 0.0
            else:
                assert row["noise_multiplier"] > 0

    def test_dp_reduces_utility(self):
        out = figures.figure9(scale="tiny", epsilons=(5.0, None))
        by_key = {
            (r["epsilon"], r["setting"]): r for r in out["rows"]
        }
        assert (
            by_key[(5.0, "static")]["max_test_accuracy"]
            <= by_key[(None, "static")]["max_test_accuracy"] + 0.05
        )


class TestFigure10:
    def test_structure(self):
        out = figures.figure10(n=30, view_sizes=(2, 5), iterations=10, runs=3)
        assert set(out["curves"]) == {
            "static-2reg",
            "dynamic-2reg",
            "static-5reg",
            "dynamic-5reg",
        }
        for curve in out["curves"].values():
            assert curve["mean"].shape == (10,)

    def test_dynamic_decays_faster(self):
        out = figures.figure10(n=30, view_sizes=(2,), iterations=20, runs=3)
        static = out["curves"]["static-2reg"]["mean"][-1]
        dynamic = out["curves"]["dynamic-2reg"]["mean"][-1]
        assert dynamic < static
