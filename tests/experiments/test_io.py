"""Tests for result persistence (JSON/CSV round-trips)."""

import numpy as np
import pytest

from repro.experiments import (
    load_result,
    result_to_csv,
    results_to_summary_csv,
    run_experiment,
    save_result,
    scaled_config,
)


@pytest.fixture(scope="module")
def result():
    return run_experiment(
        scaled_config("purchase100", "tiny", rounds=2, name="io-test")
    )


class TestJSONRoundtrip:
    def test_save_and_load(self, result, tmp_path):
        path = save_result(result, tmp_path / "run.json")
        loaded = load_result(path)
        assert loaded.config_name == result.config_name
        assert len(loaded.rounds) == len(result.rounds)
        np.testing.assert_allclose(
            loaded.series("mia_accuracy"), result.series("mia_accuracy")
        )
        assert loaded.metadata == result.metadata

    def test_save_is_atomic_no_temp_left_behind(self, result, tmp_path):
        path = save_result(result, tmp_path / "run.json")
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_result(bad)

    def test_summary_survives_roundtrip(self, result, tmp_path):
        path = save_result(result, tmp_path / "run.json")
        assert load_result(path).summary() == result.summary()


class TestCSV:
    def test_per_round_csv(self, result, tmp_path):
        path = result_to_csv(result, tmp_path / "rounds.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + len(result.rounds)
        assert lines[0].startswith("round_index,global_test_accuracy")

    def test_summary_csv(self, result, tmp_path):
        path = results_to_summary_csv({"a": result}, tmp_path / "summary.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert "max_test_accuracy" in lines[0]

    def test_summary_csv_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            results_to_summary_csv({}, tmp_path / "empty.csv")
