"""Tests for table renderers."""

from repro.experiments.tables import (
    render_rows,
    table1,
    table2,
    verify_table1_shapes,
)


class TestRenderRows:
    def test_renders_header_and_rows(self):
        text = render_rows([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4  # header, separator, 2 rows

    def test_empty(self):
        assert render_rows([]) == "(empty)"

    def test_column_subset(self):
        text = render_rows([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]


class TestTables:
    def test_table1_rows(self):
        rows = table1()
        assert len(rows) == 4

    def test_table2_rows(self):
        rows = table2()
        assert len(rows) == 4

    def test_verify_shapes_executable(self):
        rows = verify_table1_shapes(image_size=8, num_features=32)
        by_name = {r["dataset"]: r for r in rows}
        assert by_name["cifar10"]["input_shape"] == (3, 8, 8)
        assert by_name["fashion_mnist"]["input_shape"] == (1, 8, 8)
        assert by_name["purchase100"]["input_shape"] == (32,)
        assert all(r["parameters"] > 0 for r in rows)
