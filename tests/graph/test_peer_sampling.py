"""Tests for peer-sampling services, including PeerSwap invariants."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import (
    PeerSwapSampler,
    StaticPeerSampler,
    graph_from_views,
    make_sampler,
    validate_k_regular,
)


class TestStaticSampler:
    def test_views_never_change(self, rng):
        sampler = StaticPeerSampler(12, 3, rng)
        before = sampler.views()
        for node in range(12):
            sampler.on_wake(node)
        assert sampler.views() == before

    def test_view_returns_copy(self, rng):
        sampler = StaticPeerSampler(12, 3, rng)
        view = sampler.view(0)
        view.add(99)
        assert 99 not in sampler.view(0)

    def test_not_dynamic(self, rng):
        assert not StaticPeerSampler(12, 3, rng).dynamic

    def test_initial_graph_is_k_regular(self, rng):
        sampler = StaticPeerSampler(20, 4, rng)
        validate_k_regular(sampler.views(), 4)

    def test_rejects_k_ge_n(self, rng):
        with pytest.raises(ValueError):
            StaticPeerSampler(4, 4, rng)


class TestPeerSwap:
    def test_is_dynamic(self, rng):
        assert PeerSwapSampler(12, 3, rng).dynamic

    def test_swap_preserves_k_regularity(self, rng):
        sampler = PeerSwapSampler(16, 4, rng)
        for _ in range(100):
            sampler.on_wake(int(rng.integers(0, 16)))
            sampler.validate()

    def test_swap_preserves_regularity_k2(self, rng):
        sampler = PeerSwapSampler(10, 2, rng)
        for _ in range(200):
            sampler.on_wake(int(rng.integers(0, 10)))
        sampler.validate()

    def test_swap_is_position_exchange(self, rng):
        """After swapping i and j, i's view equals j's old view with i/j
        relabeled, and vice versa."""
        sampler = PeerSwapSampler(12, 3, rng)
        i = 0
        j = sorted(sampler.view(i))[0]
        old_i, old_j = sampler.view(i), sampler.view(j)

        def relabel(view):
            out = set()
            for v in view:
                out.add({i: j, j: i}.get(v, v))
            return out

        sampler.swap(i, j)
        assert sampler.view(i) == relabel(old_j) - {i}
        assert sampler.view(j) == relabel(old_i) - {j}

    def test_swap_with_self_is_noop(self, rng):
        sampler = PeerSwapSampler(12, 3, rng)
        before = sampler.views()
        sampler.swap(3, 3)
        assert sampler.views() == before

    def test_swap_non_neighbors_also_valid(self, rng):
        sampler = PeerSwapSampler(16, 3, rng)
        non_neighbors = [
            j for j in range(16) if j != 0 and j not in sampler.view(0)
        ]
        sampler.swap(0, non_neighbors[0])
        sampler.validate()

    def test_swap_preserves_edge_multiset(self, rng):
        """The graph after a swap is isomorphic to the graph before
        (same degree sequence, same number of edges)."""
        sampler = PeerSwapSampler(14, 4, rng)
        edges_before = graph_from_views(sampler.views()).number_of_edges()
        for _ in range(50):
            sampler.on_wake(int(rng.integers(0, 14)))
        edges_after = graph_from_views(sampler.views()).number_of_edges()
        assert edges_before == edges_after

    def test_views_eventually_change(self, rng):
        sampler = PeerSwapSampler(16, 3, rng)
        before = sampler.views()
        for _ in range(30):
            sampler.on_wake(int(rng.integers(0, 16)))
        assert sampler.views() != before

    @given(
        n=st.sampled_from([8, 12, 16]),
        k=st.sampled_from([2, 3, 4]),
        seed=st.integers(0, 1000),
        swaps=st.integers(1, 60),
    )
    def test_property_regularity_invariant(self, n, k, seed, swaps):
        if (n * k) % 2:
            return
        rng = np.random.default_rng(seed)
        sampler = PeerSwapSampler(n, k, rng)
        for _ in range(swaps):
            sampler.on_wake(int(rng.integers(0, n)))
        sampler.validate()


class TestFactory:
    def test_make_sampler_static(self, rng):
        assert isinstance(make_sampler(False, 10, 2, rng), StaticPeerSampler)

    def test_make_sampler_dynamic(self, rng):
        assert isinstance(make_sampler(True, 10, 2, rng), PeerSwapSampler)


class TestFreshGraphSampler:
    def test_is_dynamic(self, rng):
        from repro.graph import FreshGraphSampler

        assert FreshGraphSampler(12, 3, rng).dynamic

    def test_resamples_after_n_wakes(self, rng):
        from repro.graph import FreshGraphSampler

        sampler = FreshGraphSampler(12, 3, rng, resample_every=5)
        before = sampler.views()
        for i in range(4):
            sampler.on_wake(i % 12)
        assert sampler.views() == before  # not yet
        sampler.on_wake(0)
        assert sampler.views() != before  # redrawn

    def test_stays_k_regular_after_resample(self, rng):
        from repro.graph import FreshGraphSampler

        sampler = FreshGraphSampler(16, 4, rng, resample_every=3)
        for i in range(30):
            sampler.on_wake(i % 16)
        validate_k_regular(sampler.views(), 4)

    def test_rejects_bad_period(self, rng):
        from repro.graph import FreshGraphSampler

        with pytest.raises(ValueError):
            FreshGraphSampler(12, 3, rng, resample_every=0)

    def test_registry_contains_all(self, rng):
        from repro.graph import SAMPLERS, make_sampler_by_name

        assert set(SAMPLERS) == {"static", "peerswap", "fresh"}
        for name in SAMPLERS:
            sampler = make_sampler_by_name(name, 10, 2, rng)
            assert sampler.n_nodes == 10

    def test_unknown_name_rejected(self, rng):
        from repro.graph import make_sampler_by_name

        with pytest.raises(ValueError):
            make_sampler_by_name("ring", 10, 2, rng)
