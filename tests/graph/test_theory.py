"""Tests validating the simulator against random-graph spectral theory."""

import numpy as np
import pytest

from repro.graph import mixing_matrix
from repro.graph.theory import (
    empirical_lambda2,
    predicted_static_mixing_time,
    ramanujan_lambda2,
    spectral_gap,
)


class TestRamanujanPrediction:
    @pytest.mark.parametrize("k", [5, 10, 25])
    def test_prediction_matches_empirical(self, k, rng):
        """Friedman: random k-regular graphs are nearly Ramanujan, so
        the closed form should match sampled graphs within a few
        percent at n=150 (the paper's scale)."""
        predicted = ramanujan_lambda2(k)
        measured, std = empirical_lambda2(150, k, samples=5, rng=rng)
        assert measured == pytest.approx(predicted, rel=0.10)

    def test_k2_degenerates_to_one(self):
        assert ramanujan_lambda2(2) == 1.0

    def test_monotone_decreasing_in_k(self):
        values = [ramanujan_lambda2(k) for k in (3, 5, 10, 25)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_rejects_k1(self):
        with pytest.raises(ValueError):
            ramanujan_lambda2(1)


class TestMixingTimePrediction:
    def test_matches_static_simulation(self, rng):
        """Predicted T for lambda2^T < eps matches the simulated static
        decay within ~25%."""
        from repro.graph import simulate_lambda2_decay

        k, eps = 5, 1e-3
        predicted = predicted_static_mixing_time(k, eps)
        decay = simulate_lambda2_decay(150, k, 40, dynamic=False, runs=3, rng=rng)
        measured = 1 + int(np.argmax(decay.mean < eps))
        assert decay.mean[-1] < eps  # reached within horizon
        assert measured == pytest.approx(predicted, rel=0.25)

    def test_infinite_for_k2(self):
        assert predicted_static_mixing_time(2, 0.01) == float("inf")

    def test_smaller_epsilon_needs_more_time(self):
        assert predicted_static_mixing_time(5, 1e-6) > (
            predicted_static_mixing_time(5, 1e-2)
        )

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            predicted_static_mixing_time(5, 1.5)


class TestSpectralGap:
    def test_complement_of_lambda2(self, rng):
        w = mixing_matrix(20, 4, rng)
        from repro.graph import lambda2

        assert spectral_gap(w) == pytest.approx(1.0 - lambda2(w))

    def test_larger_k_larger_gap(self, rng):
        g2 = spectral_gap(mixing_matrix(30, 2, rng))
        g10 = spectral_gap(mixing_matrix(30, 10, rng))
        assert g10 > g2
