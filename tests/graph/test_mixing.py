"""Tests for the Section 4 spectral mixing analysis."""

import numpy as np
import pytest

from repro.graph import (
    MixingDecayResult,
    consensus_distance,
    lambda2,
    mixing_matrix,
    mixing_matrix_from_views,
    random_regular_graph,
    simulate_consensus,
    simulate_lambda2_decay,
    views_from_graph,
)


class TestMixingMatrix:
    def test_doubly_stochastic(self, rng):
        w = mixing_matrix(20, 4, rng)
        np.testing.assert_allclose(w.sum(axis=0), 1.0)
        np.testing.assert_allclose(w.sum(axis=1), 1.0)

    def test_symmetric(self, rng):
        w = mixing_matrix(20, 4, rng)
        np.testing.assert_allclose(w, w.T)

    def test_weights_are_one_over_k_plus_one(self, rng):
        graph = random_regular_graph(10, 3, rng)
        w = mixing_matrix_from_views(views_from_graph(graph))
        nonzero = w[w > 0]
        np.testing.assert_allclose(nonzero, 0.25)
        np.testing.assert_allclose(np.diag(w), 0.25)

    def test_preserves_average(self, rng):
        w = mixing_matrix(16, 4, rng)
        theta = rng.normal(size=16)
        assert (w @ theta).mean() == pytest.approx(theta.mean())


class TestLambda2:
    def test_identity_has_lambda2_one(self):
        assert lambda2(np.eye(5)) == pytest.approx(1.0)

    def test_complete_average_has_lambda2_zero(self):
        n = 6
        w = np.full((n, n), 1.0 / n)
        assert lambda2(w) == pytest.approx(0.0, abs=1e-12)

    def test_matches_eigenvalues_for_symmetric(self, rng):
        w = mixing_matrix(20, 4, rng)
        eigs = np.sort(np.abs(np.linalg.eigvalsh(w)))[::-1]
        # Largest eigenvalue is 1 (the consensus direction); lambda2 is
        # the next largest modulus.
        assert lambda2(w) == pytest.approx(eigs[1], abs=1e-10)

    def test_in_unit_interval(self, rng):
        for k in (2, 4, 6):
            w = mixing_matrix(16, k, rng)
            assert 0.0 <= lambda2(w) <= 1.0

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            lambda2(np.zeros((2, 3)))

    def test_denser_graphs_mix_faster(self, rng):
        """Larger k gives smaller lambda2 (better single-step mixing)."""
        l2 = {k: np.mean([lambda2(mixing_matrix(30, k, rng)) for _ in range(5)])
              for k in (2, 10)}
        assert l2[10] < l2[2]


class TestContractionBound:
    def test_boyd_inequality_holds(self, rng):
        """||W theta - avg|| <= lambda2(W) ||theta - avg|| (Eq. 11)."""
        for _ in range(10):
            w = mixing_matrix(20, 4, rng)
            theta = rng.normal(size=20)
            lhs = consensus_distance(w @ theta)
            rhs = lambda2(w) * consensus_distance(theta)
            assert lhs <= rhs + 1e-10

    def test_static_product_is_power(self, rng):
        """lambda2(W^T) == lambda2(W)^T for the static setting."""
        w = mixing_matrix(16, 4, rng)
        t = 5
        product = np.linalg.matrix_power(w, t)
        assert lambda2(product) == pytest.approx(lambda2(w) ** t, rel=1e-6)


class TestDecaySimulation:
    def test_shapes(self, rng):
        result = simulate_lambda2_decay(20, 2, 10, dynamic=False, runs=3, rng=rng)
        assert isinstance(result, MixingDecayResult)
        assert result.values.shape == (3, 10)
        assert result.mean.shape == (10,)

    def test_monotone_nonincreasing(self, rng):
        result = simulate_lambda2_decay(20, 4, 15, dynamic=True, runs=2, rng=rng)
        for run in result.values:
            assert np.all(np.diff(run) <= 1e-9)

    def test_dynamic_beats_static_at_k2(self, rng):
        """The headline claim of Figure 10."""
        static = simulate_lambda2_decay(30, 2, 25, dynamic=False, runs=3, rng=rng)
        dynamic = simulate_lambda2_decay(30, 2, 25, dynamic=True, runs=3, rng=rng)
        assert dynamic.mean[-1] < static.mean[-1] / 10

    def test_dynamic_variance_negligible(self, rng):
        """Figure 10: 'the standard deviation is negligible in the
        dynamic case'."""
        dynamic = simulate_lambda2_decay(30, 2, 20, dynamic=True, runs=5, rng=rng)
        tail_mean = dynamic.mean[-1]
        tail_std = dynamic.std[-1]
        assert tail_std < max(tail_mean, 1e-12) * 2

    def test_larger_k_decays_faster(self, rng):
        k2 = simulate_lambda2_decay(30, 2, 10, dynamic=False, runs=3, rng=rng)
        k10 = simulate_lambda2_decay(30, 10, 10, dynamic=False, runs=3, rng=rng)
        assert k10.mean[-1] < k2.mean[-1]

    def test_floor_applied(self, rng):
        result = simulate_lambda2_decay(
            20, 10, 60, dynamic=True, runs=1, rng=rng, floor=1e-13
        )
        assert result.values.min() >= 1e-13

    def test_peerswap_mode_also_decays(self, rng):
        result = simulate_lambda2_decay(
            16, 2, 15, dynamic=True, runs=2, rng=rng, mode="peerswap"
        )
        assert result.mean[-1] < result.mean[0]

    def test_rejects_unknown_mode(self, rng):
        with pytest.raises(ValueError):
            simulate_lambda2_decay(10, 2, 5, dynamic=True, mode="chaos", rng=rng)


class TestConsensusSimulation:
    def test_distances_decrease(self, rng):
        dist = simulate_consensus(20, 4, 30, dynamic=False, rng=rng)
        assert dist[-1] < dist[0]

    def test_dynamic_converges_faster(self, rng):
        static = simulate_consensus(30, 2, 30, dynamic=False, rng=rng)
        dynamic = simulate_consensus(30, 2, 30, dynamic=True, rng=rng)
        assert dynamic[-1] < static[-1]

    def test_consensus_distance_zero_at_consensus(self):
        assert consensus_distance(np.full(10, 3.3)) == pytest.approx(0.0)


class TestMixingTime:
    def test_dynamic_shorter_than_static(self, rng):
        from repro.graph import mixing_time

        static = mixing_time(30, 2, epsilon=0.1, dynamic=False, runs=2,
                             max_iterations=500, rng=rng)
        dynamic = mixing_time(30, 2, epsilon=0.1, dynamic=True, runs=2,
                              max_iterations=500, rng=rng)
        assert dynamic < static

    def test_unreachable_returns_inf(self, rng):
        from repro.graph import mixing_time

        out = mixing_time(30, 2, epsilon=1e-12, dynamic=False, runs=1,
                          max_iterations=3, rng=rng)
        assert out == float("inf")

    def test_rejects_bad_epsilon(self, rng):
        from repro.graph import mixing_time

        import pytest

        with pytest.raises(ValueError):
            mixing_time(10, 2, epsilon=0.0, dynamic=False, rng=rng)

    def test_denser_graph_mixes_sooner(self, rng):
        from repro.graph import mixing_time

        k2 = mixing_time(24, 2, epsilon=0.05, dynamic=True, runs=2,
                         max_iterations=300, rng=rng)
        k8 = mixing_time(24, 8, epsilon=0.05, dynamic=True, runs=2,
                         max_iterations=300, rng=rng)
        assert k8 <= k2
