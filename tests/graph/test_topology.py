"""Tests for k-regular graph construction and validation."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import (
    graph_from_views,
    is_connected,
    random_regular_graph,
    validate_k_regular,
    views_from_graph,
)


class TestRandomRegular:
    @pytest.mark.parametrize("n,k", [(10, 2), (20, 5), (30, 3)])
    def test_degrees(self, n, k, rng):
        graph = random_regular_graph(n, k, rng)
        assert all(deg == k for _, deg in graph.degree())

    def test_connected_by_default(self, rng):
        for _ in range(5):
            graph = random_regular_graph(20, 2, rng)
            assert nx.is_connected(graph)

    def test_rejects_k_ge_n(self, rng):
        with pytest.raises(ValueError):
            random_regular_graph(5, 5, rng)

    def test_rejects_odd_nk(self, rng):
        with pytest.raises(ValueError):
            random_regular_graph(5, 3, rng)

    def test_rejects_nonpositive(self, rng):
        with pytest.raises(ValueError):
            random_regular_graph(0, 2, rng)

    def test_paper_configurations_feasible(self, rng):
        """All (n=150, k in {2,5,10,25}) pairs of the paper sample fine."""
        for k in (2, 5, 10, 25):
            graph = random_regular_graph(150, k, rng)
            assert graph.number_of_nodes() == 150


class TestViewsConversion:
    def test_roundtrip(self, rng):
        graph = random_regular_graph(16, 4, rng)
        views = views_from_graph(graph)
        back = graph_from_views(views)
        assert set(back.edges) == set(graph.edges)

    def test_views_are_symmetric(self, rng):
        views = views_from_graph(random_regular_graph(12, 3, rng))
        for i, view in enumerate(views):
            for j in view:
                assert i in views[j]

    def test_graph_from_views_rejects_asymmetry(self):
        with pytest.raises(ValueError):
            graph_from_views([{1}, set()])

    def test_graph_from_views_rejects_self_loop(self):
        with pytest.raises(ValueError):
            graph_from_views([{0}])

    def test_graph_from_views_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            graph_from_views([{5}, {0}])

    def test_validate_k_regular_accepts_regular(self, rng):
        views = views_from_graph(random_regular_graph(10, 4, rng))
        validate_k_regular(views, 4)

    def test_validate_k_regular_rejects_wrong_degree(self, rng):
        views = views_from_graph(random_regular_graph(10, 4, rng))
        with pytest.raises(ValueError):
            validate_k_regular(views, 3)

    def test_is_connected(self, rng):
        views = views_from_graph(random_regular_graph(10, 2, rng))
        assert is_connected(views)
        # Two disjoint triangles are not connected.
        disjoint = [{1, 2}, {0, 2}, {0, 1}, {4, 5}, {3, 5}, {3, 4}]
        assert not is_connected(disjoint)
