"""Cross-module integration tests.

These exercise the full pipeline and assert system-level invariants
that no single module's unit tests cover: mixing contraction on real
model states, overfitting-leakage coupling, and feature composition
(canaries + DP + dynamics in one run).
"""

import numpy as np
import pytest

from repro import StudyConfig, run_study
from repro.data import make_node_splits, make_synthetic_tabular_dataset
from repro.gossip import (
    GossipSimulator,
    LocalTrainer,
    SimulatorConfig,
    TrainerConfig,
    make_protocol,
)
from repro.nn import build_mlp, get_state
from repro.nn.serialize import state_to_vector


def mixing_only_simulator(protocol_name, seed=0, n_nodes=8):
    """A simulator whose nodes never train (local_epochs=0), with
    distinct initial models — isolates the mixing dynamics."""
    model = build_mlp(12, 3, hidden=(6,), rng=np.random.default_rng(0))
    trainer = LocalTrainer(
        model,
        TrainerConfig(learning_rate=0.05, local_epochs=0, batch_size=8),
    )
    train, _ = make_synthetic_tabular_dataset(
        "t", 200, 20, num_features=12, num_classes=3, seed=seed
    )
    splits = make_node_splits(train, n_nodes, train_per_node=8,
                              test_per_node=4, seed=seed)
    sim = GossipSimulator(
        SimulatorConfig(
            n_nodes=n_nodes, view_size=2, ticks_per_round=20,
            wake_mu=20, wake_sigma=2, seed=seed,
        ),
        make_protocol(protocol_name, trainer),
        splits,
        get_state(model),
    )
    # Give every node a distinct model so mixing is observable.
    rng = np.random.default_rng(seed + 99)
    for node in sim.nodes:
        for arr in node.state.values():
            arr += rng.normal(0, 1.0, size=arr.shape)
    return sim


class TestPureMixing:
    @pytest.mark.parametrize("protocol", ["samo", "base_gossip"])
    def test_models_contract_toward_consensus(self, protocol):
        sim = mixing_only_simulator(protocol)
        vecs = np.stack([state_to_vector(s) for s in sim.states()])
        spread_before = np.linalg.norm(vecs - vecs.mean(axis=0), axis=1).mean()
        sim.run(rounds=6)
        vecs = np.stack([state_to_vector(s) for s in sim.states()])
        spread_after = np.linalg.norm(vecs - vecs.mean(axis=0), axis=1).mean()
        assert spread_after < spread_before * 0.7

    @pytest.mark.parametrize("protocol", ["samo", "base_gossip"])
    def test_states_stay_in_convex_hull(self, protocol):
        """Averaging can never leave the coordinate-wise convex hull of
        the initial models — a safety property of both protocols."""
        sim = mixing_only_simulator(protocol)
        vecs = np.stack([state_to_vector(s) for s in sim.states()])
        lo, hi = vecs.min(axis=0), vecs.max(axis=0)
        sim.run(rounds=4)
        after = np.stack([state_to_vector(s) for s in sim.states()])
        assert np.all(after >= lo - 1e-9)
        assert np.all(after <= hi + 1e-9)

    def test_samo_contracts_faster_than_base(self):
        """SAMO's merge-many + send-all mixes faster per round."""
        def final_spread(protocol):
            sim = mixing_only_simulator(protocol, seed=1)
            sim.run(rounds=4)
            vecs = np.stack([state_to_vector(s) for s in sim.states()])
            return np.linalg.norm(vecs - vecs.mean(axis=0), axis=1).mean()

        assert final_spread("samo") < final_spread("base_gossip")


class TestOverfittingLeakageCoupling:
    def test_more_local_epochs_more_leakage(self):
        """Overfitting drives MIA: more local epochs on the same data
        yield a more vulnerable system."""
        def run(epochs):
            return run_study(
                StudyConfig(
                    name=f"epochs{epochs}",
                    dataset="purchase100",
                    n_train=600, n_test=150, num_features=64,
                    n_nodes=6, view_size=2, protocol="samo", rounds=3,
                    train_per_node=24, test_per_node=12,
                    mlp_hidden=(64, 32), local_epochs=epochs, batch_size=12,
                    seed=7,
                )
            )

        light = run(1)
        heavy = run(5)
        assert heavy.max_mia_accuracy > light.max_mia_accuracy
        assert (
            heavy.rounds[-1].generalization_error
            > light.rounds[-1].generalization_error - 0.02
        )


class TestFeatureComposition:
    def test_canaries_dp_dynamics_compose(self):
        """All features on at once: non-iid + canaries + DP + PeerSwap."""
        result = run_study(
            StudyConfig(
                name="kitchen-sink",
                dataset="purchase100",
                n_train=600, n_test=150, num_features=64,
                n_nodes=6, view_size=2, protocol="samo", rounds=2,
                dynamic=True, beta=0.5, dp_epsilon=50.0, n_canaries=12,
                train_per_node=24, test_per_node=12,
                mlp_hidden=(32, 16), local_epochs=1, batch_size=12,
                label_smoothing=0.05, lr_decay=0.9,
                seed=11,
            )
        )
        assert len(result.rounds) == 2
        final = result.rounds[-1]
        assert final.epsilon is not None and final.epsilon <= 50.0 * 1.01
        assert final.canary_tpr_at_1_fpr is not None
        assert result.metadata["sampler"] == "peerswap"

    def test_failure_injection_composes_with_protocols(self):
        for protocol in ("samo", "base_gossip", "base_gossip_partial"):
            result = run_study(
                StudyConfig(
                    name=f"faulty-{protocol}",
                    dataset="purchase100",
                    n_train=600, n_test=150, num_features=64,
                    n_nodes=6, view_size=2, protocol=protocol, rounds=2,
                    drop_prob=0.3, failure_prob=0.2,
                    train_per_node=24, test_per_node=12,
                    mlp_hidden=(32, 16), local_epochs=1, batch_size=12,
                    seed=13,
                )
            )
            assert len(result.rounds) == 2
            assert 0.0 <= result.max_mia_accuracy <= 1.0


class TestLatencyMixingCoupling:
    def test_latency_slows_consensus_in_full_study(self):
        """Network latency delays mixing, so after few rounds the
        delayed system's model spread is at least the instant one's."""
        def spread(delay):
            result = run_study(
                StudyConfig(
                    name=f"latency{delay}",
                    dataset="purchase100",
                    n_train=600, n_test=150, num_features=64,
                    n_nodes=6, view_size=2, protocol="samo", rounds=3,
                    delay_ticks=delay,
                    train_per_node=24, test_per_node=12,
                    mlp_hidden=(32, 16), local_epochs=1, batch_size=12,
                    seed=17,
                )
            )
            return result.rounds[-1].model_spread

        assert spread(60) >= spread(0) * 0.9
