"""Tests for i.i.d. and Dirichlet partitioning, with hypothesis
property tests on conservation invariants."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data import (
    NodeSplit,
    dirichlet_partition,
    iid_partition,
    label_distribution,
    make_node_splits,
    make_synthetic_tabular_dataset,
)


def small_dataset(n=200, classes=4, seed=0):
    train, _ = make_synthetic_tabular_dataset(
        "t", n, 10, num_features=16, num_classes=classes, seed=seed
    )
    return train


class TestIIDPartition:
    def test_covers_all_samples_without_duplicates(self, rng):
        parts = iid_partition(100, 7, rng)
        merged = np.concatenate(parts)
        assert merged.size == 100
        assert np.unique(merged).size == 100

    def test_sizes_near_equal(self, rng):
        parts = iid_partition(100, 7, rng)
        sizes = [p.size for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_more_nodes_than_samples(self, rng):
        with pytest.raises(ValueError):
            iid_partition(3, 5, rng)

    def test_rejects_nonpositive_nodes(self, rng):
        with pytest.raises(ValueError):
            iid_partition(10, 0, rng)

    @given(
        n_samples=st.integers(10, 300),
        n_nodes=st.integers(1, 10),
        seed=st.integers(0, 100),
    )
    def test_property_partition_is_exact_cover(self, n_samples, n_nodes, seed):
        if n_samples < n_nodes:
            return
        rng = np.random.default_rng(seed)
        parts = iid_partition(n_samples, n_nodes, rng)
        merged = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(merged, np.arange(n_samples))


class TestDirichletPartition:
    def test_covers_all_samples(self, rng):
        labels = np.repeat(np.arange(4), 50)
        parts = dirichlet_partition(labels, 5, beta=0.5, rng=rng)
        merged = np.concatenate(parts)
        assert np.unique(merged).size == 200

    def test_low_beta_gives_more_skew_than_high(self):
        labels = np.repeat(np.arange(10), 100)

        def mean_skew(beta, seed):
            rng = np.random.default_rng(seed)
            parts = dirichlet_partition(labels, 8, beta=beta, rng=rng)
            skews = []
            for part in parts:
                dist = np.bincount(labels[part], minlength=10) / max(part.size, 1)
                skews.append(dist.max())
            return np.mean(skews)

        low = np.mean([mean_skew(0.1, s) for s in range(5)])
        high = np.mean([mean_skew(100.0, s) for s in range(5)])
        assert low > high

    def test_high_beta_approaches_iid(self):
        labels = np.repeat(np.arange(4), 100)
        rng = np.random.default_rng(0)
        parts = dirichlet_partition(labels, 4, beta=1000.0, rng=rng)
        for part in parts:
            dist = np.bincount(labels[part], minlength=4) / part.size
            np.testing.assert_allclose(dist, 0.25, atol=0.1)

    def test_min_per_node_enforced(self, rng):
        labels = np.repeat(np.arange(2), 100)
        parts = dirichlet_partition(labels, 4, beta=0.1, rng=rng, min_per_node=3)
        assert min(p.size for p in parts) >= 3

    def test_rejects_nonpositive_beta(self, rng):
        with pytest.raises(ValueError):
            dirichlet_partition(np.zeros(10, dtype=int), 2, beta=0.0, rng=rng)

    @given(beta=st.floats(0.05, 10.0), seed=st.integers(0, 50))
    def test_property_no_duplicates(self, beta, seed):
        labels = np.repeat(np.arange(5), 40)
        rng = np.random.default_rng(seed)
        parts = dirichlet_partition(labels, 4, beta=beta, rng=rng, min_per_node=1)
        merged = np.concatenate(parts)
        assert np.unique(merged).size == merged.size == 200


class TestNodeSplits:
    def test_train_test_disjoint_per_node(self):
        splits = make_node_splits(small_dataset(), 5, seed=0)
        for split in splits:
            assert np.intersect1d(split.train.indices, split.test.indices).size == 0

    def test_train_shares_disjoint_across_nodes(self):
        splits = make_node_splits(small_dataset(), 5, seed=0)
        seen = set()
        for split in splits:
            mine = set(split.train.indices.tolist())
            assert not (mine & seen)
            seen |= mine

    def test_train_per_node_cap(self):
        splits = make_node_splits(small_dataset(), 4, train_per_node=10, seed=0)
        assert all(len(s.train) == 10 for s in splits)

    def test_test_per_node_cap(self):
        splits = make_node_splits(
            small_dataset(), 4, train_per_node=10, test_per_node=7, seed=0
        )
        assert all(len(s.test) == 7 for s in splits)

    def test_dirichlet_splits(self):
        splits = make_node_splits(small_dataset(400, 8), 4, beta=0.2, seed=1)
        assert len(splits) == 4
        for split in splits:
            assert len(split.train) >= 2

    def test_node_split_rejects_overlap(self):
        ds = small_dataset()
        with pytest.raises(ValueError):
            NodeSplit(0, ds.subset(np.array([0, 1])), ds.subset(np.array([1, 2])))

    def test_deterministic_given_seed(self):
        a = make_node_splits(small_dataset(), 4, seed=9)
        b = make_node_splits(small_dataset(), 4, seed=9)
        for sa, sb in zip(a, b):
            np.testing.assert_array_equal(sa.train.indices, sb.train.indices)
            np.testing.assert_array_equal(sa.test.indices, sb.test.indices)

    def test_raises_when_not_enough_for_tests(self):
        ds = small_dataset(40)
        with pytest.raises(ValueError):
            # All 40 samples consumed by training; tests cannot be disjoint
            # from everything *and* sized 20.
            make_node_splits(ds, 2, train_per_node=20, test_per_node=30, seed=0)


class TestLabelDistribution:
    def test_sums_to_one(self):
        ds = small_dataset()
        splits = make_node_splits(ds, 4, seed=0)
        dist = label_distribution(splits[0].train)
        assert dist.sum() == pytest.approx(1.0)

    def test_reflects_skew(self):
        ds = small_dataset(400, classes=4, seed=2)
        splits = make_node_splits(ds, 4, beta=0.05, seed=3)
        maxes = [label_distribution(s.train).max() for s in splits]
        assert np.mean(maxes) > 0.5  # strong label imbalance
