"""Tests for synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import (
    DATASET_BUILDERS,
    Dataset,
    make_cifar10_like,
    make_cifar100_like,
    make_dataset,
    make_fashion_mnist_like,
    make_purchase100_like,
    make_synthetic_image_dataset,
    make_synthetic_tabular_dataset,
)


class TestDatasetContainer:
    def test_len_and_shape(self, rng):
        ds = Dataset("d", rng.normal(size=(10, 3)), rng.integers(0, 2, 10), 2)
        assert len(ds) == 10
        assert ds.input_shape == (3,)

    def test_rejects_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            Dataset("d", rng.normal(size=(10, 3)), np.zeros(9, dtype=int), 2)

    def test_rejects_out_of_range_labels(self, rng):
        with pytest.raises(ValueError):
            Dataset("d", rng.normal(size=(3, 2)), np.array([0, 1, 5]), 2)

    def test_subset_view(self, rng):
        ds = Dataset("d", rng.normal(size=(10, 3)), rng.integers(0, 2, 10), 2)
        sub = ds.subset(np.array([1, 3, 5]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.x, ds.x[[1, 3, 5]])
        np.testing.assert_array_equal(sub.y, ds.y[[1, 3, 5]])

    def test_subset_rejects_bad_indices(self, rng):
        ds = Dataset("d", rng.normal(size=(5, 2)), np.zeros(5, dtype=int), 2)
        with pytest.raises(IndexError):
            ds.subset(np.array([10]))


class TestImageGenerator:
    def test_shapes(self):
        train, test = make_synthetic_image_dataset(
            "x", 100, 40, image_size=8, channels=3, num_classes=5, seed=0
        )
        assert train.x.shape == (100, 3, 8, 8)
        assert test.x.shape == (40, 3, 8, 8)
        assert train.num_classes == 5

    def test_labels_roughly_balanced(self):
        train, _ = make_synthetic_image_dataset(
            "x", 500, 10, image_size=8, num_classes=10, seed=0
        )
        counts = np.bincount(train.y, minlength=10)
        assert counts.min() >= 30

    def test_deterministic_given_seed(self):
        a, _ = make_synthetic_image_dataset("x", 20, 5, image_size=8, seed=7)
        b, _ = make_synthetic_image_dataset("x", 20, 5, image_size=8, seed=7)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_different_seeds_differ(self):
        a, _ = make_synthetic_image_dataset("x", 20, 5, image_size=8, seed=1)
        b, _ = make_synthetic_image_dataset("x", 20, 5, image_size=8, seed=2)
        assert not np.array_equal(a.x, b.x)

    def test_classes_are_separable(self):
        """Nearest-prototype structure: same-class samples are closer on
        average than cross-class samples."""
        train, _ = make_synthetic_image_dataset(
            "x", 200, 10, image_size=8, num_classes=4,
            prototypes_per_class=1, noise_std=0.2, seed=0
        )
        flat = train.x.reshape(len(train), -1)
        within, across = [], []
        for i in range(0, 100, 5):
            for j in range(i + 1, 100, 7):
                d = np.linalg.norm(flat[i] - flat[j])
                (within if train.y[i] == train.y[j] else across).append(d)
        assert np.mean(within) < np.mean(across)

    def test_label_noise_flips_labels(self):
        clean, _ = make_synthetic_image_dataset(
            "x", 300, 10, image_size=8, num_classes=10, label_noise=0.0, seed=3
        )
        noisy, _ = make_synthetic_image_dataset(
            "x", 300, 10, image_size=8, num_classes=10, label_noise=0.5, seed=3
        )
        assert (clean.y != noisy.y).mean() > 0.2


class TestTabularGenerator:
    def test_binary_features(self):
        train, _ = make_synthetic_tabular_dataset(
            "p", 50, 10, num_features=32, num_classes=5, seed=0
        )
        assert set(np.unique(train.x)) <= {0.0, 1.0}
        assert train.x.shape == (50, 32)

    def test_flip_prob_controls_noise(self):
        low, _ = make_synthetic_tabular_dataset(
            "p", 100, 10, num_features=64, num_classes=2, flip_prob=0.01, seed=0
        )
        high, _ = make_synthetic_tabular_dataset(
            "p", 100, 10, num_features=64, num_classes=2, flip_prob=0.45, seed=0
        )

        def within_class_var(ds):
            mask = ds.y == ds.y[0]
            return ds.x[mask].var(axis=0).mean()

        assert within_class_var(low) < within_class_var(high)


class TestNamedBuilders:
    @pytest.mark.parametrize("name", sorted(DATASET_BUILDERS))
    def test_all_builders_run(self, name):
        kwargs = (
            {"image_size": 8}
            if name != "purchase100"
            else {"num_features": 32}
        )
        train, test = make_dataset(name, n_train=40, n_test=20, seed=0, **kwargs)
        assert len(train) == 40
        assert len(test) == 20
        assert train.num_classes == test.num_classes

    def test_cifar10_spec(self):
        train, _ = make_cifar10_like(n_train=30, n_test=10, image_size=8)
        assert train.num_classes == 10
        assert train.x.shape[1] == 3

    def test_cifar100_spec(self):
        train, _ = make_cifar100_like(n_train=200, n_test=10, image_size=8)
        assert train.num_classes == 100

    def test_fashion_mnist_spec(self):
        train, _ = make_fashion_mnist_like(n_train=30, n_test=10, image_size=8)
        assert train.x.shape[1] == 1  # grayscale

    def test_purchase100_spec(self):
        train, _ = make_purchase100_like(n_train=200, n_test=10, num_features=64)
        assert train.num_classes == 100
        assert train.x.shape == (200, 64)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_dataset("imagenet", 10, 10)
