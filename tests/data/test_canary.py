"""Tests for canary construction and injection (RQ3 infrastructure)."""

import numpy as np
import pytest

from repro.data import (
    make_canaries,
    inject_canaries,
    make_node_splits,
    make_synthetic_tabular_dataset,
)


def setup(n=300, classes=5, n_nodes=4, n_canaries=20, seed=0):
    train, _ = make_synthetic_tabular_dataset(
        "t", n, 20, num_features=16, num_classes=classes, seed=seed
    )
    rng = np.random.default_rng(seed)
    splits = make_node_splits(train, n_nodes, train_per_node=30, test_per_node=15,
                              seed=seed)
    canaries = make_canaries(train, n_canaries, n_nodes, rng)
    return train, splits, canaries


class TestMakeCanaries:
    def test_labels_flipped_in_place(self):
        train, _, canaries = setup()
        for idx in canaries.all_indices:
            idx = int(idx)
            assert train.y[idx] == canaries.flipped_labels[idx]
            assert canaries.flipped_labels[idx] != canaries.original_labels[idx]

    def test_member_holdout_split_roughly_even(self):
        _, _, canaries = setup(n_canaries=20)
        assert canaries.member_indices.size == 10
        assert canaries.holdout_indices.size == 10

    def test_member_and_holdout_disjoint(self):
        _, _, canaries = setup()
        overlap = np.intersect1d(canaries.member_indices, canaries.holdout_indices)
        assert overlap.size == 0

    def test_round_robin_node_assignment_is_even(self):
        _, _, canaries = setup(n_nodes=4, n_canaries=40)
        counts = np.bincount(
            [canaries.node_of[int(i)] for i in canaries.member_indices], minlength=4
        )
        assert counts.max() - counts.min() <= 1

    def test_rejects_too_few(self):
        train, _, _ = setup()
        with pytest.raises(ValueError):
            make_canaries(train, 1, 4, np.random.default_rng(0))

    def test_rejects_too_many(self):
        train, _, _ = setup(n=50)
        with pytest.raises(ValueError):
            make_canaries(train, 100, 4, np.random.default_rng(0))

    def test_for_node_accessors(self):
        _, _, canaries = setup(n_nodes=3, n_canaries=12)
        all_members = np.concatenate(
            [canaries.members_for_node(i) for i in range(3)]
        )
        np.testing.assert_array_equal(
            np.sort(all_members), canaries.member_indices
        )


class TestInjectCanaries:
    def test_members_land_in_their_nodes_train_set(self):
        _, splits, canaries = setup()
        injected = inject_canaries(splits, canaries)
        for split in injected:
            mine = canaries.members_for_node(split.node_id)
            assert np.isin(mine, split.train.indices).all()

    def test_member_canaries_not_in_other_nodes(self):
        _, splits, canaries = setup()
        injected = inject_canaries(splits, canaries)
        for split in injected:
            others = np.setdiff1d(
                canaries.member_indices, canaries.members_for_node(split.node_id)
            )
            assert not np.isin(others, split.train.indices).any()

    def test_holdouts_in_no_train_set(self):
        _, splits, canaries = setup()
        injected = inject_canaries(splits, canaries)
        for split in injected:
            assert not np.isin(canaries.holdout_indices, split.train.indices).any()

    def test_no_canary_in_any_test_set(self):
        _, splits, canaries = setup()
        injected = inject_canaries(splits, canaries)
        for split in injected:
            assert not np.isin(canaries.all_indices, split.test.indices).any()

    def test_train_test_still_disjoint(self):
        _, splits, canaries = setup()
        for split in inject_canaries(splits, canaries):
            overlap = np.intersect1d(split.train.indices, split.test.indices)
            assert overlap.size == 0
