"""Contract tests for the telemetry core (tracer + metrics).

These pin the library's own guarantees: span nesting and export
format, fixed label sets, bounded cardinality, the delta/merge
round trip that ships shard-worker metrics across a pipe, and the
null objects' no-op behavior.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.telemetry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    NULL_TELEMETRY,
    NULL_TRACER,
    OVERFLOW_LABEL,
    NullRegistry,
    NullTracer,
    Registry,
    Telemetry,
    Tracer,
)


# -- tracer -------------------------------------------------------------


class TestTracer:
    def test_nested_spans_link_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        spans = tracer.spans()
        assert [s.name for s in spans] == ["inner", "outer"]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == ""

    def test_trace_id_stamps_every_span(self):
        tracer = Tracer()
        tracer.set_trace_id("req-42")
        with tracer.span("a"):
            pass
        assert tracer.spans()[0].trace_id == "req-42"

    def test_trace_id_is_per_thread(self):
        tracer = Tracer()
        tracer.set_trace_id("main")
        seen = {}

        def worker():
            tracer.set_trace_id("worker")
            with tracer.span("w"):
                pass
            seen["trace"] = tracer.trace_id

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["trace"] == "worker"
        assert tracer.trace_id == "main"

    def test_attributes_and_error_marking(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("risky", kind="test"):
                raise ValueError("boom")
        span = tracer.spans()[0]
        assert span.attributes["kind"] == "test"
        assert span.attributes["error"] == "ValueError"

    def test_event_is_a_zero_duration_span(self):
        tracer = Tracer()
        tracer.event("early_stop", round=3)
        span = tracer.spans()[0]
        assert span.name == "early_stop"
        assert span.attributes == {"round": 3}
        assert span.duration_ms() < 50.0

    def test_bounded_buffer_keeps_oldest_and_counts_drops(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            tracer.event("e", i=i)
        spans = tracer.spans()
        assert [s.attributes["i"] for s in spans] == [0, 1, 2]
        assert tracer.dropped == 2

    def test_abandoned_inner_span_does_not_corrupt_stack(self):
        # A generator abandoned mid-span ends the outer span while the
        # inner one is still on the stack; end_span pops through it.
        tracer = Tracer()
        outer = tracer.start_span("outer")
        tracer.start_span("inner")
        tracer.end_span(outer)
        with tracer.span("after") as after:
            pass
        assert after.parent_id == ""

    def test_export_and_jsonl_dump_are_parseable(self, tmp_path):
        tracer = Tracer()
        tracer.set_trace_id("t1")
        with tracer.span("outer", run="x"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "spans.jsonl"
        assert tracer.dump_jsonl(path) == 2
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert {r["name"] for r in records} == {"outer", "inner"}
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        for record in records:
            assert record["trace_id"] == "t1"
            assert record["start_ms"] >= 0.0
            assert record["duration_ms"] >= 0.0

    def test_reset_clears_buffer(self):
        tracer = Tracer()
        tracer.event("a")
        tracer.reset()
        assert tracer.spans() == []
        assert tracer.dropped == 0


# -- counters -----------------------------------------------------------


class TestCounter:
    def test_inc_value_and_render(self):
        reg = Registry()
        counter = reg.counter("hits_total", "hits", labels=("kind",))
        counter.inc(kind="a")
        counter.inc(2, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3.0
        text = reg.render()
        assert '# TYPE hits_total counter' in text
        assert 'hits_total{kind="a"} 3' in text
        assert 'hits_total{kind="b"} 1' in text
        assert text.endswith("\n")

    def test_label_set_is_fixed(self):
        counter = Registry().counter("c_total", labels=("kind",))
        with pytest.raises(ValueError):
            counter.inc()  # missing label
        with pytest.raises(ValueError):
            counter.inc(kind="a", extra="x")  # unknown label

    def test_bounded_cardinality_collapses_to_other(self):
        counter = Registry().counter("c_total", labels=("k",), max_series=2)
        counter.inc(k="a")
        counter.inc(k="b")
        counter.inc(k="c")  # over budget -> "other"
        counter.inc(k="d")
        assert counter.value(k="a") == 1.0
        assert counter.value(k=OVERFLOW_LABEL) == 2.0
        assert len(counter.series()) <= 3  # 2 real + overflow

    def test_child_pre_resolves_the_series(self):
        counter = Registry().counter("c_total", labels=("k",))
        bound = counter.child(k="x")
        bound.inc()
        bound.inc(4)
        assert counter.value(k="x") == 5.0


# -- histograms ---------------------------------------------------------


class TestHistogram:
    def test_observe_count_sum_and_buckets(self):
        reg = Registry()
        hist = reg.histogram("lat_ms", "latency", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(50.0)
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(55.5)
        text = reg.render()
        assert 'lat_ms_bucket{le="1"} 1' in text
        assert 'lat_ms_bucket{le="10"} 2' in text  # cumulative
        assert 'lat_ms_bucket{le="+Inf"} 3' in text
        assert "lat_ms_sum 55.5" in text
        assert "lat_ms_count 3" in text

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Registry().histogram("h", buckets=())
        with pytest.raises(ValueError):
            Registry().histogram("h", buckets=(5.0, 1.0))

    def test_labels_and_children(self):
        hist = Registry().histogram("h_ms", labels=("phase",))
        hist.child(phase="train").observe(3.0)
        hist.observe(7.0, phase="train")
        assert hist.count(phase="train") == 2
        assert hist.sum(phase="train") == pytest.approx(10.0)


# -- registry -----------------------------------------------------------


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = Registry()
        a = reg.counter("c_total", labels=("k",))
        b = reg.counter("c_total", labels=("k",))
        assert a is b

    def test_redeclare_with_different_shape_raises(self):
        reg = Registry()
        reg.counter("m", labels=("k",))
        with pytest.raises(ValueError):
            reg.histogram("m", labels=("k",))
        with pytest.raises(ValueError):
            reg.counter("m", labels=("other",))

    def test_empty_registry_renders_empty(self):
        assert Registry().render() == ""

    def test_snapshot_is_json_ready(self):
        reg = Registry()
        reg.counter("c_total", labels=("k",)).inc(k="a")
        reg.histogram("h_ms").observe(2.0)
        snap = reg.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["c_total"]["kind"] == "counter"
        assert snap["h_ms"]["series"][0]["count"] == 1

    def test_collect_delta_merge_delta_round_trip(self):
        # The shard-worker pattern: record locally, drain, ship, merge.
        worker = Registry()
        worker.counter("tasks_total", labels=("shard",)).inc(3, shard="0")
        worker.histogram("train_ms", labels=("shard",)).observe(7.0, shard="0")
        delta = worker.collect_delta()
        # Drained: a second collect is empty, definitions survive.
        assert worker.collect_delta() == {}
        assert worker.get("tasks_total") is not None

        parent = Registry()
        parent.merge_delta(delta)
        parent.merge_delta({"tasks_total": delta["tasks_total"]})
        assert parent.get("tasks_total").value(shard="0") == 6.0
        assert parent.get("train_ms").count(shard="0") == 1
        assert parent.get("train_ms").sum(shard="0") == pytest.approx(7.0)

    def test_delta_is_picklable(self):
        import pickle

        reg = Registry()
        reg.counter("c_total", labels=("k",)).inc(k="a")
        reg.histogram("h_ms").observe(1.0)
        delta = reg.collect_delta()
        assert pickle.loads(pickle.dumps(delta)) == delta


# -- telemetry bundle + null objects ------------------------------------


class TestTelemetry:
    def test_enabled_bundle_has_live_parts(self):
        tel = Telemetry()
        assert tel.enabled
        assert isinstance(tel.tracer, Tracer)
        assert isinstance(tel.registry, Registry)
        assert tel.annotate_results

    def test_annotate_results_off(self):
        tel = Telemetry(enabled=True, annotate_results=False)
        assert tel.enabled and not tel.annotate_results

    def test_disabled_bundle_is_the_shared_null(self):
        assert Telemetry.disabled() is NULL_TELEMETRY
        assert not NULL_TELEMETRY.enabled
        assert not NULL_TELEMETRY.annotate_results
        assert isinstance(NULL_TELEMETRY.tracer, NullTracer)
        assert isinstance(NULL_TELEMETRY.registry, NullRegistry)

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", k=1) as span:
            assert span is None
        NULL_TRACER.set_trace_id("x")
        NULL_TRACER.event("e")
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.export() == []
        assert NULL_TRACER.dropped == 0

    def test_null_registry_is_inert(self):
        counter = NULL_REGISTRY.counter("c_total", labels=("k",))
        counter.inc(k="whatever", bogus="ignored")
        hist = NULL_REGISTRY.histogram("h_ms")
        hist.observe(1.0)
        hist.child().observe(2.0)
        assert NULL_REGISTRY.render() == ""
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.collect_delta() == {}
