"""Telemetry must be invisible to the computation.

The one hard rule of the subsystem: enabling tracing + metrics may
never change a result — no RNG draw, no arena mutation, no config
identity. These tests pin bit-identical round records with telemetry
on vs off across the serial, batched and sharded executors (float64),
while also asserting that the instrumented run actually recorded
something (a no-op "instrumentation" would pass vacuously).
"""

from __future__ import annotations

import pytest

from repro.core.study import StudyConfig, run_study
from repro.telemetry import Telemetry


def _tiny_config(**overrides) -> StudyConfig:
    base = dict(
        name="telemetry-determinism",
        dataset="purchase100",
        n_train=160,
        n_test=64,
        num_features=24,
        mlp_hidden=(16,),
        n_nodes=4,
        train_per_node=12,
        test_per_node=6,
        rounds=2,
        ticks_per_round=40,
        arena_dtype="float64",
        seed=7,
    )
    base.update(overrides)
    return StudyConfig(**base)


def _round_jsons(result) -> list[str]:
    return [record.to_json() for record in result.rounds]


@pytest.mark.parametrize(
    "executor_overrides",
    [
        {"executor": "serial"},
        {"executor": "batched"},
        {"executor": "sharded", "n_shards": 2},
    ],
    ids=["serial", "batched", "sharded"],
)
def test_round_records_bit_identical_with_telemetry_on(executor_overrides):
    config = _tiny_config(**executor_overrides)
    plain = run_study(config)
    telemetry = Telemetry(enabled=True)
    instrumented = run_study(config, telemetry=telemetry)
    assert _round_jsons(plain) == _round_jsons(instrumented)
    # The instrumented run must have actually recorded: phase
    # histograms with one sample per round per phase, and spans.
    phase = telemetry.registry.get("repro_engine_phase_ms")
    assert phase is not None
    for phase_name in ("deliver", "wake", "train", "observe"):
        assert phase.count(phase=phase_name) == config.rounds
    assert {s.name for s in telemetry.tracer.spans()} >= {
        "study.round",
        "observer.observe",
    }


def test_sharded_run_ships_worker_metric_deltas():
    config = _tiny_config(executor="sharded", n_shards=2, ticks_per_round=80)
    telemetry = Telemetry(enabled=True)
    run_study(config, telemetry=telemetry)
    shard_tasks = telemetry.registry.get("repro_shard_tasks_total")
    assert shard_tasks is not None
    per_shard = shard_tasks.series()
    assert per_shard  # at least one shard trained
    tasks_total = telemetry.registry.get("repro_executor_tasks_total")
    # Every dispatched task trained on exactly one shard.
    assert sum(per_shard.values()) == tasks_total.value(executor="sharded")
    train_ms = telemetry.registry.get("repro_shard_train_ms")
    for (shard,), tasks in per_shard.items():
        # Each shard's timing deltas came back alongside its counts.
        assert train_ms.count(shard=shard) > 0


def test_telemetry_never_changes_config_identity():
    # Telemetry travels by reference, not through the config: the
    # canonical hash (dedup/cache identity) cannot see it.
    config = _tiny_config()
    before = config.config_hash()
    run_study(config, telemetry=Telemetry(enabled=True))
    assert config.config_hash() == before


def test_annotation_only_difference_is_metadata():
    config = _tiny_config(executor="batched")
    plain = run_study(config)
    annotated = run_study(config, telemetry=Telemetry(enabled=True))
    silent = run_study(
        config, telemetry=Telemetry(enabled=True, annotate_results=False)
    )
    # annotate_results=False: byte-identical to an uninstrumented run.
    assert silent.to_json() == plain.to_json()
    # annotate_results=True: same rounds, telemetry only in metadata.
    assert _round_jsons(annotated) == _round_jsons(plain)
    assert "telemetry" in annotated.metadata
    assert "telemetry" not in plain.metadata
    assert len(annotated.metadata["telemetry"]["round_ms"]) == config.rounds
