"""Determinism violations: every det-* rule fires in this module."""

import random
import time
import uuid
from datetime import datetime
from time import perf_counter

import numpy as np


def stamp_round(record):
    record["at"] = time.time()  # det-wall-clock
    record["day"] = datetime.now()  # det-wall-clock
    return record


def time_training(tel):
    start = perf_counter()  # det-perf-counter: no telemetry guard
    jitter = random.random()  # det-random: hidden global state
    noise = np.random.rand(4)  # det-random: numpy legacy global RNG
    rng = np.random.default_rng()  # det-unseeded-rng: OS entropy
    token = uuid.uuid4()  # det-hash-seed: OS entropy
    return start, jitter, noise, rng, token


def mix_neighbors(rng):
    view = {1, 2, 3}
    total = 0.0
    for node in view:  # det-set-iter: hash order feeds the RNG draws
        total += node * rng.normal()
    weights = [node * 0.5 for node in {4, 5}]  # det-set-iter: literal
    return total, weights
