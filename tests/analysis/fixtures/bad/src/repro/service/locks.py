"""Lock-discipline violations: ordering cycle + blocking under a lock."""

import json
import threading


class JobTable:
    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition()
        self._jobs = {}

    def submit(self, job):
        with self._lock:
            with self._cond:  # acquires _cond while holding _lock...
                self._jobs[job.id] = job

    def drain(self):
        with self._cond:
            with self._lock:  # lock-order-cycle: ...and vice versa here
                return list(self._jobs)

    def checkpoint(self, path):
        with self._lock:
            # lock-blocking-call: file I/O inside the critical section
            with open(path, "w") as fh:
                json.dump(self._jobs, fh)

    def finish(self, job):
        with self._lock:
            self._jobs.pop(job.id, None)
            self._journal.record(job)  # lock-blocking-call: journal write
            job.on_done()  # lock-blocking-call: user callback
