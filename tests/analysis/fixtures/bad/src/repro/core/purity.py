"""Purity violations: mutable defaults, non-JSON config fields,
telemetry objects riding inside configs and task payloads."""

from dataclasses import dataclass
from typing import Callable

from repro.telemetry import Telemetry


@dataclass
class SweepConfig:
    name: str
    rounds: int
    on_round: Callable  # purity-config-field: not JSON-round-trippable


@dataclass
class ShardTask:
    node_id: int
    tel: Telemetry  # purity-telemetry-field: telemetry in a payload


@dataclass
class ProbeConfig:
    label: str
    tracer: "Tracer"  # purity-telemetry-field (string annotation)


def accumulate(value, acc=[]):  # purity-mutable-default
    acc.append(value)
    return acc


def tag(value, seen={}):  # purity-mutable-default
    seen[value] = True
    return seen
