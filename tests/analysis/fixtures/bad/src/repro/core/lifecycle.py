"""Lifecycle violations: close()-owning classes constructed bare."""


class WorkerPool:
    def close(self):
        pass

    def run(self, tasks):
        return list(tasks)


class ShardPool(WorkerPool):
    """Inherits the close() obligation."""


def leak_direct(tasks):
    pool = WorkerPool()  # lifecycle-unmanaged: never closed
    results = pool.run(tasks)
    return len(results)


def leak_subclass(tasks):
    pool = ShardPool()  # lifecycle-unmanaged: inherited close()
    results = pool.run(tasks)
    return len(results)
