"""purity-config-import: the config layer must stay telemetry-free."""

import json

from repro.telemetry import Telemetry  # purity-config-import


def config_hash(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)
