"""The compliant twin of bad/src/repro/gossip/timing.py: the same
shapes written inside the repo's determinism contract."""

from time import perf_counter

import numpy as np


def time_training(tel):
    # perf_counter only under the telemetry-guard idiom: the
    # un-instrumented path provably reads no clocks.
    start = perf_counter() if tel is not None else 0.0
    if tel is not None:
        elapsed = perf_counter() - start
        tel.registry.histogram("round_ms").observe(elapsed * 1000.0)
    return start


def time_training_early_return(tel, work):
    if tel is None:
        work()
        return 0.0
    start = perf_counter()  # ok: the early return above dominates
    work()
    return perf_counter() - start


def seeded_generators(seed: int):
    rng = np.random.default_rng(seed)  # ok: derived from the study seed
    child = np.random.default_rng(seed + 1)
    return rng, child


def mix_neighbors(neighbors: set, rng):
    total = 0.0
    for node in sorted(neighbors):  # ok: stable order before RNG draws
        total += rng.normal()
    if 3 in {1, 2, 3}:  # ok: membership tests are order-free
        total += 1.0
    return total
