"""The compliant twin of bad/src/repro/service/locks.py: one global
lock order, blocking work hoisted out of the critical sections."""

import json
import threading


class JobTable:
    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition()
        self._jobs = {}

    def submit(self, job):
        # One global order: _lock before _cond, everywhere.
        with self._lock:
            with self._cond:
                self._jobs[job.id] = job

    def drain(self):
        with self._lock:
            with self._cond:
                return list(self._jobs)

    def wait_for_work(self):
        with self._cond:
            self._cond.wait()  # ok: waiting is why the lock is held

    def checkpoint(self, path):
        with self._lock:
            snapshot = dict(self._jobs)  # copy under the lock...
        with open(path, "w") as fh:  # ...write outside it
            json.dump(snapshot, fh)

    def finish(self, job):
        with self._lock:
            self._jobs.pop(job.id, None)
        self._journal.record(job)  # journal + callback outside the lock
        job.on_done()
