"""The compliant twin of bad/src/repro/core/config.py: no telemetry
import anywhere in the config layer."""

import hashlib
import json


def config_hash(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()
