"""The compliant twin of bad/src/repro/core/lifecycle.py: every
construction visibly discharges (or hands off) the close() obligation."""

import weakref


class WorkerPool:
    def close(self):
        pass

    def run(self, tasks):
        return list(tasks)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def managed_with(tasks):
    with WorkerPool() as pool:  # ok: context manager
        return pool.run(tasks)


def managed_finally(tasks):
    pool = WorkerPool()  # ok: closed in a finally
    try:
        return pool.run(tasks)
    finally:
        pool.close()


def managed_finalizer():
    pool = WorkerPool()  # ok: GC fallback registered
    weakref.finalize(pool, pool.close)
    return None


def factory():
    pool = WorkerPool()  # ok: returned — the caller owns it now
    return pool


class Engine:
    def __init__(self):
        self._pool = WorkerPool()  # ok: stored on an attribute
