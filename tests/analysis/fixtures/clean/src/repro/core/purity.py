"""The compliant twin of bad/src/repro/core/purity.py: JSON-clean
configs, telemetry by reference, None defaults."""

from dataclasses import dataclass, field
from typing import ClassVar, Mapping, Sequence


@dataclass
class NoiseConfig:
    sigma: float = 0.0
    clip: float | None = None


@dataclass
class SweepConfig:
    name: str
    rounds: int
    hidden: tuple[int, ...] = (32, 16)
    labels: Sequence[str] = ()
    extras: Mapping[str, float] | None = None
    noise: NoiseConfig = field(default_factory=NoiseConfig)  # nested group
    SCHEMA: ClassVar[int] = 1  # ok: ClassVar is not a field
    _cache: dict = field(default_factory=dict)  # ok: private, not serialized


@dataclass
class ShardTask:
    node_id: int
    vector_row: int
    seed: int


def accumulate(value, acc=None):  # ok: build inside the function
    if acc is None:
        acc = []
    acc.append(value)
    return acc
