"""Tests for ``tools.reprolint`` — the repo's invariant checker.

The fixture corpus under ``tests/analysis/fixtures/`` holds a ``bad``
tree (every rule violated at least once, under the package paths the
rules scope to) and a ``clean`` twin (the same shapes written inside
the contracts). The driver is pointed at those trees via ``--root``,
which also exercises the path-scoping logic itself.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from tools.reprolint import analyze_source
from tools.reprolint.core import all_rules
from tools.reprolint.driver import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def run_lint(args, capsys):
    """Run the CLI entry point, returning (exit_code, stdout lines)."""
    code = main([str(a) for a in args])
    out = capsys.readouterr().out
    return code, [line for line in out.splitlines() if line]


def finding_pairs(lines):
    """Parse ``path:line rule message`` output into (path, rule) pairs."""
    pairs = []
    for line in lines:
        if line.startswith("reprolint:"):
            continue
        location, rule, _ = line.split(" ", 2)
        pairs.append((location.rsplit(":", 1)[0], rule))
    return pairs


def write(root: Path, rel: str, text: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


class TestFixtureCorpus:
    def test_bad_tree_fires_every_rule_family(self, capsys):
        code, lines = run_lint(
            ["src", "--root", FIXTURES / "bad", "--no-baseline"], capsys
        )
        assert code == 1
        pairs = finding_pairs(lines)
        fired = {rule for _, rule in pairs}
        assert fired == {
            "det-wall-clock",
            "det-perf-counter",
            "det-random",
            "det-unseeded-rng",
            "det-set-iter",
            "det-hash-seed",
            "lock-order-cycle",
            "lock-blocking-call",
            "lifecycle-unmanaged",
            "purity-mutable-default",
            "purity-config-field",
            "purity-telemetry-field",
            "purity-config-import",
        }
        # Findings land in the files that stage them — scoping routes
        # each family to its package.
        by_file = {}
        for path, rule in pairs:
            by_file.setdefault(path, set()).add(rule)
        assert by_file["src/repro/gossip/timing.py"] == {
            "det-wall-clock",
            "det-perf-counter",
            "det-random",
            "det-unseeded-rng",
            "det-set-iter",
            "det-hash-seed",
        }
        assert by_file["src/repro/service/locks.py"] == {
            "lock-order-cycle",
            "lock-blocking-call",
        }
        assert by_file["src/repro/core/lifecycle.py"] == {"lifecycle-unmanaged"}
        assert by_file["src/repro/core/config.py"] == {"purity-config-import"}

    def test_bad_tree_finding_counts(self, capsys):
        """Each staged violation is reported exactly once."""
        _, lines = run_lint(
            ["src", "--root", FIXTURES / "bad", "--no-baseline"], capsys
        )
        pairs = finding_pairs(lines)
        counts = {}
        for _, rule in pairs:
            counts[rule] = counts.get(rule, 0) + 1
        assert counts["det-wall-clock"] == 2  # time.time + datetime.now
        assert counts["det-set-iter"] == 2  # for-loop + comprehension
        assert counts["lock-order-cycle"] == 1  # one cycle, reported once
        assert counts["lock-blocking-call"] == 4  # open/dump/record/callback
        assert counts["lifecycle-unmanaged"] == 2  # direct + subclass
        assert counts["purity-mutable-default"] == 2  # list + dict literal

    def test_clean_tree_is_quiet(self, capsys):
        code, lines = run_lint(
            ["src", "--root", FIXTURES / "clean", "--no-baseline"], capsys
        )
        assert code == 0
        assert lines == [f"reprolint: clean (5 files)"]

    def test_scoped_rules_stay_quiet_outside_their_packages(
        self, tmp_path, capsys
    ):
        """The same violating sources produce nothing when they live
        outside the packages their rules scope to."""
        timing = (FIXTURES / "bad/src/repro/gossip/timing.py").read_text()
        locks = (FIXTURES / "bad/src/repro/service/locks.py").read_text()
        # experiments/ is not a deterministic package; gossip/ is not a
        # lock package.
        write(tmp_path, "src/repro/experiments/timing.py", timing)
        write(tmp_path, "src/repro/gossip/locks.py", locks)
        code, lines = run_lint(
            ["src", "--root", tmp_path, "--no-baseline"], capsys
        )
        assert code == 0
        assert finding_pairs(lines) == []


class TestSuppressions:
    PATH = "src/repro/gossip/mod.py"
    VIOLATION = "import time\n\ndef stamp():\n    return time.time(){comment}\n"

    def test_wellformed_suppression_silences_the_finding(self):
        source = self.VIOLATION.format(
            comment="  # reprolint: allow[det-wall-clock] -- cache TTL wants wall time"
        )
        assert analyze_source(source, self.PATH) == []

    def test_suppression_without_reason_is_itself_a_finding(self):
        source = self.VIOLATION.format(
            comment="  # reprolint: allow[det-wall-clock]"
        )
        rules = {f.rule for f in analyze_source(source, self.PATH)}
        # The malformed directive is flagged AND the original finding
        # survives — an unjustified suppression buys nothing.
        assert rules == {"bad-suppression", "det-wall-clock"}

    def test_suppression_for_a_different_rule_does_not_silence(self):
        source = self.VIOLATION.format(
            comment="  # reprolint: allow[det-random] -- wrong rule"
        )
        rules = {f.rule for f in analyze_source(source, self.PATH)}
        assert "det-wall-clock" in rules

    def test_unclosed_directive_is_flagged(self):
        source = self.VIOLATION.format(
            comment="  # reprolint: allow[det-wall-clock -- missing bracket"
        )
        rules = {f.rule for f in analyze_source(source, self.PATH)}
        assert "bad-suppression" in rules

    def test_one_comment_may_allow_several_rules(self):
        source = (
            "import time, uuid\n\ndef stamp():\n"
            "    return time.time(), uuid.uuid4()"
            "  # reprolint: allow[det-wall-clock, det-hash-seed] -- demo of both\n"
        )
        assert analyze_source(source, self.PATH) == []

    def test_prose_mentioning_the_tool_is_not_a_directive(self):
        source = "# reprolint: the checker described in docs/static-analysis.md\nX = 1\n"
        assert analyze_source(source, self.PATH) == []


class TestBaseline:
    VIOLATING = "import time\n\n\ndef stamp():\n    return time.time()\n"

    def seed_tree(self, root: Path) -> Path:
        return write(root, "src/repro/gossip/clock.py", self.VIOLATING)

    def test_write_baseline_then_clean_run(self, tmp_path, capsys):
        self.seed_tree(tmp_path)
        code, lines = run_lint(
            ["src", "--root", tmp_path, "--baseline", "bl.json",
             "--write-baseline"],
            capsys,
        )
        assert code == 0
        assert (tmp_path / "bl.json").exists()
        assert "wrote 1 finding(s)" in lines[0]
        code, lines = run_lint(
            ["src", "--root", tmp_path, "--baseline", "bl.json"], capsys
        )
        assert code == 0
        assert finding_pairs(lines) == []

    def test_new_violation_not_covered_by_baseline(self, tmp_path, capsys):
        path = self.seed_tree(tmp_path)
        run_lint(
            ["src", "--root", tmp_path, "--baseline", "bl.json",
             "--write-baseline"],
            capsys,
        )
        # A second identical call on a new line exceeds the baselined
        # count budget: exactly one finding resurfaces.
        path.write_text(
            self.VIOLATING + "\n\ndef stamp_again():\n    return time.time()\n"
        )
        code, lines = run_lint(
            ["src", "--root", tmp_path, "--baseline", "bl.json"], capsys
        )
        assert code == 1
        assert finding_pairs(lines) == [
            ("src/repro/gossip/clock.py", "det-wall-clock")
        ]

    def test_no_baseline_flag_reports_baselined_findings(self, tmp_path, capsys):
        self.seed_tree(tmp_path)
        run_lint(
            ["src", "--root", tmp_path, "--baseline", "bl.json",
             "--write-baseline"],
            capsys,
        )
        code, lines = run_lint(
            ["src", "--root", tmp_path, "--baseline", "bl.json",
             "--no-baseline"],
            capsys,
        )
        assert code == 1
        assert finding_pairs(lines) == [
            ("src/repro/gossip/clock.py", "det-wall-clock")
        ]

    def test_missing_baseline_file_means_empty_budget(self, tmp_path, capsys):
        self.seed_tree(tmp_path)
        code, lines = run_lint(
            ["src", "--root", tmp_path, "--baseline", "absent.json"], capsys
        )
        assert code == 1
        assert len(finding_pairs(lines)) == 1


class TestDriverContract:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        write(tmp_path, "src/repro/gossip/ok.py", "X = 1\n")
        code, _ = run_lint(["src", "--root", tmp_path, "--no-baseline"], capsys)
        assert code == 0

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        write(tmp_path, "src/repro/gossip/ok.py", "X = 1\n")
        code, _ = run_lint(
            ["src", "--root", tmp_path, "--no-baseline",
             "--select", "not-a-rule"],
            capsys,
        )
        assert code == 2

    def test_exit_two_on_missing_target(self, tmp_path, capsys):
        code, _ = run_lint(
            ["nonexistent", "--root", tmp_path, "--no-baseline"], capsys
        )
        assert code == 2

    def test_syntax_error_is_a_parse_error_finding(self, tmp_path, capsys):
        write(tmp_path, "src/repro/gossip/broken.py", "def broken(:\n")
        code, lines = run_lint(
            ["src", "--root", tmp_path, "--no-baseline"], capsys
        )
        assert code == 1
        assert finding_pairs(lines) == [
            ("src/repro/gossip/broken.py", "parse-error")
        ]

    def test_select_restricts_to_named_rules(self, capsys):
        code, lines = run_lint(
            ["src", "--root", FIXTURES / "bad", "--no-baseline",
             "--select", "det-wall-clock"],
            capsys,
        )
        assert code == 1
        assert {rule for _, rule in finding_pairs(lines)} == {"det-wall-clock"}

    def test_list_rules_prints_the_catalog(self, capsys):
        code, lines = run_lint(["--list-rules"], capsys)
        assert code == 0
        listed = {line.split()[0] for line in lines}
        assert listed == {rule.name for rule in all_rules()}

    def test_rule_names_are_unique(self):
        names = [rule.name for rule in all_rules()]
        assert len(names) == len(set(names))

    def test_exclude_skips_a_subtree(self, tmp_path, capsys):
        write(
            tmp_path,
            "src/repro/gossip/clock.py",
            "import time\nT = time.time()\n",
        )
        code, _ = run_lint(
            ["src", "--root", tmp_path, "--no-baseline",
             "--exclude", "src/repro/gossip"],
            capsys,
        )
        assert code == 0


class TestRealTree:
    def test_repo_is_clean_under_all_rules(self, capsys):
        """The acceptance criterion: zero unsuppressed findings over
        every tree `make lint` checks."""
        code, lines = run_lint(
            ["src", "tests", "benchmarks", "examples", "tools",
             "--root", REPO_ROOT],
            capsys,
        )
        assert code == 0, "\n".join(lines)
