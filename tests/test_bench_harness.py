"""Regression tests for the benchmark harness helpers.

``benchmarks/conftest.py`` is not an importable package module, so it
is loaded by file path.  The target under test is
``update_bench_json``: its merge-writes must be atomic (tmp + rename)
and must tolerate a corrupt or truncated ``BENCH_engine.json`` left
behind by an interrupted earlier run.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_CONFTEST = Path(__file__).resolve().parent.parent / "benchmarks" / "conftest.py"


@pytest.fixture(scope="module")
def bench():
    spec = importlib.util.spec_from_file_location("bench_conftest", _CONFTEST)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestUpdateBenchJson:
    def test_fresh_file_is_stamped_and_merged(self, bench, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        bench.update_bench_json({"engine": {"tiny": 1.5}}, path=path)
        data = json.loads(path.read_text())
        assert data["engine"] == {"tiny": 1.5}
        assert data["schema_version"] == bench.BENCH_SCHEMA_VERSION
        assert data["unit"] == "ms"

    def test_merge_preserves_other_sections(self, bench, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        bench.update_bench_json({"engine": {"tiny": 1.5}}, path=path)
        bench.update_bench_json({"campaign": {"tiny": 9.0}}, path=path)
        data = json.loads(path.read_text())
        assert data["engine"] == {"tiny": 1.5}
        assert data["campaign"] == {"tiny": 9.0}

    @pytest.mark.parametrize(
        "garbage",
        [
            "{not json at all",
            '{"engine": {"tiny": 1.5',  # truncated mid-write
            "",
            "[1, 2, 3]\n",  # valid JSON, wrong shape
            '"a bare string"\n',
        ],
        ids=["garbage", "truncated", "empty", "list", "string"],
    )
    def test_corrupt_existing_file_is_treated_as_empty(
        self, bench, tmp_path, garbage
    ):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(garbage)
        bench.update_bench_json({"engine": {"tiny": 2.0}}, path=path)
        data = json.loads(path.read_text())
        assert data["engine"] == {"tiny": 2.0}
        assert data["schema_version"] == bench.BENCH_SCHEMA_VERSION

    def test_crash_mid_merge_leaves_original_intact(self, bench, tmp_path):
        """A failure while producing the new contents must not clobber
        the existing file: the write goes to a tmp file first."""
        path = tmp_path / "BENCH_engine.json"
        bench.update_bench_json({"engine": {"tiny": 1.5}}, path=path)
        original = path.read_bytes()
        with pytest.raises(TypeError):
            bench.update_bench_json({"bad": object()}, path=path)
        assert path.read_bytes() == original

    def test_no_tmp_file_left_behind(self, bench, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        bench.update_bench_json({"engine": {"tiny": 1.5}}, path=path)
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != path.name]
        assert leftovers == []
