"""Durability suite: the job journal, restart recovery, and the
service-layer race fixes that persistence keeps honest.

The centerpiece simulates a ``kill -9`` mid-study without killing the
test process: a ``round_hook`` holds the worker after round 0 (frame,
checkpoint and journal entries all on disk), the whole ``state_dir``
is copied byte-for-byte — exactly what a crashed box's disk would
hold — and a second service boots from the copy. The contract: the
job comes back cancelled+resumable, SSE replays every pre-crash
frame, and resume converges to the same float64 bits as an
uninterrupted ``run_study``.
"""

from __future__ import annotations

import json
import shutil
import threading

import pytest

from repro.core.study import StudyConfig, run_study
from repro.service import StudyService
from repro.service.jobs import CANCELLED, DONE, FAILED, JobManager, StudyJob
from repro.service.persistence import JobJournal, load_state

from tests.service.conftest import tiny_study_payload


def wait_done(service, job_id, timeout=120.0) -> str:
    job = service.manager.get(job_id)
    assert job is not None
    return job.wait(timeout)


def normalized_config() -> dict:
    """The grouped/normalized spelling recovery stores in the journal."""
    return StudyConfig.from_dict(tiny_study_payload()).to_dict()


# -- journal + snapshot unit tests ---------------------------------------


class TestJournalRoundtrip:
    def test_events_roundtrip_through_load(self, tmp_path):
        journal = JobJournal(tmp_path)
        config = normalized_config()
        journal.append(
            {"event": "submitted", "job": "job-000001", "config": config,
             "config_hash": "abc", "request_id": "req-000001"}
        )
        journal.append(
            {"event": "state", "job": "job-000001", "state": "running",
             "builds": 1}
        )
        journal.append(
            {"event": "frame", "job": "job-000001", "index": 0, "frame": "{}"}
        )
        journal.append(
            {"event": "checkpoint", "job": "job-000001",
             "path": "job-000001.ckpt", "rounds": 1}
        )
        journal.close()

        state = load_state(tmp_path)
        assert state.counter == 1
        assert state.builds == 1
        job = state.jobs["job-000001"]
        assert job.state == "running"
        assert job.frames == ["{}"]
        assert job.checkpoint == "job-000001.ckpt"
        assert job.checkpoint_rounds == 1
        assert job.request_id == "req-000001"

    def test_frame_replay_dedups_by_index(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append(
            {"event": "submitted", "job": "job-000001", "config": {},
             "config_hash": "abc"}
        )
        for _ in range(2):  # the same frame replayed (snapshot overlap)
            journal.append(
                {"event": "frame", "job": "job-000001", "index": 0,
                 "frame": "f0"}
            )
        journal.append(
            {"event": "frame", "job": "job-000001", "index": 1, "frame": "f1"}
        )
        journal.close()
        assert load_state(tmp_path).jobs["job-000001"].frames == ["f0", "f1"]

    def test_deleted_event_drops_the_job(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append(
            {"event": "submitted", "job": "job-000001", "config": {},
             "config_hash": "abc"}
        )
        journal.append({"event": "deleted", "job": "job-000001"})
        journal.close()
        state = load_state(tmp_path)
        assert state.jobs == {}
        assert state.counter == 1  # the id is never reallocated

    def test_truncated_tail_line_is_dropped_not_fatal(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append(
            {"event": "submitted", "job": "job-000001", "config": {},
             "config_hash": "abc"}
        )
        journal.append(
            {"event": "frame", "job": "job-000001", "index": 0, "frame": "f0"}
        )
        journal.close()
        path = tmp_path / "journal.jsonl"
        raw = path.read_bytes()
        path.write_bytes(raw[:-9])  # the crash cut the last append short

        state = load_state(tmp_path)
        assert state.dropped_lines == 1
        job = state.jobs["job-000001"]
        assert job.frames == []  # the torn frame line is gone, the job is not

    def test_corrupt_snapshot_is_ignored(self, tmp_path):
        (tmp_path / "snapshot.json").write_text("{not json", encoding="utf-8")
        journal = JobJournal(tmp_path)
        journal.append(
            {"event": "submitted", "job": "job-000003", "config": {},
             "config_hash": "abc"}
        )
        journal.close()
        state = load_state(tmp_path)
        assert list(state.jobs) == ["job-000003"]
        assert state.counter == 3

    def test_compaction_folds_journal_into_snapshot(self, tmp_path):
        snapshot = {
            "jobs": [
                {"id": "job-000001", "config": {}, "config_hash": "abc",
                 "state": "done", "frames": ["f0"], "result": "{}"}
            ],
            "counter": 1,
            "builds": 1,
        }
        journal = JobJournal(tmp_path, snapshot_provider=lambda: snapshot)
        journal.append(
            {"event": "submitted", "job": "job-000001", "config": {},
             "config_hash": "abc"}
        )
        journal.compact()
        journal.close()
        assert (tmp_path / "journal.jsonl").read_text() == ""  # truncated
        state = load_state(tmp_path)
        job = state.jobs["job-000001"]
        assert (job.state, job.frames, job.result) == ("done", ["f0"], "{}")
        assert state.builds == 1

    def test_auto_compaction_after_n_appends(self, tmp_path):
        journal = JobJournal(
            tmp_path, snapshot_provider=lambda: {"jobs": [], "counter": 0,
                                                 "builds": 0},
            compact_every=3,
        )
        for i in range(3):
            journal.append({"event": "frame", "job": "job-000001", "index": i})
        assert (tmp_path / "snapshot.json").exists()
        assert (tmp_path / "journal.jsonl").read_text() == ""
        journal.close()


# -- recovery state mapping (crafted journals) ---------------------------


class TestRecoveryStateMapping:
    def _manager(self, tmp_path, **kwargs) -> JobManager:
        manager = JobManager(state_dir=tmp_path, **kwargs)
        self._managers.append(manager)
        return manager

    @pytest.fixture(autouse=True)
    def _track_managers(self):
        self._managers: list[JobManager] = []
        yield
        for manager in self._managers:
            manager.close()

    def _craft(self, tmp_path, events, checkpoint_files=()):
        journal = JobJournal(tmp_path)
        for event in events:
            journal.append(event)
        journal.close()
        ckpt_dir = tmp_path / "checkpoints"
        ckpt_dir.mkdir(exist_ok=True)
        for name in checkpoint_files:
            (ckpt_dir / name).write_bytes(b"stub")

    def test_running_with_checkpoint_comes_back_cancelled_resumable(
        self, tmp_path
    ):
        config = normalized_config()
        self._craft(
            tmp_path,
            [
                {"event": "submitted", "job": "job-000001", "config": config,
                 "config_hash": "abc"},
                {"event": "state", "job": "job-000001", "state": "running",
                 "builds": 1},
                {"event": "frame", "job": "job-000001", "index": 0,
                 "frame": "f0"},
                {"event": "checkpoint", "job": "job-000001",
                 "path": "job-000001.ckpt", "rounds": 1},
            ],
            checkpoint_files=["job-000001.ckpt"],
        )
        manager = self._manager(tmp_path)
        job = manager.get("job-000001")
        assert job.state == CANCELLED
        assert job.error is None
        assert job.frames == ["f0"]
        assert job.checkpoint_path is not None
        assert job.snapshot()["resumable"] is True
        assert manager.builds_performed == 1

    def test_frames_past_the_checkpoint_are_truncated(self, tmp_path):
        config = normalized_config()
        self._craft(
            tmp_path,
            [
                {"event": "submitted", "job": "job-000001", "config": config,
                 "config_hash": "abc"},
                {"event": "state", "job": "job-000001", "state": "running",
                 "builds": 1},
                {"event": "frame", "job": "job-000001", "index": 0,
                 "frame": "f0"},
                {"event": "checkpoint", "job": "job-000001",
                 "path": "job-000001.ckpt", "rounds": 1},
                # Crash landed after this frame but before its checkpoint:
                {"event": "frame", "job": "job-000001", "index": 1,
                 "frame": "f1"},
            ],
            checkpoint_files=["job-000001.ckpt"],
        )
        job = self._manager(tmp_path).get("job-000001")
        assert job.state == CANCELLED
        assert job.frames == ["f0"]  # resume regenerates f1 bit-identically

    def test_running_without_checkpoint_comes_back_failed(self, tmp_path):
        config = normalized_config()
        self._craft(
            tmp_path,
            [
                {"event": "submitted", "job": "job-000001", "config": config,
                 "config_hash": "abc"},
                {"event": "state", "job": "job-000001", "state": "running",
                 "builds": 1},
                {"event": "frame", "job": "job-000001", "index": 0,
                 "frame": "f0"},
            ],
        )
        job = self._manager(tmp_path).get("job-000001")
        assert job.state == FAILED
        assert "before a checkpoint" in job.error
        assert job.frames == ["f0"]  # streamed rounds stay replayable

    def test_queued_job_with_nothing_on_disk_reruns_from_scratch(
        self, tmp_path
    ):
        config = normalized_config()
        self._craft(
            tmp_path,
            [
                {"event": "submitted", "job": "job-000001", "config": config,
                 "config_hash": "abc"},
            ],
        )
        manager = self._manager(tmp_path)
        job = manager.get("job-000001")
        assert job.state == CANCELLED
        assert job.frames == []
        # Resuming a never-started job is just a fresh run.
        manager.resume("job-000001")
        assert job.wait(120) == DONE
        assert len(job.frames) == job.config.rounds

    def test_new_ids_never_collide_with_recovered_ones(self, tmp_path):
        config = normalized_config()
        self._craft(
            tmp_path,
            [
                {"event": "submitted", "job": "job-000007", "config": config,
                 "config_hash": "abc"},
                {"event": "failed", "job": "job-000007", "error": "boom"},
            ],
        )
        manager = self._manager(tmp_path)
        job, created = manager.submit(StudyConfig.from_dict(
            tiny_study_payload(seed=99)))
        assert created
        assert job.id == "job-000008"
        assert job.wait(120) == DONE

    def test_recovery_compacts_so_restart_is_idempotent(self, tmp_path):
        config = normalized_config()
        self._craft(
            tmp_path,
            [
                {"event": "submitted", "job": "job-000001", "config": config,
                 "config_hash": "abc"},
                {"event": "state", "job": "job-000001", "state": "running",
                 "builds": 1},
            ],
        )
        self._manager(tmp_path).close()
        # The snapshot now records the *mapped* state (cancelled), so a
        # second boot sees a clean journal and the same table.
        assert (tmp_path / "journal.jsonl").read_text() == ""
        job = self._manager(tmp_path).get("job-000001")
        assert job.state == CANCELLED


# -- end-to-end restart contract (the ISSUE acceptance path) -------------


class TestRestartRecovery:
    def _boot(self, make_service, make_client, state_dir, **kwargs):
        service = make_service(
            state_dir=state_dir, checkpoint_dir=None, **kwargs
        )
        return service, make_client(service)

    def _crash_image(self, tmp_path, make_service, make_client, rounds=3):
        """Submit a study, freeze it after round 0, and photograph the
        state_dir — the byte-exact disk a kill -9 would leave."""
        first_round = threading.Event()
        release = threading.Event()

        def hook(job, record):
            if record.round_index == 0:
                first_round.set()
                assert release.wait(60)

        state_dir = tmp_path / "live"
        service, client = self._boot(
            make_service, make_client, state_dir, round_hook=hook
        )
        payload = tiny_study_payload(rounds=rounds)
        status, _, body = client.submit(payload)
        assert status == 200
        assert first_round.wait(120)
        # Frame 0 + its checkpoint are journaled; the worker is frozen
        # mid-round-1 — copy the directory as the crash image.
        crash_dir = tmp_path / "crash"
        shutil.copytree(state_dir, crash_dir)
        release.set()
        return crash_dir, payload, body

    def test_kill_restart_replay_resume_bit_identity(
        self, tmp_path, make_service, make_client
    ):
        crash_dir, payload, pre_crash = self._crash_image(
            tmp_path, make_service, make_client
        )
        expected = run_study(StudyConfig.from_dict(payload))

        service, client = self._boot(make_service, make_client, crash_dir)
        job_id = pre_crash["id"]

        # GET /studies lists the job as cancelled + resumable.
        status, _, listing = client.get("/studies")
        assert status == 200
        (snapshot,) = [
            s for s in json.loads(listing)["studies"] if s["id"] == job_id
        ]
        assert snapshot["state"] == "cancelled"
        assert snapshot["resumable"] is True
        assert snapshot["rounds_completed"] == 1

        # SSE replays the pre-crash frame for a subscriber that connects
        # *after* the restart, then follows the resumed run live.
        pre_crash_frames = [
            r.to_json() for r in expected.rounds[:1]
        ]
        job = service.manager.get(job_id)
        assert job.frames == pre_crash_frames

        # The recovered build count is the pre-crash one.
        assert service.manager.builds_performed == 1

        status, _, _ = client.post_json(f"/studies/{job_id}/resume")
        assert status == 202
        assert wait_done(service, job_id) == "done"

        # Full replay equals the uninterrupted run frame for frame —
        # the float64 bit-identity contract across a process death.
        frames = client.round_frames(job_id)
        assert frames == [r.to_json() for r in expected.rounds]
        status, _, result = client.get(f"/studies/{job_id}/result")
        assert status == 200
        assert result.decode("utf-8") == expected.to_json()
        # Crash-resume accounting matches live cancel-resume: 2 builds.
        assert service.manager.builds_performed == 2

    def test_checkpoint_file_ahead_of_journal_backfills_frames(
        self, tmp_path, make_service, make_client
    ):
        """kill -9 can land between a checkpoint *file* write and its
        journal event, leaving the file one round ahead of the journal.
        Recovery truncates frames to the journaled count and the resume
        starts past the truncated round — without the backfill the
        replay buffer is permanently one frame short."""
        second_round = threading.Event()
        release = threading.Event()

        def hook(job, record):
            if record.round_index == 1:
                second_round.set()
                assert release.wait(60)

        state_dir = tmp_path / "live"
        service, client = self._boot(
            make_service, make_client, state_dir, round_hook=hook
        )
        payload = tiny_study_payload(rounds=3)
        status, _, body = client.submit(payload)
        assert status == 200
        assert second_round.wait(120)
        # Round 1's frame and checkpoint are journaled; photograph the
        # disk, then drop the trailing checkpoint line — the journal
        # now records the round-0 checkpoint while the file on disk
        # covers rounds 0-1.
        crash_dir = tmp_path / "crash"
        shutil.copytree(state_dir, crash_dir)
        release.set()
        journal = crash_dir / "journal.jsonl"
        lines = journal.read_text(encoding="utf-8").splitlines(keepends=True)
        last = json.loads(lines[-1])
        assert (last["event"], last["rounds"]) == ("checkpoint", 2)
        journal.write_text("".join(lines[:-1]), encoding="utf-8")

        expected = run_study(StudyConfig.from_dict(payload))
        service2, client2 = self._boot(make_service, make_client, crash_dir)
        job_id = body["id"]
        job = service2.manager.get(job_id)
        assert job.state == CANCELLED
        # Truncated to the journaled checkpoint, as for any frame that
        # outran its checkpoint.
        assert job.frames == [r.to_json() for r in expected.rounds[:1]]

        status, _, _ = client2.post_json(f"/studies/{job_id}/resume")
        assert status == 202
        assert wait_done(service2, job_id) == "done"
        # The resume backfilled round 1 from the checkpoint's records:
        # the full replay is gapless and bit-identical.
        frames = client2.round_frames(job_id)
        assert frames == [r.to_json() for r in expected.rounds]
        _, _, snap = client2.get(f"/studies/{job_id}")
        snap = json.loads(snap)
        assert snap["rounds_completed"] == snap["rounds_total"] == 3
        _, _, result = client2.get(f"/studies/{job_id}/result")
        assert result.decode("utf-8") == expected.to_json()

    def test_restart_warms_the_response_cache(
        self, tmp_path, make_service, make_client
    ):
        crash_dir, payload, pre_crash = self._crash_image(
            tmp_path, make_service, make_client
        )
        service, client = self._boot(make_service, make_client, crash_dir)
        status, headers, body = client.submit(payload)
        assert status == 200
        # Served from the warmed cache: same job id, no new build.
        assert headers["X-Cache"] == "hit"
        assert body == pre_crash
        assert service.manager.builds_performed == 1

    def test_journal_corruption_tolerated_end_to_end(
        self, tmp_path, make_service, make_client
    ):
        crash_dir, _, pre_crash = self._crash_image(
            tmp_path, make_service, make_client
        )
        journal = crash_dir / "journal.jsonl"
        journal.write_bytes(journal.read_bytes()[:-7])  # tear the tail

        service, client = self._boot(make_service, make_client, crash_dir)
        status, _, body = client.get(f"/studies/{pre_crash['id']}")
        assert status == 200
        # The torn line was the round-0 checkpoint record or later, so
        # the job still exists; whichever mapping applies, the service
        # is up and consistent.
        assert json.loads(body)["state"] in ("cancelled", "failed")

    def test_graceful_shutdown_preserves_running_jobs(
        self, tmp_path, make_service, make_client
    ):
        state_dir = tmp_path / "state"
        service, client = self._boot(make_service, make_client, state_dir)
        payload = tiny_study_payload(rounds=3)
        _, _, body = client.submit(payload)
        job_id = body["id"]
        # Close while (probably) mid-run: in durable mode close() lets
        # the job checkpoint instead of discarding it.
        service.close()

        service2, client2 = self._boot(make_service, make_client, state_dir)
        status, _, snap = client2.get(f"/studies/{job_id}")
        assert status == 200
        snap = json.loads(snap)
        if snap["state"] == "done":  # the run won the race with close()
            return
        assert snap["state"] == "cancelled"
        assert snap["resumable"] is True or snap["rounds_completed"] == 0
        status, _, _ = client2.post_json(f"/studies/{job_id}/resume")
        assert status == 202
        assert wait_done(service2, job_id) == "done"
        expected = run_study(StudyConfig.from_dict(payload))
        frames = client2.round_frames(job_id)
        assert frames == [r.to_json() for r in expected.rounds]

    def test_done_jobs_survive_with_results(
        self, tmp_path, make_service, make_client
    ):
        state_dir = tmp_path / "state"
        service, client = self._boot(make_service, make_client, state_dir)
        _, _, body = client.submit(tiny_study_payload())
        job_id = body["id"]
        assert wait_done(service, job_id) == "done"
        _, _, result_before = client.get(f"/studies/{job_id}/result")
        service.close()

        service2, client2 = self._boot(make_service, make_client, state_dir)
        status, _, result_after = client2.get(f"/studies/{job_id}/result")
        assert status == 200
        assert result_after == result_before
        # Dedup index survived too: resubmitting returns the same job
        # without a build (possibly via the warmed cache).
        builds = service2.manager.builds_performed
        status, _, resubmit = client2.submit(tiny_study_payload())
        assert resubmit["id"] == job_id
        assert service2.manager.builds_performed == builds
        # A finished job's per-round checkpoint files are not leaked.
        assert list((state_dir / "checkpoints").glob("*.ckpt")) == []


# -- satellite: stale cache on FAILED jobs -------------------------------


class TestFailedJobCacheInvalidation:
    def test_resubmit_after_failure_builds_fresh(
        self, make_service, make_client
    ):
        def hook(job, record):
            if job.id == "job-000001":
                raise RuntimeError("injected round failure")

        service = make_service(round_hook=hook)
        client = make_client(service)
        payload = tiny_study_payload()

        status, headers, body = client.submit(payload)
        assert status == 200
        assert headers["X-Cache"] == "miss"
        first_id = body["id"]
        job = service.manager.get(first_id)
        assert job.wait(120) == "failed"
        builds = service.manager.builds_performed

        # The FAILED job's cached submission body must not replay: the
        # resubmission reaches submit(), which evicts the failed job
        # and builds fresh.
        status, headers, body = client.submit(payload)
        assert status == 200
        assert headers["X-Cache"] == "miss"
        assert body["id"] != first_id
        assert wait_done(service, body["id"]) == "done"
        assert service.manager.builds_performed == builds + 1


# -- satellite: resume double-enqueue race -------------------------------


class TestResumeRace:
    def test_rearm_is_atomic_under_contention(self, tmp_path):
        job = StudyJob("job-000001", StudyConfig.from_dict(
            tiny_study_payload()))
        job.state = CANCELLED
        winners = []
        barrier = threading.Barrier(8)

        def attempt():
            barrier.wait()
            if job.rearm():
                winners.append(True)

        threads = [threading.Thread(target=attempt) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(winners) == 1
        assert job.state == "queued"

    def test_concurrent_resumes_one_202_rest_409(
        self, make_service, make_client
    ):
        gate = threading.Event()
        release = threading.Event()

        def hook(job, record):
            if record.round_index == 0:
                gate.set()
                assert release.wait(60)

        service = make_service(round_hook=hook)
        client = make_client(service)
        try:
            _, _, body = client.submit(tiny_study_payload(rounds=3))
            job_id = body["id"]
            assert gate.wait(120)
            client.post_json(f"/studies/{job_id}/cancel")
        finally:
            release.set()
        job = service.manager.get(job_id)
        assert job.wait(120) == "cancelled"

        barrier = threading.Barrier(8)
        statuses = []
        lock = threading.Lock()

        def resume():
            barrier.wait()
            status, _, _ = client.post_json(f"/studies/{job_id}/resume")
            with lock:
                statuses.append(status)

        threads = [threading.Thread(target=resume) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(statuses) == [202] + [409] * 7
        assert job.wait(120) == "done"
        # One enqueue -> no duplicate frames from interleaved workers.
        assert len(job.frames) == job.config.rounds


# -- satellite: DELETE-vs-checkpoint orphan race -------------------------


class TestDeleteCheckpointRace:
    def test_delete_during_checkpoint_write_leaves_no_orphan(self, tmp_path):
        """DELETE flips ``discard`` while the worker is between the
        discard pre-check and the checkpoint write; the post-write
        re-check must unlink the file DELETE could not see."""
        first_round = threading.Event()
        release = threading.Event()
        in_window = threading.Event()
        proceed = threading.Event()

        def round_hook(job, record):
            if record.round_index == 0:
                first_round.set()
                assert release.wait(60)

        def checkpoint_hook(job):
            in_window.set()
            assert proceed.wait(60)

        manager = JobManager(
            checkpoint_dir=tmp_path / "checkpoints",
            round_hook=round_hook,
            checkpoint_hook=checkpoint_hook,
        )
        try:
            job, _ = manager.submit(
                StudyConfig.from_dict(tiny_study_payload(rounds=3))
            )
            assert first_round.wait(120)
            manager.cancel(job.id)
            release.set()
            # The worker is now inside _checkpoint_job, past the
            # discard pre-check, about to write the file.
            assert in_window.wait(120)
            manager.delete(job.id)  # sets discard; nothing to unlink yet
            proceed.set()
            assert job.wait(120) == "cancelled"
            assert manager.get(job.id) is None
            # Regression: without the post-write re-check the .ckpt
            # written after DELETE's unlink pass leaks here.
            assert list((tmp_path / "checkpoints").glob("*.ckpt")) == []
        finally:
            release.set()
            proceed.set()
            manager.close()
