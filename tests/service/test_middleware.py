"""Middleware unit tests — each stage in isolation with a fake clock,
then the composed pipeline (request-id propagation into job logs)."""

from __future__ import annotations

import json
import logging

import pytest

from repro.core.config import config_hash
from repro.core.study import StudyConfig
from repro.service.middleware import (
    AccessLogMiddleware,
    ErrorBoundaryMiddleware,
    MetricsMiddleware,
    Request,
    RequestContext,
    RequestContextMiddleware,
    Response,
    ResponseCacheMiddleware,
    TokenBucketMiddleware,
    build_pipeline,
    json_response,
)

from tests.service.conftest import tiny_study_payload


class FakeClock:
    """Deterministic monotonic clock for middleware tests."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def run(middleware, request, handler=None, ctx=None):
    """Run one request through a single-stage pipeline."""
    handler = handler or (lambda ctx, req: json_response({"ok": True}))
    pipeline = build_pipeline([middleware], handler)
    return pipeline(ctx or RequestContext(), request)


def req(method="GET", path="/studies", body=b"", headers=None):
    return Request(method=method, path=path, body=body, headers=headers or {})


# -- config_hash canonicalization ---------------------------------------


class TestConfigHash:
    def test_stable_across_dict_ordering(self):
        payload = tiny_study_payload()
        reordered = dict(reversed(list(payload.items())))
        assert list(payload) != list(reordered)  # the reorder is real
        assert config_hash(payload) == config_hash(reordered)

    def test_flat_and_grouped_spellings_agree(self):
        flat = tiny_study_payload()
        grouped = StudyConfig.from_dict(flat).to_dict()
        assert set(grouped) == {
            "name", "seed", "data", "model", "topology", "execution", "privacy"
        }
        assert config_hash(flat) == config_hash(grouped)

    def test_defaults_hash_like_explicit_values(self):
        implicit = tiny_study_payload()
        explicit = tiny_study_payload(engine="flat", executor="serial")
        assert config_hash(implicit) == config_hash(explicit)

    def test_config_object_matches_payload(self):
        payload = tiny_study_payload()
        config = StudyConfig.from_dict(payload)
        assert config.config_hash() == config_hash(payload)

    def test_different_seed_different_hash(self):
        assert config_hash(tiny_study_payload(seed=0)) != config_hash(
            tiny_study_payload(seed=1)
        )

    def test_hash_is_hex_sha256(self):
        digest = config_hash(tiny_study_payload())
        assert len(digest) == 64
        int(digest, 16)  # parses as hex


# -- request context ----------------------------------------------------


class TestRequestContextMiddleware:
    def test_assigns_sequential_ids_and_echoes_header(self):
        mw = RequestContextMiddleware()
        seen = []
        handler = lambda ctx, r: (seen.append(ctx.request_id), json_response({}))[1]
        first = run(mw, req(), handler)
        second = run(mw, req(), handler)
        assert seen == ["req-000001", "req-000002"]
        assert first.headers["X-Request-ID"] == "req-000001"
        assert second.headers["X-Request-ID"] == "req-000002"

    def test_client_supplied_id_wins(self):
        mw = RequestContextMiddleware()
        response = run(mw, req(headers={"x-request-id": "upstream-7"}))
        assert response.headers["X-Request-ID"] == "upstream-7"


# -- access log ---------------------------------------------------------


class TestAccessLogMiddleware:
    def test_logs_one_structured_line_with_duration(self, caplog):
        clock = FakeClock()

        def handler(ctx, request):
            clock.advance(0.25)
            return json_response({}, status=201)

        mw = AccessLogMiddleware(clock=clock)
        ctx = RequestContext(request_id="req-000009")
        with caplog.at_level(logging.INFO, logger="repro.service.access"):
            run(mw, req(method="POST", path="/studies"), handler, ctx=ctx)
        assert len(caplog.records) == 1
        line = json.loads(caplog.records[0].getMessage())
        assert line == {
            "request_id": "req-000009",
            "method": "POST",
            "path": "/studies",
            "status": 201,
            "duration_ms": 250.0,
            "client": "",
        }


# -- metrics ------------------------------------------------------------


class TestMetricsMiddleware:
    def test_counts_requests_latency_and_errors(self):
        clock = FakeClock()
        mw = MetricsMiddleware(clock=clock)

        def ok(ctx, request):
            clock.advance(0.010)
            return json_response({})

        run(mw, req(path="/studies/job-000001/stream"), ok)
        run(mw, req(path="/studies/job-000002/stream"), ok)
        run(mw, req(path="/healthz"), ok)
        counters = mw.counters()
        # Study ids collapse to one bounded-cardinality route label.
        assert counters["requests"][("GET", "/studies/{id}/stream", 200)] == 2
        assert counters["requests"][("GET", "/healthz", 200)] == 1
        assert counters["latency_ms"][("GET", "/studies/{id}/stream")] == (
            pytest.approx(20.0)
        )
        assert counters["latency_count"][("GET", "/studies/{id}/stream")] == 2
        assert counters["errors"] == {}

    def test_counts_5xx_and_raised_exceptions(self):
        mw = MetricsMiddleware(clock=FakeClock())
        run(mw, req(), lambda ctx, r: json_response({}, status=503))
        def boom(ctx, request):
            raise RuntimeError("handler crash")
        with pytest.raises(RuntimeError):
            run(mw, req(), boom)
        counters = mw.counters()
        assert counters["errors"][("GET", "/studies")] == 2
        assert counters["requests"][("GET", "/studies", 500)] == 1

    def test_raised_exception_logs_structured_line_before_reraise(self, caplog):
        """Regression: exceptions from the stages between metrics and
        the error boundary used to propagate with no log line at all —
        the boundary sits further in and never saw them."""
        mw = MetricsMiddleware(clock=FakeClock())
        ctx = RequestContext(request_id="req-000042")

        def boom(ctx, request):
            raise RuntimeError("limiter blew up")

        with caplog.at_level(logging.ERROR, logger="repro.service.error"):
            with pytest.raises(RuntimeError):
                run(mw, req(method="POST", path="/studies"), boom, ctx=ctx)
        assert len(caplog.records) == 1
        line = json.loads(caplog.records[0].getMessage())
        assert line == {
            "event": "middleware_error",
            "request_id": "req-000042",
            "method": "POST",
            "path": "/studies",
            "status": 500,
        }
        assert "limiter blew up" in caplog.text  # traceback rides along
        # The 500 is still counted — logging must not displace metrics.
        assert mw.counters()["requests"][("POST", "/studies", 500)] == 1

    def test_render_is_prometheus_style(self):
        mw = MetricsMiddleware(clock=FakeClock())
        run(mw, req(path="/healthz"))
        text = mw.render()
        assert (
            'repro_requests_total{method="GET",route="/healthz",status="200"} 1'
            in text
        )
        assert 'repro_request_latency_ms_count{method="GET",route="/healthz"} 1' in text

    def test_unknown_methods_collapse_to_other(self):
        # An arbitrary request line must not mint unbounded method
        # labels: anything outside the standard verbs becomes "other".
        clock = FakeClock()
        mw = MetricsMiddleware(clock=clock)

        def ok(ctx, request):
            clock.advance(0.005)
            return json_response({})

        run(mw, req(method="BREW", path="/healthz"), ok)
        run(mw, req(method="SPAM", path="/healthz"), ok)
        run(mw, req(method="GET", path="/healthz"), ok)
        counters = mw.counters()
        assert counters["requests"][("other", "/healthz", 200)] == 2
        assert counters["requests"][("GET", "/healthz", 200)] == 1
        assert ("BREW", "/healthz", 200) not in counters["requests"]
        assert counters["latency_ms"][("other", "/healthz")] == (
            pytest.approx(10.0)
        )
        assert counters["latency_count"][("other", "/healthz")] == 2
        methods = {key[0] for key in counters["requests"]}
        assert methods == {"GET", "other"}
        assert 'method="other"' in mw.render()

    def test_unknown_method_errors_use_other_label(self):
        mw = MetricsMiddleware(clock=FakeClock())
        run(mw, req(method="BREW"), lambda ctx, r: json_response({}, status=503))
        counters = mw.counters()
        assert counters["errors"][("other", "/studies")] == 1


# -- token bucket -------------------------------------------------------


class TestTokenBucketMiddleware:
    def test_burst_then_429_then_refill(self):
        clock = FakeClock()
        mw = TokenBucketMiddleware(capacity=2, refill_per_sec=1.0, clock=clock)
        assert run(mw, req()).status == 200
        assert run(mw, req()).status == 200
        rejected = run(mw, req())
        assert rejected.status == 429
        assert rejected.headers["Retry-After"] == "1"
        assert json.loads(rejected.body)["error"] == "rate limited"
        clock.advance(1.0)  # one token back
        assert run(mw, req()).status == 200
        assert run(mw, req()).status == 429

    def test_refill_caps_at_capacity(self):
        clock = FakeClock()
        mw = TokenBucketMiddleware(capacity=2, refill_per_sec=5.0, clock=clock)
        clock.advance(60.0)  # a long idle period must not overfill
        assert mw.tokens == pytest.approx(2.0)
        assert run(mw, req()).status == 200
        assert run(mw, req()).status == 200
        assert run(mw, req()).status == 429

    def test_retry_after_rounds_up_slow_refills(self):
        clock = FakeClock()
        mw = TokenBucketMiddleware(capacity=1, refill_per_sec=0.25, clock=clock)
        assert run(mw, req()).status == 200
        rejected = run(mw, req())
        assert rejected.status == 429
        assert rejected.headers["Retry-After"] == "4"  # 1 token / 0.25 per s

    def test_operational_endpoints_exempt(self):
        clock = FakeClock()
        mw = TokenBucketMiddleware(capacity=1, refill_per_sec=0.01, clock=clock)
        assert run(mw, req()).status == 200  # bucket now empty
        assert run(mw, req(path="/healthz")).status == 200
        assert run(mw, req(path="/metrics")).status == 200
        assert run(mw, req()).status == 429

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucketMiddleware(capacity=0)
        with pytest.raises(ValueError):
            TokenBucketMiddleware(refill_per_sec=0.0)


# -- response cache -----------------------------------------------------


def study_request(payload: dict) -> Request:
    return Request(
        method="POST", path="/studies", body=json.dumps(payload).encode()
    )


class TestResponseCacheMiddleware:
    def test_hit_replays_stored_bytes(self):
        mw = ResponseCacheMiddleware(max_entries=4)
        calls = []

        def handler(ctx, request):
            calls.append(ctx.data["config_hash"])
            return json_response({"id": "job-1"}, cacheable=True)

        request = study_request(tiny_study_payload())
        miss = run(mw, request, handler)
        hit = run(mw, request, handler)
        assert len(calls) == 1  # second request never reached the app
        assert miss.headers["X-Cache"] == "miss"
        assert hit.headers["X-Cache"] == "hit"
        assert hit.body == miss.body
        assert (mw.hits, mw.misses) == (1, 1)

    def test_key_is_canonical_not_textual(self):
        """Reordered / re-spelled configs hit the same entry."""
        mw = ResponseCacheMiddleware(max_entries=4)
        calls = []

        def handler(ctx, request):
            calls.append(1)
            return json_response({"id": "job-1"}, cacheable=True)

        flat = tiny_study_payload()
        run(mw, study_request(flat), handler)
        grouped = StudyConfig.from_dict(flat).to_dict()
        hit = run(mw, study_request(grouped), handler)
        assert len(calls) == 1
        assert hit.headers["X-Cache"] == "hit"

    def test_lru_eviction_prefers_recently_used(self):
        mw = ResponseCacheMiddleware(max_entries=2)
        handler = lambda ctx, r: json_response({"ok": 1}, cacheable=True)
        first = study_request(tiny_study_payload(seed=1))
        second = study_request(tiny_study_payload(seed=2))
        third = study_request(tiny_study_payload(seed=3))
        run(mw, first, handler)
        run(mw, second, handler)
        run(mw, first, handler)  # touch: first is now most recent
        run(mw, third, handler)  # evicts second (least recently used)
        assert len(mw) == 2
        assert run(mw, first, handler).headers["X-Cache"] == "hit"
        assert run(mw, second, handler).headers["X-Cache"] == "miss"

    def test_uncacheable_and_error_responses_not_stored(self):
        mw = ResponseCacheMiddleware(max_entries=4)
        request = study_request(tiny_study_payload())
        run(mw, request, lambda ctx, r: json_response({}, status=400))
        run(mw, request, lambda ctx, r: json_response({}))  # not marked
        assert len(mw) == 0

    def test_non_study_requests_bypass(self):
        mw = ResponseCacheMiddleware(max_entries=4)
        handler_calls = []

        def handler(ctx, request):
            handler_calls.append(request.path)
            return json_response({}, cacheable=True)

        run(mw, req(method="GET", path="/healthz"), handler)
        run(mw, req(method="GET", path="/healthz"), handler)
        assert handler_calls == ["/healthz", "/healthz"]
        assert len(mw) == 0

    def test_unparsable_body_bypasses(self):
        mw = ResponseCacheMiddleware(max_entries=4)
        bad = Request(method="POST", path="/studies", body=b"{not json")
        response = run(mw, bad, lambda ctx, r: json_response({}, status=400))
        assert response.status == 400
        assert len(mw) == 0

    def test_invalidate_drops_entry(self):
        mw = ResponseCacheMiddleware(max_entries=4)
        handler = lambda ctx, r: json_response({}, cacheable=True)
        request = study_request(tiny_study_payload())
        run(mw, request, handler)
        mw.invalidate(config_hash(tiny_study_payload()))
        assert run(mw, request, handler).headers["X-Cache"] == "miss"


# -- the composed pipeline ---------------------------------------------


class TestComposedPipeline:
    def test_request_id_propagates_into_job_logs(self, make_service, caplog):
        """The id minted by the outermost stage reaches the job
        manager's structured log lines — context propagation across
        the whole stack, pinned end to end."""
        service = make_service()
        from repro.service.middleware import Request as Req

        with caplog.at_level(logging.INFO, logger="repro.service.jobs"):
            response = service.handle(
                Req(
                    method="POST",
                    path="/studies",
                    body=json.dumps(tiny_study_payload()).encode(),
                )
            )
            job_id = json.loads(response.body)["id"]
            assert service.manager.get(job_id).wait(120) == "done"
        request_id = response.headers["X-Request-ID"]
        assert request_id.startswith("req-")
        events = [
            json.loads(r.getMessage())
            for r in caplog.records
            if r.name == "repro.service.jobs"
        ]
        by_event = {e["event"] for e in events}
        assert {"job_submitted", "job_started", "job_done"} <= by_event
        assert all(e["request_id"] == request_id for e in events)
        assert all(e["job"] == job_id for e in events)

    def test_rate_limited_requests_are_counted_in_metrics(self, make_service):
        """Order contract: metrics sits outside the limiter, so 429s
        are observable."""
        service = make_service(rate_capacity=1, rate_refill=0.001)
        from repro.service.middleware import Request as Req

        assert service.handle(Req("GET", "/studies")).status == 200
        assert service.handle(Req("GET", "/studies")).status == 429
        counters = service.metrics.counters()
        assert counters["requests"][("GET", "/studies", 429)] == 1


# -- error boundary ------------------------------------------------------


class TestErrorBoundaryMiddleware:
    def test_converts_exception_to_500_with_request_id(self, caplog):
        def handler(ctx, request):
            raise RuntimeError("secret detail")

        ctx = RequestContext(request_id="req-000042")
        with caplog.at_level(logging.ERROR, logger="repro.service.error"):
            response = run(
                ErrorBoundaryMiddleware(), req(path="/studies"), handler, ctx
            )
        assert response.status == 500
        body = json.loads(response.body)
        assert body["error"] == "internal error: RuntimeError"
        assert body["request_id"] == "req-000042"
        # The message stays in the server log, not on the wire.
        assert "secret detail" not in response.body.decode()
        assert any("req-000042" in r.getMessage() for r in caplog.records)

    def test_passthrough_when_handler_succeeds(self):
        response = run(ErrorBoundaryMiddleware(), req())
        assert response.status == 200
        assert json.loads(response.body) == {"ok": True}

    def test_failures_reach_access_log_and_metrics(self, caplog):
        """Order contract under the fake clock: an exception inside
        the boundary flows back out as an ordinary response, so the
        access log gets its line (status 500, measured duration) and
        metrics observe it on the normal path — neither saw failed
        requests before the boundary existed."""
        clock = FakeClock()
        metrics = MetricsMiddleware(clock=clock)

        def handler(ctx, request):
            clock.advance(0.25)
            raise ValueError("boom")

        pipeline = build_pipeline(
            [
                RequestContextMiddleware(),
                AccessLogMiddleware(clock=clock),
                metrics,
                ErrorBoundaryMiddleware(),
            ],
            handler,
        )
        with caplog.at_level(logging.INFO, logger="repro.service.access"):
            response = pipeline(RequestContext(), req(path="/studies"))
        assert response.status == 500
        assert response.headers["X-Request-ID"].startswith("req-")
        lines = [
            json.loads(r.getMessage())
            for r in caplog.records
            if r.name == "repro.service.access"
        ]
        assert len(lines) == 1
        assert lines[0]["status"] == 500
        assert lines[0]["duration_ms"] == 250.0
        counters = metrics.counters()
        assert counters["requests"][("GET", "/studies", 500)] == 1
        assert counters["errors"][("GET", "/studies")] == 1

    def test_service_pipeline_stamps_500s(self, make_service):
        """End to end through StudyService: a crashing route handler
        still produces an id-stamped JSON 500, not a bare transport
        error."""
        service = make_service()

        def explode(ctx, request, params):
            raise RuntimeError("handler bug")

        service.router.add("GET", "/boom", explode)
        response = service.handle(Request(method="GET", path="/boom"))
        assert response.status == 500
        assert response.headers["X-Request-ID"].startswith("req-")
        body = json.loads(response.body)
        assert body["error"] == "internal error: RuntimeError"
        assert body["request_id"] == response.headers["X-Request-ID"]


class TestResponseCacheSeed:
    def test_seeded_entry_serves_hits(self):
        mw = ResponseCacheMiddleware(max_entries=4)
        key = config_hash(tiny_study_payload())
        mw.seed(key, json_response({"id": "job-000001"}, cacheable=True))
        response = run(
            mw,
            study_request(tiny_study_payload()),
            lambda ctx, r: pytest.fail("seeded key must not reach handler"),
        )
        assert response.headers["X-Cache"] == "hit"
        assert json.loads(response.body) == {"id": "job-000001"}

    def test_seed_applies_store_guards(self):
        mw = ResponseCacheMiddleware(max_entries=4)
        mw.seed("a", json_response({}, status=500, cacheable=True))
        mw.seed("b", json_response({}))  # not marked cacheable
        streaming = json_response({}, cacheable=True)
        streaming.stream = iter(())
        mw.seed("c", streaming)
        assert len(mw) == 0

    def test_seed_respects_lru_capacity(self):
        mw = ResponseCacheMiddleware(max_entries=2)
        for key in ("a", "b", "c"):
            mw.seed(key, json_response({"k": key}, cacheable=True))
        assert len(mw) == 2
